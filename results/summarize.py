#!/usr/bin/env python3
"""Summarizes the figure CSVs into the EXPERIMENTS.md headline numbers.

Run from the repository root after `figures -- all`:

    python3 results/summarize.py
"""
import csv
import os

HERE = os.path.dirname(os.path.abspath(__file__))


def load(fig):
    with open(os.path.join(HERE, fig + ".csv")) as fh:
        return list(csv.DictReader(fh))


def speedups(fig, base):
    rows = load(fig)
    cells = {(r["dataset"], r["param"], r["algo"]): float(r["millis"]) for r in rows}
    vs_base, vs_exact = [], []
    for (ds, p, algo), ms in cells.items():
        if algo != "SWOPE":
            continue
        b = cells.get((ds, p, base))
        e = cells.get((ds, p, "Exact"))
        if b:
            vs_base.append(b / ms)
        if e:
            vs_exact.append(e / ms)
    def stats(xs):
        xs = sorted(xs)
        return f"min {xs[0]:.1f}x  median {xs[len(xs)//2]:.1f}x  max {xs[-1]:.1f}x"
    print(f"{fig}: SWOPE vs {base}: {stats(vs_base)}")
    print(f"{fig}: SWOPE vs Exact: {stats(vs_exact)}")


def accuracy(fig):
    rows = [r for r in load(fig) if r["algo"] == "SWOPE"]
    accs = [float(r["accuracy"]) for r in rows]
    print(f"{fig}: SWOPE accuracy min {min(accs):.4f} mean {sum(accs)/len(accs):.4f}")


def tuning(fig):
    rows = load(fig)
    by_eps = {}
    for r in rows:
        by_eps.setdefault(float(r["param"]), []).append(
            (float(r["millis"]), float(r["accuracy"]))
        )
    print(fig)
    for eps in sorted(by_eps):
        ms = sum(a for a, _ in by_eps[eps]) / len(by_eps[eps])
        acc = sum(b for _, b in by_eps[eps]) / len(by_eps[eps])
        print(f"  eps={eps}: mean {ms:.1f} ms, mean accuracy {acc:.3f}")


def ablation(fig):
    rows = load(fig)
    agg = {}
    for r in rows:
        agg.setdefault((r["algo"], r["param"]), []).append(
            (float(r["millis"]), float(r["accuracy"]))
        )
    print(fig)
    for k in sorted(agg):
        ms = sum(a for a, _ in agg[k]) / len(agg[k])
        acc = sum(b for _, b in agg[k]) / len(agg[k])
        print(f"  {k[0]:<16} param={k[1]:<8} mean {ms:9.2f} ms  acc {acc:.3f}")


def mi_sample_fraction():
    n_by_ds = {}
    for r in load("table2"):
        n_by_ds[r["dataset"]] = int(r["sample_size"])
    rows = [r for r in load("fig5") if r["algo"] == "SWOPE"]
    full = sum(1 for r in rows if int(r["sample_size"]) >= n_by_ds[r["dataset"]])
    print(f"fig5: SWOPE MI cells at full N: {full}/{len(rows)}")


if __name__ == "__main__":
    speedups("fig1", "EntropyRank")
    speedups("fig3", "EntropyFilter")
    speedups("fig5", "EntropyRank")
    speedups("fig7", "EntropyFilter")
    for f in ["fig2", "fig4", "fig6", "fig8"]:
        accuracy(f)
    for f in ["fig9", "fig10", "fig11", "fig12"]:
        tuning(f)
    for f in ["ext-sampling", "ext-threads", "ext-oneshot", "ext-m0", "ext-locality"]:
        ablation(f)
    mi_sample_fraction()
