//! Feature selection — the paper's motivating application (§1).
//!
//! Implements greedy mutual-information feature selection (MIM with an
//! mRMR-style redundancy penalty) on top of SWOPE's approximate MI
//! queries: each round uses an approximate top-k query to shortlist
//! candidates cheaply, then scores only the shortlist exactly against the
//! already-selected features.
//!
//! ```text
//! cargo run --release -p swope-examples --example feature_selection
//! ```

use swope_columnar::Dataset;
use swope_core::{mi_top_k, SwopeConfig};
use swope_datagen::{generate, ColumnSpec, DatasetProfile, Distribution};
use swope_estimate::joint::mutual_information;

/// Greedily selects `want` features maximizing relevance to `label` minus
/// mean redundancy with already-selected features (mRMR criterion).
fn select_features(dataset: &Dataset, label: usize, want: usize) -> Vec<(usize, f64)> {
    let config = SwopeConfig::with_epsilon(0.5);
    // Shortlist: the ~3x oversampled approximate top-k by MI with the
    // label. SWOPE does the heavy lifting over all N rows here.
    let shortlist_size = (3 * want).min(dataset.num_attrs() - 1);
    let shortlist =
        mi_top_k(dataset, label, shortlist_size, &config).expect("valid query").attr_indices();

    // Exact relevance for the shortlist only (cheap: few columns).
    let relevance: Vec<(usize, f64)> = shortlist
        .iter()
        .map(|&a| (a, mutual_information(dataset.column(label), dataset.column(a))))
        .collect();

    let mut selected: Vec<(usize, f64)> = Vec::new();
    let mut remaining = relevance;
    while selected.len() < want && !remaining.is_empty() {
        let (best_idx, &(attr, rel)) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let score_a = mrmr_score(dataset, a.0, a.1, &selected);
                let score_b = mrmr_score(dataset, b.0, b.1, &selected);
                score_a.partial_cmp(&score_b).unwrap()
            })
            .expect("non-empty");
        let score = mrmr_score(dataset, attr, rel, &selected);
        selected.push((attr, score));
        remaining.remove(best_idx);
    }
    selected
}

fn mrmr_score(dataset: &Dataset, attr: usize, relevance: f64, selected: &[(usize, f64)]) -> f64 {
    if selected.is_empty() {
        return relevance;
    }
    let redundancy: f64 = selected
        .iter()
        .map(|&(s, _)| mutual_information(dataset.column(attr), dataset.column(s)))
        .sum::<f64>()
        / selected.len() as f64;
    relevance - redundancy
}

/// A table with known structure: the label reflects latent factor 0;
/// features f0–f4 also reflect factor 0 (relevant, mutually redundant),
/// g0–g2 reflect factor 1 (irrelevant to the label), the rest is noise.
fn build_profile() -> DatasetProfile {
    let mut columns = vec![ColumnSpec::dependent("label", Distribution::Uniform { u: 4 }, 0, 0.9)];
    for (i, strength) in [0.85, 0.7, 0.6, 0.5, 0.4].iter().enumerate() {
        columns.push(ColumnSpec::dependent(
            format!("relevant_{i}"),
            Distribution::Uniform { u: 8 },
            0,
            *strength,
        ));
    }
    for i in 0..3 {
        columns.push(ColumnSpec::dependent(
            format!("other_{i}"),
            Distribution::Uniform { u: 8 },
            1,
            0.8,
        ));
    }
    for i in 0..16 {
        columns.push(ColumnSpec::independent(
            format!("noise_{i}"),
            Distribution::Zipf { u: 12 + i, s: 0.9 },
        ));
    }
    DatasetProfile { name: "features".into(), rows: 150_000, latent_supports: vec![8, 8], columns }
}

fn main() {
    let dataset = generate(&build_profile(), 7);
    let label = 0;
    println!("selecting 8 of {} features for label attribute {label}", dataset.num_attrs() - 1);

    let selected = select_features(&dataset, label, 8);
    println!("\nselected features (mRMR score = relevance − mean redundancy):");
    for (rank, (attr, score)) in selected.iter().enumerate() {
        let name = dataset.schema().field(*attr).map(|f| f.name()).unwrap_or("?");
        let rel = mutual_information(dataset.column(label), dataset.column(*attr));
        println!("  {}. {:<12} relevance {:.4} bits, mRMR score {:.4}", rank + 1, name, rel, score);
    }

    // Show what a pure-relevance (MIM) ranking would have picked, to make
    // the redundancy penalty's effect visible.
    let mim = mi_top_k(&dataset, label, 8, &SwopeConfig::with_epsilon(0.5)).expect("valid query");
    println!("\npure-relevance (MIM) top-8 for comparison: {:?}", mim.attr_indices());
}
