//! Serving client: start an in-process SWOPE server, run a mutual
//! information top-k query over HTTP twice, and show the result-cache
//! speedup on the repeat.
//!
//! ```text
//! cargo run --release -p swope-examples --example serving_client
//! ```
//!
//! The same exchange works against a standalone `swope serve data.swop`;
//! only the address changes.

use std::time::Instant;

use swope_datagen::{corpus, generate};
use swope_examples::http_get;
use swope_obs::json::Json;
use swope_server::{Server, ServerConfig};

fn main() {
    // 1. Stand up a server on an ephemeral port with one dataset loaded.
    //    `swope serve` does exactly this from files on disk.
    let config = ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() };
    let server = Server::bind(config).expect("bind ephemeral port");
    let dataset = generate(&corpus::tiny(200_000, 25), 42);
    server.registry().insert("demo", dataset);
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run());
    println!("serving on http://{addr}");

    // 2. What is loaded?
    let reply = http_get(&addr, "/datasets").expect("list datasets");
    let list = Json::parse(&reply.body).expect("datasets JSON");
    let entry = &list.get("datasets").unwrap().as_array().unwrap()[0];
    println!(
        "dataset {:?}: {} rows x {} columns",
        entry.get("name").unwrap().as_str().unwrap(),
        entry.get("rows").unwrap().as_u64().unwrap(),
        entry.get("columns").unwrap().as_u64().unwrap()
    );

    // 3. MI top-k over HTTP. The first call runs the adaptive loop...
    let target = "/query/mi-topk?dataset=demo&target=0&k=5";
    let started = Instant::now();
    let cold = http_get(&addr, target).expect("query");
    let cold_elapsed = started.elapsed();
    assert_eq!(cold.status, 200, "{}", cold.body);
    let result = Json::parse(&cold.body).expect("query JSON");
    println!(
        "\ntop-5 by mutual information with target 0 ({}, {} rows scanned):",
        cold.header("x-swope-cache").unwrap_or("?"),
        result.get("stats").unwrap().get("rows_scanned").unwrap().as_u64().unwrap()
    );
    for score in result.get("scores").unwrap().as_array().unwrap() {
        println!(
            "  {:<12} I ∈ [{:.4}, {:.4}]",
            score.get("name").unwrap().as_str().unwrap(),
            score.get("lower").unwrap().as_f64().unwrap(),
            score.get("upper").unwrap().as_f64().unwrap()
        );
    }

    // 4. ...and the second is served from the result cache, byte-identical.
    let started = Instant::now();
    let warm = http_get(&addr, target).expect("repeat query");
    let warm_elapsed = started.elapsed();
    assert_eq!(warm.header("x-swope-cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cache must serve identical bytes");
    let speedup = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9);
    println!(
        "\ncold: {:.1} ms ({})   warm: {:.3} ms ({})   speedup: {speedup:.0}x",
        cold_elapsed.as_secs_f64() * 1e3,
        cold.header("x-swope-cache").unwrap_or("?"),
        warm_elapsed.as_secs_f64() * 1e3,
        warm.header("x-swope-cache").unwrap_or("?"),
    );

    // 5. The cache hit is visible in the metrics too.
    let metrics = http_get(&addr, "/metrics").expect("metrics");
    let hits = metrics
        .body
        .lines()
        .find(|l| l.starts_with("swope_cache_hits_total"))
        .expect("cache hit counter");
    println!("{hits}");

    handle.shutdown();
    serving.join().expect("clean shutdown");
}
