//! Decision-tree split scoring via information gain — another motivating
//! application from the paper's introduction (ID3-style learning [27]).
//!
//! Information gain of splitting on attribute `a` for label `y` is
//! exactly the empirical mutual information `I(y, a)`, so a SWOPE top-1
//! MI query picks the split without scanning the full partition. This
//! example grows a small tree, using SWOPE at each node on the node's row
//! subset.
//!
//! ```text
//! cargo run --release -p swope-examples --example decision_tree
//! ```

use swope_columnar::Dataset;
use swope_core::{mi_top_k, SwopeConfig};
use swope_datagen::{generate, ColumnSpec, DatasetProfile, Distribution};
use swope_estimate::entropy::column_entropy;

struct Node {
    depth: usize,
    rows: Vec<usize>,
    split: Option<usize>,
    label_entropy: f64,
}

fn grow(dataset: &Dataset, label: usize, rows: Vec<usize>, depth: usize, out: &mut Vec<Node>) {
    let rows_u32: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
    let node_data = dataset.take_rows(&rows);
    let label_entropy = column_entropy(node_data.column(label));

    // Stop on purity, depth, or tiny partitions.
    if label_entropy < 0.05 || depth >= 2 || rows.len() < 8_000 {
        out.push(Node { depth, rows, split: None, label_entropy });
        return;
    }

    // SWOPE picks the highest-information-gain attribute on this node's
    // data. ε = 0.5 suffices: any near-best split is fine for a tree.
    let cfg = SwopeConfig::with_epsilon(0.5);
    let best = mi_top_k(&node_data, label, 1, &cfg).expect("valid query").top.remove(0);
    if best.estimate < 0.02 {
        // No attribute is informative; make a leaf.
        out.push(Node { depth, rows, split: None, label_entropy });
        return;
    }
    let split_attr = best.attr;

    // Partition rows by the split attribute's value and recurse.
    let col = dataset.column(split_attr);
    let mut parts: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
    for &r in &rows {
        parts.entry(col.code(r)).or_default().push(r);
    }
    out.push(Node {
        depth,
        rows: rows_u32.iter().map(|&r| r as usize).collect(),
        split: Some(split_attr),
        label_entropy,
    });
    for (_, part) in parts {
        if !part.is_empty() {
            grow(dataset, label, part, depth + 1, out);
        }
    }
}

/// A classification table with known structure: the label reflects a
/// latent "segment"; several small-domain features reflect it at varying
/// strength (good splits), plus pure-noise columns. Supports are kept
/// small — ID3-style multiway splits on wide columns shatter the data
/// (the classic information-gain bias).
fn build_profile() -> DatasetProfile {
    let mut columns = vec![ColumnSpec::dependent("label", Distribution::Uniform { u: 4 }, 0, 0.95)];
    for (name, strength, u) in
        [("plan_type", 0.8, 6u32), ("usage_tier", 0.6, 8), ("region", 0.35, 5)]
    {
        columns.push(ColumnSpec::dependent(name, Distribution::Uniform { u }, 0, strength));
    }
    for i in 0..6 {
        columns.push(ColumnSpec::independent(
            format!("noise_{i}"),
            Distribution::Zipf { u: 6 + i, s: 1.0 },
        ));
    }
    DatasetProfile { name: "churn".into(), rows: 120_000, latent_supports: vec![6], columns }
}

fn main() {
    let dataset = generate(&build_profile(), 11);
    let label = 0;
    println!(
        "growing a depth-3 tree on {} rows, label = attribute {label} (H = {:.3} bits)",
        dataset.num_rows(),
        column_entropy(dataset.column(label))
    );

    let mut nodes = Vec::new();
    let all_rows: Vec<usize> = (0..dataset.num_rows()).collect();
    grow(&dataset, label, all_rows, 0, &mut nodes);

    println!("\n{} nodes (showing up to 25):", nodes.len());
    for n in nodes.iter().take(25) {
        let indent = "  ".repeat(n.depth + 1);
        match n.split {
            Some(attr) => {
                let name = dataset.schema().field(attr).map(|f| f.name()).unwrap_or("?");
                println!(
                    "{indent}split on {:<12} ({} rows, label H = {:.3})",
                    name,
                    n.rows.len(),
                    n.label_entropy
                );
            }
            None => {
                println!("{indent}leaf ({} rows, label H = {:.3})", n.rows.len(), n.label_entropy)
            }
        }
    }

    let leaves = nodes.iter().filter(|n| n.split.is_none()).count();
    let mean_leaf_h: f64 = nodes
        .iter()
        .filter(|n| n.split.is_none())
        .map(|n| n.label_entropy * n.rows.len() as f64)
        .sum::<f64>()
        / dataset.num_rows() as f64;
    println!(
        "\n{leaves} leaves; weighted mean leaf label entropy {:.3} bits (root was {:.3})",
        mean_leaf_h,
        column_entropy(dataset.column(label))
    );
}
