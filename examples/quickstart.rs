//! Quickstart: build a dataset, run all four SWOPE queries, compare with
//! exact answers.
//!
//! ```text
//! cargo run --release -p swope-examples --example quickstart
//! ```

use swope_baselines::{exact_entropy_scores, exact_mi_scores};
use swope_core::{entropy_filter, entropy_top_k, mi_filter, mi_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

fn main() {
    // 1. Get a dataset. Here: a synthetic census-like table; in real use,
    //    load one with swope_columnar::csv::read_csv_file.
    let profile = corpus::tiny(200_000, 25);
    let dataset = generate(&profile, 42);
    println!(
        "dataset: {} rows x {} attributes (max support {})",
        dataset.num_rows(),
        dataset.num_attrs(),
        dataset.schema().max_support()
    );

    // 2. Approximate top-k on empirical entropy (Definition 5, ε = 0.1).
    let config = SwopeConfig::with_epsilon(0.1);
    let topk = entropy_top_k(&dataset, 5, &config).expect("valid query");
    println!("\ntop-5 attributes by empirical entropy (ε = 0.1):");
    for s in &topk.top {
        println!(
            "  {:<12} H ∈ [{:.3}, {:.3}], estimate {:.3}",
            s.name, s.lower, s.upper, s.estimate
        );
    }
    println!(
        "  sampled {} of {} rows ({} iterations, early stop: {})",
        topk.stats.sample_size,
        dataset.num_rows(),
        topk.stats.iterations,
        topk.stats.converged_early
    );

    // Sanity: compare against the exact ranking.
    let exact = exact_entropy_scores(&dataset);
    let mut order: Vec<usize> = (0..exact.len()).collect();
    order.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());
    println!("  exact top-5: {:?}", &order[..5]);
    println!("  swope top-5: {:?}", topk.attr_indices());

    // 3. Approximate filtering: entropy ≥ 2 bits (Definition 6, ε = 0.05).
    let filter_cfg = SwopeConfig::with_epsilon(0.05);
    let filtered = entropy_filter(&dataset, 2.0, &filter_cfg).expect("valid query");
    println!(
        "\n{} attributes with entropy ≥ 2.0 bits (sampled {} rows)",
        filtered.accepted.len(),
        filtered.stats.sample_size
    );

    // 4. Mutual information against a target attribute (ε = 0.5, the
    //    paper's tuned default for MI queries). Pick a target that shares
    //    a latent factor with at least one other strongly-coupled column,
    //    so the MI ranking has real structure (the profile records which
    //    columns depend on which latent factor).
    let mut by_latent: std::collections::HashMap<usize, Vec<(usize, f64)>> =
        std::collections::HashMap::new();
    for (i, c) in profile.columns.iter().enumerate() {
        if let Some(d) = c.dependence {
            by_latent.entry(d.latent).or_default().push((i, d.strength));
        }
    }
    let target = by_latent
        .values()
        .filter(|cols| cols.len() >= 2)
        .max_by(|a, b| {
            let sa: f64 = a.iter().map(|(_, s)| s).sum();
            let sb: f64 = b.iter().map(|(_, s)| s).sum();
            sa.partial_cmp(&sb).unwrap()
        })
        .and_then(|cols| cols.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).map(|&(i, _)| i))
        .unwrap_or(0);
    let mi_cfg = SwopeConfig::with_epsilon(0.5);
    let mi = mi_top_k(&dataset, target, 5, &mi_cfg).expect("valid query");
    println!("\ntop-5 attributes by MI with attribute {target}:");
    for s in &mi.top {
        println!(
            "  {:<12} I ∈ [{:.3}, {:.3}], estimate {:.3}",
            s.name, s.lower, s.upper, s.estimate
        );
    }
    let exact_mi = exact_mi_scores(&dataset, target);
    let mut mi_order: Vec<usize> = (0..exact_mi.len()).filter(|&a| a != target).collect();
    mi_order.sort_by(|&a, &b| exact_mi[b].partial_cmp(&exact_mi[a]).unwrap());
    println!("  exact top-5: {:?}", &mi_order[..5]);

    // 5. MI filtering: candidates with I ≥ 0.2 bits.
    let mi_filtered = mi_filter(&dataset, target, 0.2, &mi_cfg).expect("valid query");
    println!(
        "\n{} attributes with MI(target, ·) ≥ 0.2 bits: {:?}",
        mi_filtered.accepted.len(),
        mi_filtered.attr_indices()
    );
}
