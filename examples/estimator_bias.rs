//! Empirical study of the Lemma 1 bias envelope and the bias-corrected
//! point estimators (extension beyond the paper).
//!
//! Lemma 1 bounds how far below the truth a subsample's plug-in entropy
//! sits in expectation: `0 ≤ H_D − E[H_S] ≤ b(α)` with
//! `b(α) = log2(1 + (u−1)(N−M)/(M(N−1)))`. This example measures the
//! actual bias across sample sizes and shows (a) it is always inside the
//! envelope, and (b) how Miller–Madow and jackknife corrections shrink
//! it — context for why SWOPE's upper bound must carry the `b(α)` term.
//!
//! ```text
//! cargo run --release -p swope-examples --example estimator_bias
//! ```

use swope_datagen::{generate_column, Distribution};
use swope_estimate::bounds::bias;
use swope_estimate::entropy::{column_entropy, EntropyCounter};
use swope_estimate::estimators::{jackknife, miller_madow};
use swope_sampling::{PrefixShuffle, Sampler};

fn main() {
    let n = 1_000_000usize;
    let dist = Distribution::Zipf { u: 500, s: 0.6 };
    let column = generate_column(&dist, n, 99);
    let h_exact = column_entropy(&column);
    println!("population: N = {n}, Zipf(u=500, s=0.6), exact H_D = {h_exact:.4} bits\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "M", "plug-in", "Miller-M.", "jackknife", "bias", "Lemma1 b(α)"
    );

    let trials = 40;
    for m in [256usize, 1024, 4096, 16_384, 65_536, 262_144] {
        let mut mean_plugin = 0.0;
        let mut mean_mm = 0.0;
        let mut mean_jk = 0.0;
        for trial in 0..trials {
            let mut sampler = PrefixShuffle::new(n, 1000 + trial);
            let rows = sampler.grow_to(m).to_vec();
            let mut counter = EntropyCounter::new(column.support());
            for &r in &rows {
                counter.add(column.code(r as usize));
            }
            mean_plugin += counter.entropy();
            mean_mm += miller_madow(counter.counts());
            mean_jk += jackknife(counter.counts());
        }
        mean_plugin /= trials as f64;
        mean_mm /= trials as f64;
        mean_jk /= trials as f64;
        let envelope = bias(500, m as u64, n as u64);
        let actual_bias = h_exact - mean_plugin;
        println!(
            "{m:>8} {mean_plugin:>10.4} {mean_mm:>10.4} {mean_jk:>10.4} {actual_bias:>10.4} {envelope:>12.4}"
        );
        assert!(
            actual_bias <= envelope + 0.02,
            "observed bias {actual_bias} escaped the Lemma 1 envelope {envelope}"
        );
        assert!(actual_bias >= -0.05, "plug-in should not overestimate on average");
    }

    println!(
        "\nObservations: the plug-in bias stays inside the Lemma 1 envelope at every M \
         (the envelope is loose for tiny M, tight for large M); Miller–Madow and the \
         jackknife remove most of the bias at moderate M, which is why they make good \
         point estimates — but they come with no high-probability interval, which is \
         what SWOPE's λ/b(α) machinery adds."
    );
}
