//! Shared helpers for the runnable examples (`examples/*.rs`).
//!
//! Currently: a minimal HTTP/1.1 client over `std::net::TcpStream`, enough
//! to talk to `swope serve` without pulling in any external crates.

use std::io::{Read, Write};
use std::net::TcpStream;

/// A parsed HTTP response from the SWOPE server.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code (200, 404, 503, ...).
    pub status: u16,
    /// Response headers, lowercase names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body (JSON for every `/query` and `/datasets` endpoint).
    pub body: String,
}

impl HttpReply {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }
}

/// Sends `GET <target>` to `addr` and reads the full response.
///
/// The server closes each connection after one exchange
/// (`Connection: close`), so reading to EOF delimits the body.
pub fn http_get(addr: &str, target: &str) -> std::io::Result<HttpReply> {
    exchange(addr, &format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"))
}

/// Sends `POST <target>` with a JSON body and reads the full response.
pub fn http_post(addr: &str, target: &str, body: &str) -> std::io::Result<HttpReply> {
    exchange(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn exchange(addr: &str, request: &str) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_reply(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_reply(raw: &str) -> Option<HttpReply> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Some(HttpReply { status, headers, body: body.to_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let r = parse_reply(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Swope-Cache: hit\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-swope-cache"), Some("hit"));
        assert_eq!(r.header("X-Swope-Cache"), Some("hit"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply("not http").is_none());
    }
}
