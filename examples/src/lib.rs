//! Examples live in the crate root (`examples/*.rs`); this library is empty.
