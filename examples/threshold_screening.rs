//! Threshold screening with filtering queries — the paper's Definition 6
//! in a data-quality workflow.
//!
//! Scenario: before loading a wide table into an ML pipeline, screen out
//! near-constant columns (entropy below a floor) and flag near-identifier
//! columns (entropy close to `log2(support)`), using approximate
//! filtering instead of full scans. Also demonstrates what the ε band
//! means operationally: attributes inside `[(1−ε)η, (1+ε)η)` may land on
//! either side, everything else is guaranteed.
//!
//! ```text
//! cargo run --release -p swope-examples --example threshold_screening
//! ```

use swope_baselines::exact_entropy_scores;
use swope_core::{entropy_filter, SwopeConfig};
use swope_datagen::{corpus, generate};

fn main() {
    let dataset = generate(&corpus::cdc(0.01), 3); // ~37.5k rows x 100 cols
    println!("screening {} columns over {} rows", dataset.num_attrs(), dataset.num_rows());

    // Keep columns with at least 0.5 bits of entropy.
    let eta = 0.5;
    let epsilon = 0.05;
    let cfg = SwopeConfig::with_epsilon(epsilon);
    let kept = entropy_filter(&dataset, eta, &cfg).expect("valid query");
    println!(
        "\n{} columns pass the {eta}-bit floor (sampled {} of {} rows, {} iterations)",
        kept.accepted.len(),
        kept.stats.sample_size,
        dataset.num_rows(),
        kept.stats.iterations
    );

    // Verify the Definition 6 contract against exact scores.
    let exact = exact_entropy_scores(&dataset);
    let mut mandatory_ok = 0;
    let mut forbidden_ok = 0;
    let mut band = 0;
    for (attr, &score) in exact.iter().enumerate() {
        let included = kept.contains(attr);
        if score >= (1.0 + epsilon) * eta {
            assert!(included, "attr {attr} (H={score:.3}) must be kept");
            mandatory_ok += 1;
        } else if score < (1.0 - epsilon) * eta {
            assert!(!included, "attr {attr} (H={score:.3}) must be dropped");
            forbidden_ok += 1;
        } else {
            band += 1;
        }
    }
    println!(
        "Definition 6 check: {mandatory_ok} mandatory kept, {forbidden_ok} forbidden dropped, \
         {band} in the free ε-band"
    );

    // Flag suspicious near-identifier columns: entropy within 2% of the
    // maximum log2(support) — likely keys, not features.
    println!("\nnear-identifier columns (entropy ≈ log2(support)):");
    let mut found = 0;
    for s in &kept.accepted {
        let support = dataset.support(s.attr) as f64;
        let ceiling = support.log2();
        if ceiling > 3.0 && s.estimate > 0.98 * ceiling {
            println!(
                "  {:<12} estimate {:.3} of max {:.3} bits (support {})",
                s.name, s.estimate, ceiling, support as u32
            );
            found += 1;
        }
    }
    if found == 0 {
        println!("  none");
    }

    let dropped = dataset.num_attrs() - kept.accepted.len();
    let scan_note = if kept.stats.sample_size < dataset.num_rows() {
        format!("full scan avoided: {} of {} rows read", kept.stats.sample_size, dataset.num_rows())
    } else {
        // At this small N the ε-band around η needs most of the data; on
        // paper-scale datasets the same query samples a tiny fraction.
        format!("all {} rows read (N too small to stop early)", dataset.num_rows())
    };
    println!("\nsummary: keep {}, drop {dropped}; {scan_note}", kept.accepted.len());
}
