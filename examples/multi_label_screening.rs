//! Multi-label relevance screening with the batch MI API.
//!
//! Scenario: a feature store serves several prediction tasks (labels).
//! For each label we want its top-k most informative features. Running
//! `mi_top_k` once per label resamples and recounts every marginal per
//! run; `mi_top_k_batch` shares one growing sample and one set of
//! marginal counters across all labels, paying per-label only for the
//! joint counts.
//!
//! ```text
//! cargo run --release -p swope-examples --example multi_label_screening
//! ```

use std::time::Instant;

use swope_core::{mi_top_k, mi_top_k_batch, SwopeConfig};
use swope_datagen::{generate, ColumnSpec, DatasetProfile, Distribution};

/// Three label columns driven by different latent factors, features
/// spread across those factors, plus noise.
fn build_profile() -> DatasetProfile {
    let mut columns = Vec::new();
    for (i, latent) in [0usize, 1, 2].iter().enumerate() {
        columns.push(ColumnSpec::dependent(
            format!("label_{i}"),
            Distribution::Uniform { u: 4 },
            *latent,
            0.9,
        ));
    }
    for i in 0..12 {
        let latent = i % 3;
        let strength = 0.3 + 0.05 * i as f64;
        columns.push(ColumnSpec::dependent(
            format!("feat_{i}"),
            Distribution::Uniform { u: 8 },
            latent,
            strength,
        ));
    }
    for i in 0..10 {
        columns.push(ColumnSpec::independent(
            format!("noise_{i}"),
            Distribution::Zipf { u: 16, s: 1.1 },
        ));
    }
    DatasetProfile {
        name: "multilabel".into(),
        rows: 200_000,
        latent_supports: vec![8, 8, 8],
        columns,
    }
}

fn main() {
    let dataset = generate(&build_profile(), 17);
    let labels = [0usize, 1, 2];
    let k = 4;
    let config = SwopeConfig::with_epsilon(0.5);
    println!(
        "{} rows x {} attributes; screening top-{k} features for {} labels\n",
        dataset.num_rows(),
        dataset.num_attrs(),
        labels.len()
    );

    // Batched: one shared sample.
    let t0 = Instant::now();
    let batched = mi_top_k_batch(&dataset, &labels, k, &config).expect("valid query");
    let batch_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Individual queries for comparison.
    let t0 = Instant::now();
    let individual: Vec<_> =
        labels.iter().map(|&t| mi_top_k(&dataset, t, k, &config).expect("valid query")).collect();
    let individual_ms = t0.elapsed().as_secs_f64() * 1e3;

    for (i, (batch_res, single_res)) in batched.iter().zip(&individual).enumerate() {
        println!("label_{i}: top-{k} features by MI");
        for s in &batch_res.top {
            println!("    {:<10} I ≈ {:.3} bits", s.name, s.estimate);
        }
        let mut a = batch_res.attr_indices();
        let mut b = single_res.attr_indices();
        a.sort_unstable();
        b.sort_unstable();
        println!(
            "    (individual query agrees: {})",
            if a == b { "yes" } else { "no — both within the ε contract" }
        );
    }

    println!(
        "\nbatched: {batch_ms:.1} ms for all labels;  individual: {individual_ms:.1} ms \
         ({:.2}x)",
        individual_ms / batch_ms.max(1e-9)
    );
    let batch_work: u64 = batched.iter().map(|r| r.stats.rows_scanned).sum();
    let single_work: u64 = individual.iter().map(|r| r.stats.rows_scanned).sum();
    println!("counter updates: batched {batch_work} vs individual {single_work}");
}
