//! Per-column summary statistics.
//!
//! These are cheap single-pass summaries used by the CLI, the data
//! generator's self-checks, and the bench harness's dataset tables
//! (paper Table 2). Entropy itself lives in `swope-estimate`.

use crate::{AttrIndex, Dataset};

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Attribute index in the parent dataset.
    pub attr: AttrIndex,
    /// Attribute name.
    pub name: String,
    /// Declared support size `u_alpha`.
    pub support: u32,
    /// Number of codes observed at least once.
    pub observed_distinct: usize,
    /// Count of the most frequent code.
    pub max_count: u64,
    /// The most frequent code (lowest code wins ties); `None` for empty data.
    pub mode: Option<u32>,
    /// `max_count / N` — how concentrated the column is. 0 for empty data.
    pub mode_fraction: f64,
    /// Bits per code at the column's packed storage width (8, 16, or 32).
    pub code_width: u8,
    /// Bytes the column's codes occupy in memory at that width.
    pub bytes_in_memory: usize,
}

/// Computes statistics for one column of `dataset`.
pub fn column_stats(dataset: &Dataset, attr: AttrIndex) -> ColumnStats {
    let col = dataset.column(attr);
    let counts = col.value_counts();
    let observed_distinct = counts.iter().filter(|&&n| n > 0).count();
    let (mode, max_count) = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, &n)| (Some(i as u32), n))
        .unwrap_or((None, 0));
    let n = col.len();
    let mode_fraction = if n == 0 { 0.0 } else { max_count as f64 / n as f64 };
    ColumnStats {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        support: col.support(),
        observed_distinct,
        max_count,
        mode: if n == 0 { None } else { mode },
        mode_fraction,
        code_width: col.width().bits() as u8,
        bytes_in_memory: col.bytes_in_memory(),
    }
}

/// Total bytes of width-packed code storage across all columns.
pub fn bytes_in_memory(dataset: &Dataset) -> usize {
    (0..dataset.num_attrs()).map(|a| dataset.column(a).bytes_in_memory()).sum()
}

/// Bytes the same columns would occupy unpacked (4 bytes per code) —
/// the denominator for "savings vs all-u32" reporting.
pub fn bytes_unpacked(dataset: &Dataset) -> usize {
    dataset.num_attrs() * dataset.num_rows() * 4
}

/// Computes statistics for all columns of `dataset`.
pub fn dataset_stats(dataset: &Dataset) -> Vec<ColumnStats> {
    (0..dataset.num_attrs()).map(|a| column_stats(dataset, a)).collect()
}

/// A dataset-level summary row, as in the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Number of rows `N`.
    pub rows: usize,
    /// Number of columns `h`.
    pub columns: usize,
    /// Maximum support among columns (`u_max`).
    pub max_support: u32,
}

/// Summarizes `dataset` (paper Table 2 row shape).
pub fn summarize(dataset: &Dataset) -> DatasetSummary {
    DatasetSummary {
        rows: dataset.num_rows(),
        columns: dataset.num_attrs(),
        max_support: dataset.schema().max_support(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, Dataset, Field, Schema};

    fn ds() -> Dataset {
        let schema = Schema::new(vec![Field::new("x", 3), Field::new("y", 2)]);
        let cols = vec![
            Column::new(vec![0, 1, 1, 1, 2], 3).unwrap(),
            Column::new(vec![0, 0, 0, 0, 0], 2).unwrap(),
        ];
        Dataset::new(schema, cols).unwrap()
    }

    #[test]
    fn column_stats_finds_mode() {
        let s = column_stats(&ds(), 0);
        assert_eq!(s.mode, Some(1));
        assert_eq!(s.max_count, 3);
        assert_eq!(s.observed_distinct, 3);
        assert!((s.mode_fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn constant_column_has_full_concentration() {
        let s = column_stats(&ds(), 1);
        assert_eq!(s.mode, Some(0));
        assert_eq!(s.observed_distinct, 1);
        assert!((s.mode_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_tie_breaks_to_lowest_code() {
        let schema = Schema::new(vec![Field::new("x", 2)]);
        let col = Column::new(vec![1, 0], 2).unwrap();
        let d = Dataset::new(schema, vec![col]).unwrap();
        assert_eq!(column_stats(&d, 0).mode, Some(0));
    }

    #[test]
    fn summarize_matches_shape() {
        let s = summarize(&ds());
        assert_eq!(s, DatasetSummary { rows: 5, columns: 2, max_support: 3 });
    }

    #[test]
    fn dataset_stats_covers_all_columns() {
        assert_eq!(dataset_stats(&ds()).len(), 2);
    }

    #[test]
    fn stats_report_packed_width_and_bytes() {
        let s = column_stats(&ds(), 0);
        // Support 3 packs at u8: one byte per row.
        assert_eq!(s.code_width, 8);
        assert_eq!(s.bytes_in_memory, 5);
        assert_eq!(bytes_in_memory(&ds()), 10);
        assert_eq!(bytes_unpacked(&ds()), 40);
    }

    #[test]
    fn empty_dataset_stats() {
        let schema = Schema::new(vec![Field::new("x", 3)]);
        let d = Dataset::new(schema, vec![Column::new(vec![], 3).unwrap()]).unwrap();
        let s = column_stats(&d, 0);
        assert_eq!(s.mode, None);
        assert_eq!(s.mode_fraction, 0.0);
    }
}
