//! A small, dependency-free CSV reader producing a [`Dataset`].
//!
//! Supports the common dialect: configurable delimiter, optional header row,
//! double-quoted fields with `""` escaping, and both `\n` and `\r\n` line
//! endings. Every field is treated as a categorical string value and
//! dictionary-encoded.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{ColumnarError, Dataset, DatasetBuilder};

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter. Defaults to `,`.
    pub delimiter: u8,
    /// Whether the first record is a header of attribute names. Defaults to
    /// `true`; when `false`, attributes are named `col0`, `col1`, ...
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self { delimiter: b',', has_header: true }
    }
}

/// Reads a CSV document from `reader` into a [`Dataset`].
pub fn read_csv<R: Read>(reader: R, options: &CsvOptions) -> Result<Dataset, ColumnarError> {
    let mut lines = RecordReader::new(BufReader::new(reader), options.delimiter);
    let mut line_no = 0usize;

    let first = match lines.next_record()? {
        Some(r) => r,
        None => return Err(ColumnarError::Csv { line: 1, message: "empty document".into() }),
    };
    line_no += 1;

    let (names, mut builder, carry) = if options.has_header {
        let names = first;
        let b = DatasetBuilder::new(names.clone());
        (names, b, None)
    } else {
        let names: Vec<String> = (0..first.len()).map(|i| format!("col{i}")).collect();
        let b = DatasetBuilder::new(names.clone());
        (names, b, Some(first))
    };

    if let Some(row) = carry {
        builder.push_row(&row).map_err(|e| arity_to_csv(e, line_no))?;
    }
    while let Some(row) = lines.next_record()? {
        line_no += 1;
        if row.len() != names.len() {
            return Err(ColumnarError::Csv {
                line: line_no,
                message: format!("expected {} fields, found {}", names.len(), row.len()),
            });
        }
        builder.push_row(&row).map_err(|e| arity_to_csv(e, line_no))?;
    }
    Ok(builder.finish())
}

/// Reads a CSV file at `path` into a [`Dataset`].
pub fn read_csv_file(
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> Result<Dataset, ColumnarError> {
    let file = std::fs::File::open(path)?;
    read_csv(file, options)
}

/// Writes `dataset` as CSV (header + decoded values) to `writer`.
///
/// Fields with no dictionary are written as their numeric codes.
pub fn write_csv<W: std::io::Write>(
    dataset: &Dataset,
    writer: &mut W,
) -> Result<(), ColumnarError> {
    let schema = dataset.schema();
    let header: Vec<&str> = schema.fields().iter().map(|f| f.name()).collect();
    writeln!(writer, "{}", header.join(","))?;
    let mut buf = String::new();
    for row in 0..dataset.num_rows() {
        buf.clear();
        for attr in 0..dataset.num_attrs() {
            if attr > 0 {
                buf.push(',');
            }
            let code = dataset.column(attr).code(row);
            match schema.field(attr).and_then(|f| f.dictionary()) {
                Some(dict) => {
                    let raw = dict.decode(code).unwrap_or("");
                    push_escaped(&mut buf, raw);
                }
                None => {
                    buf.push_str(&code.to_string());
                }
            }
        }
        writeln!(writer, "{buf}")?;
    }
    Ok(())
}

fn push_escaped(buf: &mut String, raw: &str) {
    if raw.contains([',', '"', '\n', '\r']) {
        buf.push('"');
        for ch in raw.chars() {
            if ch == '"' {
                buf.push('"');
            }
            buf.push(ch);
        }
        buf.push('"');
    } else {
        buf.push_str(raw);
    }
}

fn arity_to_csv(e: ColumnarError, line: usize) -> ColumnarError {
    match e {
        ColumnarError::RowArity { expected, got } => {
            ColumnarError::Csv { line, message: format!("expected {expected} fields, found {got}") }
        }
        other => other,
    }
}

/// Streaming record reader handling quoting and CRLF.
struct RecordReader<R: BufRead> {
    reader: R,
    delimiter: u8,
    line: usize,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R, delimiter: u8) -> Self {
        Self { reader, delimiter, line: 0 }
    }

    /// Reads the next logical record (which may span physical lines when a
    /// quoted field contains newlines). Returns `None` at end of input.
    fn next_record(&mut self) -> Result<Option<Vec<String>>, ColumnarError> {
        let mut raw = String::new();
        loop {
            let start_len = raw.len();
            let n = self.reader.read_line(&mut raw)?;
            if n == 0 {
                if raw.is_empty() {
                    return Ok(None);
                }
                break;
            }
            self.line += 1;
            // A record is complete when quotes balance.
            if raw[start_len..].is_empty() {
                break;
            }
            if quotes_balanced(&raw) {
                break;
            }
        }
        // Trim one trailing newline / CRLF.
        while raw.ends_with('\n') || raw.ends_with('\r') {
            raw.pop();
        }
        if raw.is_empty() {
            // Skip blank lines between records.
            return self.next_record();
        }
        Ok(Some(self.split_record(&raw)?))
    }

    fn split_record(&self, raw: &str) -> Result<Vec<String>, ColumnarError> {
        let mut fields = Vec::new();
        let mut field = String::new();
        // Iterate chars, not bytes: field content may be any UTF-8, while
        // the structural characters (quote, delimiter) are ASCII.
        let mut chars = raw.chars().peekable();
        let delim = self.delimiter as char;
        let mut in_quotes = false;
        while let Some(ch) = chars.next() {
            if in_quotes {
                if ch == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    field.push(ch);
                }
            } else if ch == '"' {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    return Err(ColumnarError::Csv {
                        line: self.line,
                        message: "quote in unquoted field".into(),
                    });
                }
            } else if ch == delim {
                fields.push(std::mem::take(&mut field));
            } else {
                field.push(ch);
            }
        }
        if in_quotes {
            return Err(ColumnarError::Csv {
                line: self.line,
                message: "unterminated quote".into(),
            });
        }
        fields.push(field);
        Ok(fields)
    }
}

fn quotes_balanced(s: &str) -> bool {
    s.bytes().filter(|&b| b == b'"').count() % 2 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Dataset {
        read_csv(s.as_bytes(), &CsvOptions::default()).unwrap()
    }

    #[test]
    fn parses_simple_document() {
        let ds = parse("a,b\n1,x\n2,y\n1,x\n");
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.num_attrs(), 2);
        assert_eq!(ds.attr_index("b").unwrap(), 1);
        assert_eq!(ds.column(0).to_codes(), vec![0, 1, 0]);
    }

    #[test]
    fn handles_crlf_and_blank_lines() {
        let ds = parse("a,b\r\n1,x\r\n\r\n2,y\r\n");
        assert_eq!(ds.num_rows(), 2);
    }

    #[test]
    fn quoted_fields_with_embedded_delimiters() {
        let ds = parse("a,b\n\"hello, world\",x\nplain,y\n");
        let dict = ds.schema().field(0).unwrap().dictionary().unwrap();
        assert_eq!(dict.decode(0), Some("hello, world"));
    }

    #[test]
    fn escaped_quotes_inside_quoted_field() {
        let ds = parse("a\n\"say \"\"hi\"\"\"\n");
        let dict = ds.schema().field(0).unwrap().dictionary().unwrap();
        assert_eq!(dict.decode(0), Some("say \"hi\""));
    }

    #[test]
    fn quoted_newline_spans_lines() {
        let ds = parse("a,b\n\"multi\nline\",x\n");
        assert_eq!(ds.num_rows(), 1);
        let dict = ds.schema().field(0).unwrap().dictionary().unwrap();
        assert_eq!(dict.decode(0), Some("multi\nline"));
    }

    #[test]
    fn utf8_content_survives_intact() {
        let ds = parse("名前,city\n\"tōkyō, 東京\",münchen\nπ,κόσμος\n");
        let d0 = ds.schema().field(0).unwrap().dictionary().unwrap();
        let d1 = ds.schema().field(1).unwrap().dictionary().unwrap();
        assert_eq!(d0.decode(0), Some("tōkyō, 東京"));
        assert_eq!(d0.decode(1), Some("π"));
        assert_eq!(d1.decode(0), Some("münchen"));
        assert_eq!(d1.decode(1), Some("κόσμος"));
        assert_eq!(ds.attr_index("名前").unwrap(), 0);
        // And it round-trips through the writer.
        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let back = read_csv(out.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(back.column(0).to_codes(), ds.column(0).to_codes());
    }

    #[test]
    fn invalid_utf8_input_errors_cleanly() {
        let bytes: &[u8] = b"a,b\n\xFF\xFE,x\n";
        assert!(read_csv(bytes, &CsvOptions::default()).is_err());
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions { has_header: false, ..Default::default() };
        let ds = read_csv("1,2\n3,4\n".as_bytes(), &opts).unwrap();
        assert_eq!(ds.num_rows(), 2);
        assert_eq!(ds.attr_index("col1").unwrap(), 1);
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions { delimiter: b';', ..Default::default() };
        let ds = read_csv("a;b\n1;2\n".as_bytes(), &opts).unwrap();
        assert_eq!(ds.num_attrs(), 2);
    }

    #[test]
    fn field_count_mismatch_errors_with_line() {
        let err = read_csv("a,b\n1\n".as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            ColumnarError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv("a\n\"oops\n".as_bytes(), &CsvOptions::default()).is_err());
    }

    #[test]
    fn empty_document_errors() {
        assert!(read_csv("".as_bytes(), &CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_write_then_read() {
        let ds = parse("a,b\nred,\"x,1\"\nblue,y\nred,y\n");
        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let ds2 = read_csv(out.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(ds2.num_rows(), ds.num_rows());
        for attr in 0..ds.num_attrs() {
            assert_eq!(ds2.column(attr).to_codes(), ds.column(attr).to_codes());
        }
    }
}
