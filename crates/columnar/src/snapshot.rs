//! The `SWOP` binary on-disk format for datasets.
//!
//! Version 2 (the writer's format) is paged and checksummed so a reader
//! can reject bit rot before trusting anything, and sectioned so the
//! layout is validated against the file's real size before any payload
//! byte is touched. All integers little-endian:
//!
//! ```text
//! header (12 bytes):
//!   magic         b"SWOP"      4 bytes
//!   version       u16          2
//!   flags         u16          reserved, 0
//!   section_count u32          1 (schema) + h (one per column) [+ 1 sketch]
//! section table (24 bytes per entry, see `swope_store::section`):
//!   kind u32, attr u32, offset u64, len u64
//! schema section payload:
//!   h u32, N u64
//!   field*h:
//!     name_len u32, name bytes (UTF-8)
//!     support  u32
//!     has_dict u8
//!     if has_dict: count u32, then count * (len u32, bytes)
//!   crc u32                    CRC32 of the schema payload above
//! column section payload (one per attribute, in attribute order):
//!   width u8                   bytes per code: 1, 2, or 4
//!   paged codes                see `swope_store::page` (per-page CRC32)
//! sketch section payload (optional, at most one, last):
//!   per-page code histograms   see `swope_sketch` (own trailing CRC32)
//! ```
//!
//! The sketch section is *optional on read*: v2 files written before it
//! existed decode exactly as they always did, and [`decode_with_sketch`]
//! reports `None` for them. The writer always emits one so freshly
//! written snapshots support scoped queries without a load-time rebuild.
//!
//! Column codes are stored at their in-memory packed width, so a `u8`
//! column costs one byte per row on disk too. Every section length is a
//! pure function of the schema and row count, which lets [`write`]
//! stream: it emits the complete header and section table first, then
//! pages each column through one reusable page buffer — no
//! whole-snapshot staging in memory.
//!
//! Version 1 (one flat `u32` run per column, no checksums) is still
//! *read* for back-compat; v1 columns materialize as `u32`-packed
//! storage. [`encode_v1`] keeps the legacy writer available for tests
//! and downgrade tooling.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use swope_pager::{PageCache, PagedColumn};
use swope_sketch::{ColumnSketch, ColumnSketchBuilder, DatasetSketch};
use swope_store::crc32::crc32;
use swope_store::section::{
    validate_sections, Section, SECTION_COLUMN, SECTION_SCHEMA, SECTION_SKETCH,
};
use swope_store::{for_packed, page, CodeRepr, PackedColumn, Width};

use crate::{Column, ColumnStorage, ColumnarError, Dataset, Dictionary, Field, Schema};

const MAGIC: &[u8; 4] = b"SWOP";
const VERSION: u16 = 2;
const V1: u16 = 1;

/// Bytes before the section table: magic + version + flags + count.
const HEADER_BYTES: usize = 12;

/// Serializes `dataset` into a byte buffer (v2 format).
pub fn encode(dataset: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    write(dataset, &mut buf).expect("Vec writes are infallible");
    buf
}

/// Streams `dataset` in v2 snapshot format to `writer`.
///
/// The header and section table are emitted first (every section length
/// is computable up front), then columns are paged out through one
/// reusable buffer — peak extra memory is one page, not the snapshot.
pub fn write<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<(), ColumnarError> {
    let h = dataset.num_attrs();
    let n = dataset.num_rows();

    let mut schema_payload = Vec::new();
    schema_payload.extend_from_slice(&(h as u32).to_le_bytes());
    schema_payload.extend_from_slice(&(n as u64).to_le_bytes());
    for field in dataset.schema().fields() {
        put_str(&mut schema_payload, field.name());
        schema_payload.extend_from_slice(&field.support().to_le_bytes());
        match field.dictionary() {
            Some(dict) => {
                schema_payload.push(1);
                schema_payload.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for (_, v) in dict.iter() {
                    put_str(&mut schema_payload, v);
                }
            }
            None => schema_payload.push(0),
        }
    }
    let crc = crc32(&schema_payload);
    schema_payload.extend_from_slice(&crc.to_le_bytes());

    // The sketch is tiny next to the columns (histogram counts, not
    // rows), so encoding it up front keeps the section table computable
    // before any payload is streamed.
    let sketch_payload = build_sketch(dataset).encode();

    let section_count = 1 + h + 1;
    let mut offset =
        (HEADER_BYTES + section_count * swope_store::section::SECTION_ENTRY_BYTES) as u64;
    let mut table = Vec::with_capacity(section_count * swope_store::section::SECTION_ENTRY_BYTES);
    let schema_section =
        Section { kind: SECTION_SCHEMA, attr: 0, offset, len: schema_payload.len() as u64 };
    schema_section.write_into(&mut table);
    offset += schema_section.len;
    for attr in 0..h {
        let width = dataset.column(attr).width();
        let len = 1 + page::encoded_len(n, width) as u64;
        Section { kind: SECTION_COLUMN, attr: attr as u32, offset, len }.write_into(&mut table);
        offset += len;
    }
    Section { kind: SECTION_SKETCH, attr: 0, offset, len: sketch_payload.len() as u64 }
        .write_into(&mut table);

    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&0u16.to_le_bytes())?;
    writer.write_all(&(section_count as u32).to_le_bytes())?;
    writer.write_all(&table)?;
    writer.write_all(&schema_payload)?;
    for attr in 0..h {
        let column = dataset.column(attr);
        writer.write_all(&[column.width().tag()])?;
        match column.storage() {
            ColumnStorage::Heap(packed) => page::write_pages(packed.codes(), writer)?,
            ColumnStorage::Paged(paged) => write_paged_column(paged, writer)?,
        }
    }
    writer.write_all(&sketch_payload)?;
    Ok(())
}

/// Streams a pager-backed column's page payload, faulting one page at a
/// time — re-snapshotting an out-of-core dataset never needs a whole
/// column in memory, and every page's CRC is verified on the way through.
fn write_paged_column<W: Write>(paged: &PagedColumn, writer: &mut W) -> Result<(), ColumnarError> {
    if paged.page_rows() != page::PAGE_ROWS {
        // Foreign page geometry (only a hand-crafted file can carry one):
        // materialize and re-page at the standard size.
        let codes = paged.to_codes().map_err(store_err)?;
        let packed =
            PackedColumn::with_width(codes, paged.support(), paged.width()).map_err(store_err)?;
        return page::write_pages(packed.codes(), writer).map_err(Into::into);
    }
    writer.write_all(&(page::PAGE_ROWS as u32).to_le_bytes())?;
    writer.write_all(&(paged.num_pages() as u32).to_le_bytes())?;
    let mut payload = Vec::new();
    for index in 0..paged.num_pages() {
        let codes = paged.page(index).map_err(store_err)?;
        payload.clear();
        for_packed!(&*codes, |cs| CodeRepr::extend_le_bytes(cs, &mut payload));
        writer.write_all(&(codes.len() as u32).to_le_bytes())?;
        writer.write_all(&crc32(&payload).to_le_bytes())?;
        writer.write_all(&payload)?;
    }
    Ok(())
}

/// Builds the per-page partition sketch for `dataset` from its packed
/// columns (exact per-page code histograms; see `swope_sketch`). Paged
/// columns are sketched one faulted page at a time, so the build stays
/// within the pager's byte budget.
pub fn build_sketch(dataset: &Dataset) -> DatasetSketch {
    let columns = (0..dataset.num_attrs())
        .map(|attr| match dataset.column(attr).storage() {
            ColumnStorage::Heap(packed) => ColumnSketch::build(packed),
            ColumnStorage::Paged(paged) => sketch_paged(paged),
        })
        .collect();
    DatasetSketch::new(dataset.num_rows(), columns)
}

/// Sketches a pager-backed column page-by-page. Panics on a corrupt
/// page, matching the heap column accessors' contract.
fn sketch_paged(paged: &PagedColumn) -> ColumnSketch {
    if paged.page_rows() != page::PAGE_ROWS {
        let codes = paged.to_codes().unwrap_or_else(|e| panic!("{e}"));
        return ColumnSketch::build(&PackedColumn::new_unchecked(codes, paged.support()));
    }
    let mut builder = ColumnSketchBuilder::new(paged.support());
    for index in 0..paged.num_pages() {
        let codes = paged.page(index).unwrap_or_else(|e| panic!("{e}"));
        builder.push_page(&codes);
    }
    builder.finish()
}

/// Serializes `dataset` in the legacy v1 format (flat `u32` runs, no
/// checksums). Kept for back-compat tests and downgrade tooling.
pub fn encode_v1(dataset: &Dataset) -> Vec<u8> {
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    let mut buf = Vec::with_capacity(64 + h * 32 + h * n * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&V1.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for field in dataset.schema().fields() {
        put_str(&mut buf, field.name());
        buf.extend_from_slice(&field.support().to_le_bytes());
        match field.dictionary() {
            Some(dict) => {
                buf.push(1);
                buf.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for (_, v) in dict.iter() {
                    put_str(&mut buf, v);
                }
            }
            None => buf.push(0),
        }
    }
    for attr in 0..h {
        for code in dataset.column(attr).to_codes() {
            buf.extend_from_slice(&code.to_le_bytes());
        }
    }
    buf
}

/// Deserializes a dataset from `bytes`, dispatching on the format
/// version: v2 (paged, checksummed) or legacy v1 (flat `u32` runs,
/// materialized as `u32`-packed columns).
pub fn decode(bytes: &[u8]) -> Result<Dataset, ColumnarError> {
    decode_with_sketch(bytes).map(|(dataset, _)| dataset)
}

/// Like [`decode`], but also returns the partition sketch when the
/// snapshot carries one. v1 snapshots and pre-sketch v2 snapshots yield
/// `None`; a *present but* truncated or corrupt sketch section is an
/// error (a reader must not silently serve scoped queries from bad
/// counts).
pub fn decode_with_sketch(bytes: &[u8]) -> Result<(Dataset, Option<DatasetSketch>), ColumnarError> {
    let mut buf = bytes;
    let mut magic = [0u8; 4];
    take(&mut buf, &mut magic)?;
    if &magic != MAGIC {
        return Err(ColumnarError::Snapshot("bad magic".into()));
    }
    let version = get_u16(&mut buf)?;
    match version {
        V1 => decode_v1(buf).map(|dataset| (dataset, None)),
        VERSION => decode_v2(bytes, buf),
        other => Err(ColumnarError::Snapshot(format!(
            "unsupported version {other} (expected {V1} or {VERSION})"
        ))),
    }
}

/// Decodes the v2 body eagerly: every column's pages are CRC-checked
/// and unpacked to heap storage up front. `bytes` is the full snapshot
/// (for offset-based section slicing); `buf` starts right after the
/// version field.
fn decode_v2(bytes: &[u8], buf: &[u8]) -> Result<(Dataset, Option<DatasetSketch>), ColumnarError> {
    let parsed = parse_v2(bytes, buf)?;
    let n = parsed.n;
    let mut columns = Vec::with_capacity(parsed.fields.len());
    for (attr, ((width, range), field)) in parsed.columns.iter().zip(&parsed.fields).enumerate() {
        let codes = page::decode_pages(&bytes[range.clone()], n, *width)
            .map_err(|e| ColumnarError::Snapshot(format!("column {attr}: {e}")))?;
        let packed = PackedColumn::from_packed(codes, field.support())
            .map_err(|e| ColumnarError::Snapshot(format!("column {attr}: {e}")))?;
        columns.push(Column::from_packed(packed));
    }
    Dataset::new(Schema::new(parsed.fields), columns).map(|dataset| (dataset, parsed.sketch))
}

/// Opens the snapshot at `path` out-of-core: the file is mapped (or
/// buffered when mmap is unavailable — see `swope_pager::open_mapping`)
/// and every v2 column becomes a [`PagedColumn`] whose pages fault
/// through `cache` on first touch. Page CRCs are verified lazily, at
/// first touch, so opening costs section/schema validation plus one
/// 8-byte header walk per page — no payload reads.
///
/// The snapshot's own partition sketch (when present) doubles as the
/// pager's eviction hint: each page's cold-tier encoding is picked from
/// its sketch histogram. v1 snapshots pre-date paging and fall back to
/// the eager heap loader.
pub fn open_paged(
    path: impl AsRef<Path>,
    cache: Arc<PageCache>,
) -> Result<(Dataset, Option<DatasetSketch>), ColumnarError> {
    let mapping = swope_pager::open_mapping(path.as_ref())?;
    let bytes = mapping.bytes();
    let mut buf = bytes;
    let mut magic = [0u8; 4];
    take(&mut buf, &mut magic)?;
    if &magic != MAGIC {
        return Err(ColumnarError::Snapshot("bad magic".into()));
    }
    let version = get_u16(&mut buf)?;
    match version {
        V1 => return decode_v1(buf).map(|dataset| (dataset, None)),
        VERSION => {}
        other => {
            return Err(ColumnarError::Snapshot(format!(
                "unsupported version {other} (expected {V1} or {VERSION})"
            )))
        }
    }
    let parsed = parse_v2(bytes, buf)?;
    let n = parsed.n;
    let mut columns = Vec::with_capacity(parsed.fields.len());
    for (attr, ((width, range), field)) in parsed.columns.iter().zip(&parsed.fields).enumerate() {
        let picks =
            parsed.sketch.as_ref().and_then(|s| s.column(attr)).map(|cs| cs.encoding_picks(*width));
        let paged = PagedColumn::open(
            mapping.clone(),
            cache.clone(),
            range.clone(),
            n,
            field.support(),
            *width,
            picks,
        )
        .map_err(|e| ColumnarError::Snapshot(format!("column {attr}: {e}")))?;
        columns.push(Column::from_paged(Arc::new(paged)));
    }
    Dataset::new(Schema::new(parsed.fields), columns).map(|dataset| (dataset, parsed.sketch))
}

/// Everything a v2 snapshot declares short of column payload decoding:
/// the schema (CRC-checked), each column's stored width and payload
/// byte range, and the decoded sketch. Shared by the eager loader
/// ([`decode_v2`]) and the out-of-core one ([`open_paged`]).
struct ParsedV2 {
    fields: Vec<Field>,
    n: usize,
    /// Per attribute: stored width and the paged-payload byte range in
    /// the snapshot (past the width tag).
    columns: Vec<(Width, std::ops::Range<usize>)>,
    sketch: Option<DatasetSketch>,
}

/// Parses and validates a v2 snapshot's structure. `bytes` is the full
/// snapshot; `buf` starts right after the version field.
fn parse_v2(bytes: &[u8], mut buf: &[u8]) -> Result<ParsedV2, ColumnarError> {
    let _flags = get_u16(&mut buf)?;
    let section_count = get_u32(&mut buf)? as usize;
    // The table must fit the bytes present before a single entry (or a
    // sections Vec) is allocated: a corrupt count fails here, cheaply.
    let entry = swope_store::section::SECTION_ENTRY_BYTES;
    if (section_count as u64).saturating_mul(entry as u64) > buf.len() as u64 {
        return Err(truncated());
    }
    let mut sections = Vec::with_capacity(section_count);
    for _ in 0..section_count {
        sections.push(Section::parse(&mut buf).map_err(store_err)?);
    }
    let body_start = (HEADER_BYTES + section_count * entry) as u64;
    validate_sections(&sections, body_start, bytes.len() as u64).map_err(store_err)?;

    let (schema_section, column_sections) = sections
        .split_first()
        .filter(|(s, _)| s.kind == SECTION_SCHEMA)
        .ok_or_else(|| ColumnarError::Snapshot("first section must be the schema".into()))?;

    // Schema payload: body + trailing CRC32 of the body.
    let slice = section_slice(bytes, schema_section);
    if slice.len() < 4 {
        return Err(truncated());
    }
    let (body, crc_bytes) = slice.split_at(slice.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split at len-4"));
    if crc32(body) != stored {
        return Err(ColumnarError::Snapshot("schema section checksum mismatch".into()));
    }
    let mut sbuf = body;
    let h = get_u32(&mut sbuf)? as usize;
    let n = get_u64(&mut sbuf)? as usize;
    // Each field needs at least 9 bytes (name_len + support + has_dict);
    // check before the fields Vec is sized from h.
    if (h as u64).saturating_mul(9) > sbuf.len() as u64 {
        return Err(truncated());
    }
    let mut fields = Vec::with_capacity(h);
    for _ in 0..h {
        fields.push(parse_field(&mut sbuf)?);
    }
    if !sbuf.is_empty() {
        return Err(ColumnarError::Snapshot(format!(
            "{} trailing bytes after schema fields",
            sbuf.len()
        )));
    }

    // The sketch section, when present, is exactly one entry after the
    // column sections. Anything else trailing the columns is a layout
    // error, not something to skip over.
    let (column_sections, sketch_section) = match column_sections.split_last() {
        Some((last, rest)) if last.kind == SECTION_SKETCH => (rest, Some(last)),
        _ => (column_sections, None),
    };
    if column_sections.len() != h {
        return Err(ColumnarError::Snapshot(format!(
            "{} column sections for {h} attributes",
            column_sections.len()
        )));
    }
    let mut columns = Vec::with_capacity(h);
    for (attr, section) in column_sections.iter().enumerate() {
        if section.kind != SECTION_COLUMN || section.attr != attr as u32 {
            return Err(ColumnarError::Snapshot(format!(
                "section {} is not column {attr}",
                attr + 1
            )));
        }
        let slice = section_slice(bytes, section);
        let (&tag, _) = slice
            .split_first()
            .ok_or_else(|| ColumnarError::Snapshot("empty column section".into()))?;
        let width = Width::from_tag(tag).ok_or_else(|| {
            ColumnarError::Snapshot(format!("column {attr}: bad width tag {tag}"))
        })?;
        let start = section.offset as usize + 1;
        columns.push((width, start..start + (section.len as usize - 1)));
    }
    let sketch = match sketch_section {
        Some(section) => {
            let sketch = DatasetSketch::decode(section_slice(bytes, section))
                .map_err(|e| ColumnarError::Snapshot(format!("sketch section: {e}")))?;
            if sketch.num_rows() != n || sketch.num_columns() != h {
                return Err(ColumnarError::Snapshot(format!(
                    "sketch covers {} rows x {} columns but dataset is {n} x {h}",
                    sketch.num_rows(),
                    sketch.num_columns()
                )));
            }
            Some(sketch)
        }
        None => None,
    };
    Ok(ParsedV2 { fields, n, columns, sketch })
}

/// Decodes the legacy v1 body (after magic + version). Columns are
/// materialized at `u32` width — v1 carries no width information and
/// pre-dates packing.
fn decode_v1(mut bytes: &[u8]) -> Result<Dataset, ColumnarError> {
    let buf = &mut bytes;
    let _flags = get_u16(buf)?;
    let h = get_u32(buf)? as usize;
    let n = get_u64(buf)? as usize;

    // Sanity-check the declared sizes against the bytes actually present
    // *before* any allocation: a corrupted header must fail cleanly, not
    // attempt a multi-gigabyte Vec::with_capacity. Each field needs at
    // least 9 bytes (name_len + support + has_dict); each column needs
    // 4·n code bytes.
    let min_field_bytes = (h as u64).saturating_mul(9);
    let min_code_bytes = (h as u64).saturating_mul(n as u64).saturating_mul(4);
    if min_field_bytes.saturating_add(min_code_bytes) > buf.len() as u64 {
        return Err(truncated());
    }

    let mut fields = Vec::with_capacity(h);
    for _ in 0..h {
        fields.push(parse_field(buf)?);
    }

    let mut columns = Vec::with_capacity(h);
    for (attr, field) in fields.iter().enumerate() {
        let mut codes = Vec::with_capacity(n);
        for _ in 0..n {
            codes.push(get_u32(buf)?);
        }
        let col = PackedColumn::with_width(codes, field.support(), Width::U32)
            .map(Column::from_packed)
            .map_err(|_| {
                ColumnarError::Snapshot(format!("column {attr} contains out-of-range codes"))
            })?;
        columns.push(col);
    }
    if !buf.is_empty() {
        return Err(ColumnarError::Snapshot(format!("{} trailing bytes after dataset", buf.len())));
    }
    Dataset::new(Schema::new(fields), columns)
}

/// Parses one schema field record (shared by the v1 body and the v2
/// schema section, which use the same field encoding).
fn parse_field(buf: &mut &[u8]) -> Result<Field, ColumnarError> {
    let name = get_str(buf)?;
    let support = get_u32(buf)?;
    let has_dict = get_u8(buf)?;
    if has_dict > 1 {
        return Err(ColumnarError::Snapshot(format!("invalid dictionary flag {has_dict}")));
    }
    if has_dict == 1 {
        let count = get_u32(buf)? as usize;
        // Each value needs at least its 4-byte length prefix.
        if (count as u64).saturating_mul(4) > buf.len() as u64 {
            return Err(truncated());
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(get_str(buf)?);
        }
        let dict = Dictionary::from_values(values)
            .ok_or_else(|| ColumnarError::Snapshot("duplicate dictionary value".into()))?;
        if dict.len() as u32 != support {
            return Err(ColumnarError::Snapshot("dictionary size disagrees with support".into()));
        }
        Ok(Field::with_dictionary(name, dict))
    } else {
        Ok(Field::new(name, support))
    }
}

/// The payload bytes of a validated section (offsets were checked
/// against `bytes.len()` by `validate_sections`).
fn section_slice<'a>(bytes: &'a [u8], s: &Section) -> &'a [u8] {
    &bytes[s.offset as usize..(s.offset + s.len) as usize]
}

fn store_err(e: swope_store::StoreError) -> ColumnarError {
    ColumnarError::Snapshot(e.to_string())
}

/// Reads a snapshot dataset from `reader`.
pub fn read<R: Read>(reader: &mut R) -> Result<Dataset, ColumnarError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Writes `dataset` to the file at `path`.
pub fn write_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), ColumnarError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write(dataset, &mut f)
}

/// Reads a dataset from the file at `path`.
pub fn read_file(path: impl AsRef<Path>) -> Result<Dataset, ColumnarError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read(&mut f)
}

/// Reads a dataset plus its partition sketch (when present) from
/// `path`. See [`decode_with_sketch`] for the sketch semantics.
pub fn read_file_with_sketch(
    path: impl AsRef<Path>,
) -> Result<(Dataset, Option<DatasetSketch>), ColumnarError> {
    let mut bytes = Vec::new();
    std::io::BufReader::new(std::fs::File::open(path)?).read_to_end(&mut bytes)?;
    decode_with_sketch(&bytes)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Splits `out.len()` bytes off the front of `buf`, erroring on underrun.
fn take(buf: &mut &[u8], out: &mut [u8]) -> Result<(), ColumnarError> {
    if buf.len() < out.len() {
        return Err(truncated());
    }
    let (head, tail) = buf.split_at(out.len());
    out.copy_from_slice(head);
    *buf = tail;
    Ok(())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, ColumnarError> {
    let mut b = [0u8; 1];
    take(buf, &mut b)?;
    Ok(b[0])
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, ColumnarError> {
    let mut b = [0u8; 2];
    take(buf, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ColumnarError> {
    let mut b = [0u8; 4];
    take(buf, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, ColumnarError> {
    let mut b = [0u8; 8];
    take(buf, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_str(buf: &mut &[u8]) -> Result<String, ColumnarError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(truncated());
    }
    let (head, tail) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| ColumnarError::Snapshot("invalid UTF-8".into()))?
        .to_owned();
    *buf = tail;
    Ok(s)
}

fn truncated() -> ColumnarError {
    ColumnarError::Snapshot("truncated input".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(vec!["color".into(), "size".into()]);
        for row in [["red", "s"], ["blue", "m"], ["red", "l"], ["green", "s"]] {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }

    /// Offset and length of a v2 snapshot's last section (the sketch,
    /// for anything the writer in this file produced).
    fn last_section(bytes: &[u8]) -> (usize, usize) {
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let entry = HEADER_BYTES + (count - 1) * swope_store::section::SECTION_ENTRY_BYTES;
        let off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[entry + 16..entry + 24].try_into().unwrap());
        (off as usize, len as usize)
    }

    /// Rewrites a freshly encoded snapshot into the pre-sketch v2
    /// layout: drops the last (sketch) section and shifts every
    /// remaining offset back over the removed table entry.
    fn strip_sketch(bytes: &[u8]) -> Vec<u8> {
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let entry = swope_store::section::SECTION_ENTRY_BYTES;
        let (sketch_off, _) = last_section(bytes);
        let mut out = Vec::new();
        out.extend_from_slice(&bytes[..8]);
        out.extend_from_slice(&((count - 1) as u32).to_le_bytes());
        for i in 0..count - 1 {
            let e = HEADER_BYTES + i * entry;
            out.extend_from_slice(&bytes[e..e + 8]);
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) - entry as u64;
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&bytes[e + 16..e + 24]);
        }
        out.extend_from_slice(&bytes[HEADER_BYTES + count * entry..sketch_off]);
        out
    }

    /// A dataset spanning all three storage widths.
    fn tri_width() -> Dataset {
        let schema = Schema::new(vec![
            Field::new("narrow", 256),
            Field::new("mid", 70_000 - 30_000), // u16
            Field::new("wide", 70_000),         // u32
        ]);
        let n = 3000u32;
        let cols = vec![
            Column::new((0..n).map(|i| i % 256).collect(), 256).unwrap(),
            Column::new((0..n).map(|i| (i * 13) % 40_000).collect(), 40_000).unwrap(),
            Column::new((0..n).map(|i| (i * 23) % 70_000).collect(), 70_000).unwrap(),
        ];
        Dataset::new(schema, cols).unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let ds = sample();
        let bytes = encode(&ds);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn v2_round_trip_preserves_widths() {
        let ds = tri_width();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.column(0).width(), Width::U8);
        assert_eq!(back.column(1).width(), Width::U16);
        assert_eq!(back.column(2).width(), Width::U32);
        // Narrow columns really are narrower on disk: the u8 column's
        // section is about a quarter of the u32 column's. Measured net
        // of the sketch section, which scales with distinct codes, not
        // rows.
        let bytes = encode(&ds);
        let (sketch_off, _) = last_section(&bytes);
        assert!(sketch_off < 3000 * 3 * 4, "paged v2 should be smaller than all-u32 runs");
    }

    #[test]
    fn v1_round_trips_into_u32_packed_columns() {
        let ds = tri_width();
        let bytes = encode_v1(&ds);
        let back = decode(&bytes).unwrap();
        // Logical equality holds even though v1 forgets widths…
        assert_eq!(back, ds);
        // …and every column materializes as u32 (v1 has no width tags).
        for attr in 0..back.num_attrs() {
            assert_eq!(back.column(attr).width(), Width::U32, "attr {attr}");
        }
        // Dictionaries survive the v1 path too.
        let dict_ds = sample();
        let back = decode(&encode_v1(&dict_ds)).unwrap();
        assert_eq!(back, dict_ds);
        assert!(back.schema().field(0).unwrap().dictionary().is_some());
    }

    #[test]
    fn round_trips_without_dictionaries() {
        let schema = Schema::new(vec![Field::new("n", 5)]);
        let col = Column::new(vec![0, 4, 2], 5).unwrap();
        let ds = Dataset::new(schema, vec![col]).unwrap();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(back, ds);
        assert!(back.schema().field(0).unwrap().dictionary().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        // Corrupting any of the four magic bytes must fail, not misparse.
        for i in 0..4 {
            let mut bytes = encode(&sample()).to_vec();
            bytes[i] ^= 0xff;
            assert!(decode(&bytes).is_err(), "corrupt magic byte {i} should fail");
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_prefix_boundary() {
        // Every strict prefix of a valid buffer crosses the header, the
        // section table, or some section mid-payload; decode must return
        // an error at all of them — never panic, never accept a shorter
        // dataset. (Covers the section-table boundaries in particular:
        // with 4 sections the table spans bytes 12..108 — and every cut
        // inside the trailing sketch section, satisfying the
        // truncated-sketch boundary requirement.)
        let bytes = encode(&sample()).to_vec();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
        // Same property for the legacy format.
        let v1 = encode_v1(&sample());
        for cut in 0..v1.len() {
            assert!(decode(&v1[..cut]).is_err(), "v1 cut at {cut} should fail");
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte in turn: decode may reject or (for bytes that
        // don't affect meaning, like the reserved flags) accept, but it
        // must always return rather than panic or over-allocate.
        let bytes = encode(&sample()).to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let _ = decode(&corrupt);
        }
    }

    #[test]
    fn column_page_corruption_fails_checksum() {
        let ds = tri_width();
        let bytes = encode(&ds);
        // The byte just before the sketch section is inside the last
        // column's page payload; flipping it must trip that page's CRC.
        let (sketch_off, _) = last_section(&bytes);
        let mut corrupt = bytes.clone();
        corrupt[sketch_off - 1] ^= 1;
        let err = decode(&corrupt).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn sketch_round_trips_and_matches_rebuild() {
        for ds in [sample(), tri_width()] {
            let (back, sketch) = decode_with_sketch(&encode(&ds)).unwrap();
            assert_eq!(back, ds);
            assert_eq!(sketch.expect("writer always emits a sketch"), build_sketch(&ds));
        }
    }

    #[test]
    fn pre_sketch_v2_snapshot_reads_with_none() {
        let ds = tri_width();
        let stripped = strip_sketch(&encode(&ds));
        let (back, sketch) = decode_with_sketch(&stripped).unwrap();
        assert_eq!(back, ds);
        assert!(sketch.is_none(), "pre-sketch v2 files must degrade gracefully");
        // The plain reader sees the same dataset.
        assert_eq!(decode(&stripped).unwrap(), ds);
    }

    #[test]
    fn sketch_corruption_is_a_one_line_error() {
        let ds = tri_width();
        let bytes = encode(&ds);
        let (sketch_off, sketch_len) = last_section(&bytes);
        // Flip every byte of the sketch section in turn: the reader
        // must reject (CRC guards the payload; the length/kind checks
        // guard a forged CRC) with an error naming the sketch — and the
        // plain dataset path must reject too, not silently drop it.
        for i in sketch_off..sketch_off + sketch_len {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let err = decode_with_sketch(&corrupt).unwrap_err();
            assert!(err.to_string().contains("sketch"), "byte {i}: {err}");
            assert!(decode(&corrupt).is_err(), "byte {i}");
        }
    }

    #[test]
    fn sketch_shape_mismatch_is_rejected() {
        // Splice in a syntactically valid sketch describing a different
        // dataset shape (0 rows, 0 columns): the cross-check against
        // the schema must fail even though the sketch's own CRC passes.
        let ds = sample();
        let bytes = encode(&ds);
        let (sketch_off, _) = last_section(&bytes);
        let other = DatasetSketch::build(0, std::iter::empty());
        let payload = other.encode();
        let mut out = bytes[..sketch_off].to_vec();
        out.extend_from_slice(&payload);
        let count = u32::from_le_bytes(out[8..12].try_into().unwrap()) as usize;
        let len_at = HEADER_BYTES + (count - 1) * swope_store::section::SECTION_ENTRY_BYTES + 16;
        out[len_at..len_at + 8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        let err = decode_with_sketch(&out).unwrap_err();
        assert!(err.to_string().contains("sketch covers"), "{err}");
    }

    #[test]
    fn schema_corruption_fails_checksum() {
        let ds = sample();
        let bytes = encode(&ds);
        // First byte of the first field name: header (12) + table
        // (4 sections × 24) + h (4) + n (8) + name_len (4).
        let name_at = 12 + 4 * 24 + 4 + 8 + 4;
        assert_eq!(bytes[name_at], b'c', "offset arithmetic drifted");
        let mut corrupt = bytes.clone();
        corrupt[name_at] = b'x';
        let err = decode(&corrupt).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn rejects_invalid_dictionary_flag() {
        let ds = sample();
        let mut bytes = encode(&ds);
        // The first field's has_dict flag: header + table + h + n +
        // (name_len + name) + support.
        let name_len = ds.schema().field(0).unwrap().name().len();
        let flag_at = 12 + 4 * 24 + 4 + 8 + 4 + name_len + 4;
        assert_eq!(bytes[flag_at], 1, "offset arithmetic drifted");
        bytes[flag_at] = 2;
        // Re-seal the schema CRC so the flag check itself is reached.
        let schema_len_at = 12 + 16; // first section entry's len field
        let len = u64::from_le_bytes(bytes[schema_len_at..schema_len_at + 8].try_into().unwrap())
            as usize;
        let body_start = 12 + 4 * 24;
        let crc = crc32(&bytes[body_start..body_start + len - 4]);
        bytes[body_start + len - 4..body_start + len].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("dictionary flag"), "{err}");
    }

    #[test]
    fn rejects_dictionary_support_mismatch() {
        // Hand-assemble a *v1* snapshot (that path has no CRC to
        // re-seal) whose dictionary has fewer values than the declared
        // support: h=1, n=0, field "a" with support 2 but a one-entry
        // dictionary.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&V1.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // h
        bytes.extend_from_slice(&0u64.to_le_bytes()); // n
        put_str(&mut bytes, "a");
        bytes.extend_from_slice(&2u32.to_le_bytes()); // support
        bytes.push(1); // has_dict
        bytes.extend_from_slice(&1u32.to_le_bytes()); // dict count
        put_str(&mut bytes, "x");
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn rejects_non_utf8_field_name() {
        let ds = sample();
        let mut bytes = encode(&ds);
        // Corrupt the first field-name byte and re-seal the schema CRC
        // so the UTF-8 check (not the checksum) is what rejects it.
        let name_at = 12 + 4 * 24 + 4 + 8 + 4;
        bytes[name_at] = 0xff;
        let schema_len_at = 12 + 16;
        let len = u64::from_le_bytes(bytes[schema_len_at..schema_len_at + 8].try_into().unwrap())
            as usize;
        let body_start = 12 + 4 * 24;
        let crc = crc32(&bytes[body_start..body_start + len - 4]);
        bytes[body_start + len - 4..body_start + len].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn rejects_oversized_declared_sizes_without_allocating() {
        // Headers declaring astronomically many sections/rows/attrs must
        // fail the up-front size checks instead of attempting the
        // allocation — in both formats.
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC);
        v2.extend_from_slice(&VERSION.to_le_bytes());
        v2.extend_from_slice(&0u16.to_le_bytes());
        v2.extend_from_slice(&u32::MAX.to_le_bytes()); // section_count
        assert!(decode(&v2).is_err());

        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&V1.to_le_bytes());
        v1.extend_from_slice(&0u16.to_le_bytes());
        v1.extend_from_slice(&u32::MAX.to_le_bytes()); // h
        v1.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        assert!(decode(&v1).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
        let mut v1 = encode_v1(&sample());
        v1.push(0);
        assert!(decode(&v1).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("swope-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.swop");
        let ds = sample();
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    /// Writes `ds` to a fresh temp snapshot and returns the path.
    fn temp_snapshot(ds: &Dataset, name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("swope-snapshot-paged-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_file(ds, &path).unwrap();
        path
    }

    #[test]
    fn open_paged_round_trips_all_widths() {
        let ds = tri_width();
        let path = temp_snapshot(&ds, "tri.swop");
        let (paged, sketch) = open_paged(&path, Arc::new(PageCache::unbounded())).unwrap();
        assert!(paged.column(0).is_paged());
        assert_eq!(paged.column(0).width(), Width::U8);
        assert_eq!(paged.column(1).width(), Width::U16);
        assert_eq!(paged.column(2).width(), Width::U32);
        // Opening touches no payload: nothing resident, no CRC checked yet.
        assert_eq!(paged.column(0).bytes_in_memory(), 0);
        assert_eq!(paged, ds, "paged and heap loads are logically identical");
        assert_eq!(sketch.expect("writer emits a sketch"), build_sketch(&ds));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_paged_under_tiny_budget_matches_and_rewrites_identically() {
        let ds = tri_width();
        let path = temp_snapshot(&ds, "tiny-budget.swop");
        let original = std::fs::read(&path).unwrap();
        // A 1-byte budget forces every fault to evict; reads and the
        // streaming re-writer must still be exact.
        let (paged, _) = open_paged(&path, Arc::new(PageCache::new(Some(1)))).unwrap();
        assert_eq!(paged.column(2).value_counts(), ds.column(2).value_counts());
        let rewritten = encode(&paged);
        assert_eq!(rewritten, original, "paged re-snapshot is byte-identical");
        // And the paged dataset's sketch rebuild matches the heap one.
        assert_eq!(build_sketch(&paged), build_sketch(&ds));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_paged_falls_back_to_heap_for_v1() {
        let ds = tri_width();
        let dir = std::env::temp_dir().join("swope-snapshot-paged-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.swop");
        std::fs::write(&path, encode_v1(&ds)).unwrap();
        let (back, sketch) = open_paged(&path, Arc::new(PageCache::unbounded())).unwrap();
        assert!(!back.column(0).is_paged(), "v1 has no paged form");
        assert!(sketch.is_none());
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_paged_corrupt_page_fails_on_first_touch_only() {
        let ds = tri_width();
        let path = temp_snapshot(&ds, "corrupt.swop");
        let mut bytes = std::fs::read(&path).unwrap();
        // The byte just before the sketch section sits in the last
        // column's final page payload.
        let (sketch_off, _) = last_section(&bytes);
        bytes[sketch_off - 1] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        // Eager load rejects up front; paged open succeeds (CRCs are
        // lazy) and only the corrupt column's touch fails.
        assert!(read_file(&path).is_err());
        let (paged, _) = open_paged(&path, Arc::new(PageCache::unbounded())).unwrap();
        assert_eq!(paged.column(0).value_counts(), ds.column(0).value_counts());
        let last = paged.num_attrs() - 1;
        let err = paged
            .column(last)
            .paged()
            .unwrap()
            .value_counts()
            .expect_err("corrupt page must fail on first touch");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = DatasetBuilder::new(vec!["a".into()]).finish();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.num_attrs(), 1);
    }
}
