//! A compact binary on-disk format for datasets.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"SWOP"          4 bytes
//! version u16              currently 1
//! flags   u16              reserved, 0
//! h       u32              number of attributes
//! N       u64              number of rows
//! field*h:
//!   name_len u32, name bytes (UTF-8)
//!   support  u32
//!   has_dict u8
//!   if has_dict: count u32, then count * (len u32, bytes)
//! column*h:
//!   N * u32 codes
//! ```
//!
//! The format is self-describing enough for version checks and cheap to
//! write/read with plain little-endian byte pushes over a `Vec<u8>`.
//! Large datasets (tens of millions of rows) serialize at memcpy-like
//! speed since codes are written as one `u32` run.

use std::io::{Read, Write};
use std::path::Path;

use crate::{Column, ColumnarError, Dataset, Dictionary, Field, Schema};

const MAGIC: &[u8; 4] = b"SWOP";
const VERSION: u16 = 1;

/// Serializes `dataset` into a byte buffer.
pub fn encode(dataset: &Dataset) -> Vec<u8> {
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    // Rough pre-size: header + columns.
    let mut buf = Vec::with_capacity(64 + h * 32 + h * n * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(h as u32).to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for field in dataset.schema().fields() {
        put_str(&mut buf, field.name());
        buf.extend_from_slice(&field.support().to_le_bytes());
        match field.dictionary() {
            Some(dict) => {
                buf.push(1);
                buf.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for (_, v) in dict.iter() {
                    put_str(&mut buf, v);
                }
            }
            None => buf.push(0),
        }
    }
    for attr in 0..h {
        for &code in dataset.column(attr).codes() {
            buf.extend_from_slice(&code.to_le_bytes());
        }
    }
    buf
}

/// Deserializes a dataset from `bytes`.
pub fn decode(mut bytes: &[u8]) -> Result<Dataset, ColumnarError> {
    let buf = &mut bytes;
    let mut magic = [0u8; 4];
    take(buf, &mut magic)?;
    if &magic != MAGIC {
        return Err(ColumnarError::Snapshot("bad magic".into()));
    }
    let version = get_u16(buf)?;
    if version != VERSION {
        return Err(ColumnarError::Snapshot(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let _flags = get_u16(buf)?;
    let h = get_u32(buf)? as usize;
    let n = get_u64(buf)? as usize;

    // Sanity-check the declared sizes against the bytes actually present
    // *before* any allocation: a corrupted header must fail cleanly, not
    // attempt a multi-gigabyte Vec::with_capacity. Each field needs at
    // least 9 bytes (name_len + support + has_dict); each column needs
    // 4·n code bytes.
    let min_field_bytes = (h as u64).saturating_mul(9);
    let min_code_bytes = (h as u64).saturating_mul(n as u64).saturating_mul(4);
    if min_field_bytes.saturating_add(min_code_bytes) > buf.len() as u64 {
        return Err(truncated());
    }

    let mut fields = Vec::with_capacity(h);
    for _ in 0..h {
        let name = get_str(buf)?;
        let support = get_u32(buf)?;
        let has_dict = get_u8(buf)?;
        if has_dict > 1 {
            return Err(ColumnarError::Snapshot(format!("invalid dictionary flag {has_dict}")));
        }
        let field = if has_dict == 1 {
            let count = get_u32(buf)? as usize;
            // Each value needs at least its 4-byte length prefix.
            if (count as u64).saturating_mul(4) > buf.len() as u64 {
                return Err(truncated());
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(get_str(buf)?);
            }
            let dict = Dictionary::from_values(values)
                .ok_or_else(|| ColumnarError::Snapshot("duplicate dictionary value".into()))?;
            if dict.len() as u32 != support {
                return Err(ColumnarError::Snapshot(
                    "dictionary size disagrees with support".into(),
                ));
            }
            Field::with_dictionary(name, dict)
        } else {
            Field::new(name, support)
        };
        fields.push(field);
    }

    let mut columns = Vec::with_capacity(h);
    for (attr, field) in fields.iter().enumerate() {
        let mut codes = Vec::with_capacity(n);
        for _ in 0..n {
            codes.push(get_u32(buf)?);
        }
        let col = Column::new(codes, field.support()).map_err(|_| {
            ColumnarError::Snapshot(format!("column {attr} contains out-of-range codes"))
        })?;
        columns.push(col);
    }
    if !buf.is_empty() {
        return Err(ColumnarError::Snapshot(format!("{} trailing bytes after dataset", buf.len())));
    }
    Dataset::new(Schema::new(fields), columns)
}

/// Writes `dataset` in snapshot format to `writer`.
pub fn write<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<(), ColumnarError> {
    writer.write_all(&encode(dataset))?;
    Ok(())
}

/// Reads a snapshot dataset from `reader`.
pub fn read<R: Read>(reader: &mut R) -> Result<Dataset, ColumnarError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Writes `dataset` to the file at `path`.
pub fn write_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), ColumnarError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write(dataset, &mut f)
}

/// Reads a dataset from the file at `path`.
pub fn read_file(path: impl AsRef<Path>) -> Result<Dataset, ColumnarError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read(&mut f)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Splits `out.len()` bytes off the front of `buf`, erroring on underrun.
fn take(buf: &mut &[u8], out: &mut [u8]) -> Result<(), ColumnarError> {
    if buf.len() < out.len() {
        return Err(truncated());
    }
    let (head, tail) = buf.split_at(out.len());
    out.copy_from_slice(head);
    *buf = tail;
    Ok(())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, ColumnarError> {
    let mut b = [0u8; 1];
    take(buf, &mut b)?;
    Ok(b[0])
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, ColumnarError> {
    let mut b = [0u8; 2];
    take(buf, &mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ColumnarError> {
    let mut b = [0u8; 4];
    take(buf, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, ColumnarError> {
    let mut b = [0u8; 8];
    take(buf, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_str(buf: &mut &[u8]) -> Result<String, ColumnarError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(truncated());
    }
    let (head, tail) = buf.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| ColumnarError::Snapshot("invalid UTF-8".into()))?
        .to_owned();
    *buf = tail;
    Ok(s)
}

fn truncated() -> ColumnarError {
    ColumnarError::Snapshot("truncated input".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(vec!["color".into(), "size".into()]);
        for row in [["red", "s"], ["blue", "m"], ["red", "l"], ["green", "s"]] {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }

    #[test]
    fn encode_decode_round_trips() {
        let ds = sample();
        let bytes = encode(&ds);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn round_trips_without_dictionaries() {
        let schema = Schema::new(vec![Field::new("n", 5)]);
        let col = Column::new(vec![0, 4, 2], 5).unwrap();
        let ds = Dataset::new(schema, vec![col]).unwrap();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(back, ds);
        assert!(back.schema().field(0).unwrap().dictionary().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        // Corrupting any of the four magic bytes must fail, not misparse.
        for i in 0..4 {
            let mut bytes = encode(&sample()).to_vec();
            bytes[i] ^= 0xff;
            assert!(decode(&bytes).is_err(), "corrupt magic byte {i} should fail");
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_prefix_boundary() {
        // Every strict prefix of a valid buffer crosses some field boundary
        // mid-read; decode must return an error at all of them — never
        // panic, never accept a shorter dataset.
        let bytes = encode(&sample()).to_vec();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte in turn: decode may reject or (for payload bytes
        // like dictionary text) accept a different value, but it must
        // always return rather than panic or over-allocate.
        let bytes = encode(&sample()).to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let _ = decode(&corrupt);
        }
    }

    #[test]
    fn rejects_invalid_dictionary_flag() {
        let ds = sample();
        let bytes = encode(&ds);
        // The first field's has_dict flag sits right after the fixed header
        // (4 magic + 2 version + 2 flags + 4 h + 8 n), the name (4 + len),
        // and the 4-byte support.
        let name_len = ds.schema().field(0).unwrap().name().len();
        let flag_at = 20 + 4 + name_len + 4;
        assert_eq!(bytes[flag_at], 1, "offset arithmetic drifted");
        let mut corrupt = bytes.clone();
        corrupt[flag_at] = 2;
        let err = decode(&corrupt).unwrap_err();
        assert!(err.to_string().contains("dictionary flag"), "{err}");
    }

    #[test]
    fn rejects_dictionary_support_mismatch() {
        // Hand-assemble a snapshot whose dictionary has fewer values than
        // the declared support: h=1, n=0, field "a" with support 2 but a
        // one-entry dictionary.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // h
        bytes.extend_from_slice(&0u64.to_le_bytes()); // n
        put_str(&mut bytes, "a");
        bytes.extend_from_slice(&2u32.to_le_bytes()); // support
        bytes.push(1); // has_dict
        bytes.extend_from_slice(&1u32.to_le_bytes()); // dict count
        put_str(&mut bytes, "x");
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn rejects_non_utf8_field_name() {
        let ds = sample();
        let mut bytes = encode(&ds);
        // First byte of the first field name (after the 20-byte header and
        // the 4-byte length prefix).
        bytes[24] = 0xff;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn rejects_oversized_declared_sizes_without_allocating() {
        // A header declaring astronomically many rows/attrs must fail the
        // up-front size check instead of attempting the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // h
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("swope-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.swop");
        let ds = sample();
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = DatasetBuilder::new(vec!["a".into()]).finish();
        let back = decode(&encode(&ds)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.num_attrs(), 1);
    }
}
