//! # swope-columnar
//!
//! Columnar dataset substrate for the SWOPE framework.
//!
//! The SWOPE paper (Chen & Wang, SIGMOD 2021) operates on datasets of `N`
//! records with `h` *categorical* attributes, stored column-by-column so
//! that a query touching a subset of attributes only scans the columns it
//! needs. This crate provides that substrate:
//!
//! * [`Dictionary`] — interning of raw attribute values into dense codes
//!   `0..u` where `u` is the support size (the paper assumes values in
//!   `[1, u_alpha]`; we use zero-based codes internally).
//! * [`Column`] — a dictionary-encoded categorical column, width-packed
//!   by `swope-store` (`u8`/`u16`/`u32` selected from the support).
//! * [`Schema`] / [`Field`] — attribute names and support sizes.
//! * [`Dataset`] — an immutable columnar table plus its schema.
//! * [`DatasetBuilder`] — row-oriented construction from raw string values.
//! * [`csv`] — a small self-contained CSV reader.
//! * [`snapshot`] — a compact binary on-disk format for datasets. Besides
//!   the eager reader, [`snapshot::open_paged`] opens a snapshot
//!   *out-of-core*: columns stay in the mapped file and fault
//!   page-by-page through a `swope-pager` [`PageCache`] byte budget.
//! * [`stats`] — per-column summary statistics.
//!
//! # Example
//!
//! ```
//! use swope_columnar::DatasetBuilder;
//!
//! let mut b = DatasetBuilder::new(vec!["color".into(), "size".into()]);
//! b.push_row(&["red", "small"]).unwrap();
//! b.push_row(&["blue", "large"]).unwrap();
//! b.push_row(&["red", "large"]).unwrap();
//! let ds = b.finish();
//!
//! assert_eq!(ds.num_rows(), 3);
//! assert_eq!(ds.num_attrs(), 2);
//! assert_eq!(ds.column(0).support(), 2); // {red, blue}
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod column;
pub mod csv;
mod dataset;
mod dictionary;
mod error;
mod schema;
pub mod snapshot;
pub mod stats;

pub use builder::DatasetBuilder;
pub use column::{Column, ColumnStorage};
pub use dataset::Dataset;
pub use dictionary::Dictionary;
pub use error::ColumnarError;
pub use schema::{Field, Schema};
// Storage-layer types callers of this crate routinely need: the width a
// column is packed at and the packed storage the hot loops scan.
pub use swope_store::{CodeBuf, CodeRepr, PackedCodes, PackedColumn, Width};
// The partition sketch a snapshot carries alongside its columns; scoped
// queries in `swope-core` consume it.
pub use swope_sketch::{ColumnSketch, DatasetSketch, SketchKind};

// The sketch/scope page granularity, re-exported so downstream crates
// (server, CLI, benches) can reason about page alignment without a
// direct swope-store dependency.
pub use swope_store::page::PAGE_ROWS;

// The pager types callers need to open datasets out-of-core: the page
// cache a budget is configured on (plus its metrics snapshot) and the
// pager-backed column hot loops dispatch to via [`ColumnStorage`].
pub use swope_pager::{PageCache, PagedColumn, PagerSnapshot};

/// Index of an attribute (column) within a dataset. Always in `0..h`.
pub type AttrIndex = usize;

/// A dictionary-encoded attribute value. Always in `0..support`.
pub type Code = u32;
