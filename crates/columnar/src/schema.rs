use crate::Dictionary;

/// Metadata for one attribute: its name, support size, and (optionally) the
/// dictionary that maps codes back to raw values.
///
/// Synthetic datasets (from `swope-datagen`) carry no dictionaries — their
/// codes are the values. CSV-loaded datasets carry one dictionary per field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    support: u32,
    dictionary: Option<Dictionary>,
}

impl Field {
    /// Creates a field without a dictionary (codes are the raw values).
    pub fn new(name: impl Into<String>, support: u32) -> Self {
        Self { name: name.into(), support, dictionary: None }
    }

    /// Creates a field whose support is the dictionary's size.
    pub fn with_dictionary(name: impl Into<String>, dictionary: Dictionary) -> Self {
        let support = dictionary.len() as u32;
        Self { name: name.into(), support, dictionary: Some(dictionary) }
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The support size `u_alpha`.
    pub fn support(&self) -> u32 {
        self.support
    }

    /// The dictionary, if the field was built from raw values.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        self.dictionary.as_ref()
    }
}

/// An ordered collection of [`Field`]s describing a dataset's attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// The fields in attribute order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `index`, if in range.
    pub fn field(&self, index: usize) -> Option<&Field> {
        self.fields.get(index)
    }

    /// Number of attributes `h`.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolves an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }

    /// The largest support size among all attributes (`u_max` in the paper).
    ///
    /// Returns 0 for an empty schema.
    pub fn max_support(&self) -> u32 {
        self.fields.iter().map(Field::support).max().unwrap_or(0)
    }

    /// Returns a schema containing only the fields at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![Field::new("a", 4), Field::new("b", 10), Field::new("c", 2)])
    }

    #[test]
    fn index_of_resolves_names() {
        let s = sample();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
    }

    #[test]
    fn max_support_over_fields() {
        assert_eq!(sample().max_support(), 10);
        assert_eq!(Schema::default().max_support(), 0);
    }

    #[test]
    fn project_keeps_order_given() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.field(0).unwrap().name(), "c");
        assert_eq!(s.field(1).unwrap().name(), "a");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_dictionary_sets_support() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let f = Field::with_dictionary("f", d);
        assert_eq!(f.support(), 2);
        assert!(f.dictionary().is_some());
    }
}
