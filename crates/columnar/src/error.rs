use std::fmt;

/// Errors produced while building, reading, or persisting columnar data.
#[derive(Debug)]
#[non_exhaustive]
pub enum ColumnarError {
    /// A row had a different number of values than the schema has fields.
    RowArity {
        /// Number of values the schema expects.
        expected: usize,
        /// Number of values the offending row supplied.
        got: usize,
    },
    /// A column was referenced by an index that is out of range.
    AttrOutOfRange {
        /// The offending attribute index.
        index: usize,
        /// The number of attributes in the dataset.
        num_attrs: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttr(String),
    /// A code in a column is `>= support`, violating the encoding invariant.
    CodeOutOfRange {
        /// The attribute whose column is invalid.
        attr: usize,
        /// The offending code.
        code: u32,
        /// The declared support size.
        support: u32,
    },
    /// Columns of a dataset disagree on the number of rows.
    RaggedColumns,
    /// A CSV document was malformed.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A snapshot byte stream was malformed or of an unsupported version.
    Snapshot(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RowArity { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} fields")
            }
            Self::AttrOutOfRange { index, num_attrs } => {
                write!(f, "attribute index {index} out of range (dataset has {num_attrs})")
            }
            Self::UnknownAttr(name) => write!(f, "unknown attribute name {name:?}"),
            Self::CodeOutOfRange { attr, code, support } => {
                write!(f, "attribute {attr} contains code {code} outside its support 0..{support}")
            }
            Self::RaggedColumns => write!(f, "columns have differing row counts"),
            Self::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Self::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ColumnarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ColumnarError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ColumnarError::RowArity { expected: 3, got: 2 };
        assert!(e.to_string().contains("2 values"));
        let e = ColumnarError::UnknownAttr("age".into());
        assert!(e.to_string().contains("age"));
        let e = ColumnarError::CodeOutOfRange { attr: 1, code: 9, support: 4 };
        assert!(e.to_string().contains("code 9"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = ColumnarError::from(io);
        assert!(e.source().is_some());
    }
}
