use std::collections::HashMap;

use crate::Code;

/// An order-preserving interner mapping raw string values to dense codes.
///
/// The SWOPE paper assumes every attribute's values lie in `[1, u_alpha]`
/// after "a simple one-to-one match preprocessing". `Dictionary` is that
/// preprocessing: the first distinct value observed receives code 0, the
/// next code 1, and so on, so codes are always dense in `0..len()`.
///
/// # Example
///
/// ```
/// use swope_columnar::Dictionary;
///
/// let mut d = Dictionary::new();
/// assert_eq!(d.intern("red"), 0);
/// assert_eq!(d.intern("blue"), 1);
/// assert_eq!(d.intern("red"), 0); // stable
/// assert_eq!(d.decode(1), Some("blue"));
/// assert_eq!(d.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    by_value: HashMap<String, Code>,
    by_code: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with space reserved for `n` distinct values.
    pub fn with_capacity(n: usize) -> Self {
        Self { by_value: HashMap::with_capacity(n), by_code: Vec::with_capacity(n) }
    }

    /// Returns the code for `value`, inserting it if unseen.
    pub fn intern(&mut self, value: &str) -> Code {
        if let Some(&c) = self.by_value.get(value) {
            return c;
        }
        let code = self.by_code.len() as Code;
        self.by_value.insert(value.to_owned(), code);
        self.by_code.push(value.to_owned());
        code
    }

    /// Returns the code for `value` if it has been interned.
    pub fn lookup(&self, value: &str) -> Option<Code> {
        self.by_value.get(value).copied()
    }

    /// Returns the raw value for `code`, if `code < len()`.
    pub fn decode(&self, code: Code) -> Option<&str> {
        self.by_code.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values interned so far (the support size).
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Iterates over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (Code, &str)> {
        self.by_code.iter().enumerate().map(|(i, v)| (i as Code, v.as_str()))
    }

    /// Rebuilds a dictionary from its code-ordered value list.
    ///
    /// Used by the snapshot reader. Duplicate values are rejected by
    /// returning `None` since they would break the bijection invariant.
    pub fn from_values(values: Vec<String>) -> Option<Self> {
        let mut by_value = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if by_value.insert(v.clone(), i as Code).is_some() {
                return None;
            }
        }
        Some(Self { by_value, by_code: values })
    }

    /// Consumes the dictionary, returning the code-ordered value list.
    pub fn into_values(self) -> Vec<String> {
        self.by_code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_dense_and_stable() {
        let mut d = Dictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        let c = d.intern("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        for v in ["x", "y", "z"] {
            let c = d.intern(v);
            assert_eq!(d.decode(c), Some(v));
        }
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        d.intern("present");
        assert_eq!(d.lookup("present"), Some(0));
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn from_values_rejects_duplicates() {
        assert!(Dictionary::from_values(vec!["a".into(), "a".into()]).is_none());
        let d = Dictionary::from_values(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(d.lookup("b"), Some(1));
    }

    #[test]
    fn iter_is_in_code_order() {
        let mut d = Dictionary::new();
        d.intern("first");
        d.intern("second");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "first"), (1, "second")]);
    }

    #[test]
    fn into_values_round_trips() {
        let mut d = Dictionary::new();
        d.intern("p");
        d.intern("q");
        let vals = d.clone().into_values();
        assert_eq!(Dictionary::from_values(vals).unwrap(), d);
    }

    #[test]
    fn empty_behaviour() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.decode(0), None);
    }
}
