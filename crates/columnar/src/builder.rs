use crate::{Code, Column, ColumnarError, Dataset, Dictionary, Field, Schema};

/// Row-oriented builder producing a dictionary-encoded [`Dataset`].
///
/// Each pushed row interns its raw string values into per-attribute
/// dictionaries, so the finished dataset has dense codes and carries the
/// dictionaries in its schema for decoding.
///
/// # Example
///
/// ```
/// use swope_columnar::DatasetBuilder;
///
/// let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
/// b.push_row(&["1", "x"]).unwrap();
/// b.push_row(&["2", "x"]).unwrap();
/// let ds = b.finish();
/// assert_eq!(ds.num_rows(), 2);
/// assert_eq!(ds.column(1).support(), 1);
/// ```
#[derive(Debug)]
pub struct DatasetBuilder {
    names: Vec<String>,
    dictionaries: Vec<Dictionary>,
    codes: Vec<Vec<Code>>,
}

impl DatasetBuilder {
    /// Creates a builder for attributes with the given names.
    pub fn new(names: Vec<String>) -> Self {
        let h = names.len();
        Self {
            names,
            dictionaries: (0..h).map(|_| Dictionary::new()).collect(),
            codes: (0..h).map(|_| Vec::new()).collect(),
        }
    }

    /// Creates a builder with row capacity pre-reserved.
    pub fn with_capacity(names: Vec<String>, rows: usize) -> Self {
        let h = names.len();
        Self {
            names,
            dictionaries: (0..h).map(|_| Dictionary::new()).collect(),
            codes: (0..h).map(|_| Vec::with_capacity(rows)).collect(),
        }
    }

    /// Appends one row of raw values. The row length must match the schema.
    pub fn push_row<S: AsRef<str>>(&mut self, values: &[S]) -> Result<(), ColumnarError> {
        if values.len() != self.names.len() {
            return Err(ColumnarError::RowArity { expected: self.names.len(), got: values.len() });
        }
        for (i, v) in values.iter().enumerate() {
            let code = self.dictionaries[i].intern(v.as_ref());
            self.codes[i].push(code);
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.codes.first().map_or(0, Vec::len)
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.names.len()
    }

    /// Finishes construction, producing the dataset.
    pub fn finish(self) -> Dataset {
        let fields: Vec<Field> = self
            .names
            .into_iter()
            .zip(&self.dictionaries)
            .map(|(name, dict)| Field::with_dictionary(name, dict.clone()))
            .collect();
        let columns: Vec<Column> = self
            .codes
            .into_iter()
            .zip(&self.dictionaries)
            .map(|(codes, dict)| Column::new_unchecked(codes, dict.len() as u32))
            .collect();
        Dataset::new(Schema::new(fields), columns)
            .expect("builder maintains schema/column consistency")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_dense_codes_per_column() {
        let mut b = DatasetBuilder::new(vec!["c1".into(), "c2".into()]);
        b.push_row(&["red", "s"]).unwrap();
        b.push_row(&["blue", "m"]).unwrap();
        b.push_row(&["red", "l"]).unwrap();
        let ds = b.finish();
        assert_eq!(ds.column(0).to_codes(), vec![0, 1, 0]);
        assert_eq!(ds.column(1).to_codes(), vec![0, 1, 2]);
        assert_eq!(ds.support(0), 2);
        assert_eq!(ds.support(1), 3);
    }

    #[test]
    fn dictionaries_survive_into_schema() {
        let mut b = DatasetBuilder::new(vec!["c".into()]);
        b.push_row(&["alpha"]).unwrap();
        b.push_row(&["beta"]).unwrap();
        let ds = b.finish();
        let dict = ds.schema().field(0).unwrap().dictionary().unwrap();
        assert_eq!(dict.decode(0), Some("alpha"));
        assert_eq!(dict.decode(1), Some("beta"));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
        assert!(matches!(
            b.push_row(&["only-one"]),
            Err(ColumnarError::RowArity { expected: 2, got: 1 })
        ));
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn empty_builder_finishes_to_empty_dataset() {
        let ds = DatasetBuilder::new(vec!["a".into()]).finish();
        assert_eq!(ds.num_rows(), 0);
        assert_eq!(ds.num_attrs(), 1);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut b = DatasetBuilder::with_capacity(vec!["a".into()], 100);
        for i in 0..10 {
            b.push_row(&[format!("{}", i % 3)]).unwrap();
        }
        assert_eq!(b.num_rows(), 10);
        let ds = b.finish();
        assert_eq!(ds.support(0), 3);
    }
}
