use std::sync::Arc;

use swope_pager::PagedColumn;
use swope_store::{PackedColumn, StoreError, Width};

use crate::{Code, ColumnarError};

/// A dictionary-encoded categorical column.
///
/// Logically one code per row with the invariant that every code is
/// `< support()`. Codes are dense: support equals the number of *possible*
/// distinct codes (typically the number actually observed, when built via
/// [`crate::DatasetBuilder`]).
///
/// Physical storage has two representations:
///
/// * **Heap** — [`swope_store::PackedColumn`], the whole column decoded
///   at the narrowest width its support allows (`u8` up to support 256,
///   `u16` up to 65536, `u32` beyond). The eager loader and every
///   in-memory constructor produce this.
/// * **Paged** — [`swope_pager::PagedColumn`], codes left in a mapped
///   snapshot and faulted page-by-page through a byte-budget cache. The
///   out-of-core loader (`snapshot::open_paged`) produces this.
///
/// Hot loops dispatch once per call via [`Column::storage`] and then run
/// width-monomorphized on either representation; both decode the same
/// bytes, so results are bitwise identical. Cold paths use
/// [`Column::code`] / [`Column::to_codes`], which widen on the fly.
#[derive(Debug, Clone)]
pub struct Column {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Heap(PackedColumn),
    Paged(Arc<PagedColumn>),
}

/// A borrowed view of a column's physical representation — the one
/// `match` a hot loop makes before its width-generic inner loop.
pub enum ColumnStorage<'a> {
    /// Fully decoded in memory.
    Heap(&'a PackedColumn),
    /// Faulted page-by-page out of a mapped snapshot.
    Paged(&'a PagedColumn),
}

impl Column {
    /// Creates a column from raw codes, validating `code < support` for all.
    pub fn new(codes: Vec<Code>, support: u32) -> Result<Self, ColumnarError> {
        match PackedColumn::new(codes, support) {
            Ok(packed) => Ok(Self { repr: Repr::Heap(packed) }),
            Err(StoreError::CodeOutOfRange { code, support }) => {
                Err(ColumnarError::CodeOutOfRange { attr: 0, code, support })
            }
            Err(e) => Err(ColumnarError::Snapshot(e.to_string())),
        }
    }

    /// Creates a column without validating codes.
    ///
    /// The caller must guarantee `codes[i] < support` for all `i`; violating
    /// this breaks counter indexing downstream (it will panic, not corrupt
    /// memory — counters use checked indexing in debug builds and sized
    /// allocations in release).
    pub fn new_unchecked(codes: Vec<Code>, support: u32) -> Self {
        Self { repr: Repr::Heap(PackedColumn::new_unchecked(codes, support)) }
    }

    /// Wraps an already-validated packed column (the snapshot reader's
    /// path, which decodes pages straight at their stored width).
    pub fn from_packed(packed: PackedColumn) -> Self {
        Self { repr: Repr::Heap(packed) }
    }

    /// Wraps a pager-backed column (the out-of-core loader's path).
    pub fn from_paged(paged: Arc<PagedColumn>) -> Self {
        Self { repr: Repr::Paged(paged) }
    }

    /// The same logical column re-packed at a forced (wider) `width`.
    ///
    /// Used by width-invariance tests and the store bench to compare the
    /// byte traffic of identical data at `u8`/`u16`/`u32`; errors if the
    /// width cannot hold the support. A paged column materializes to heap
    /// storage here — re-widening is a test/bench tool, not a hot path.
    pub fn with_width(&self, width: Width) -> Result<Self, ColumnarError> {
        let repacked = match &self.repr {
            Repr::Heap(packed) => packed.repacked(width),
            Repr::Paged(paged) => paged
                .to_codes()
                .and_then(|codes| PackedColumn::with_width(codes, paged.support(), width)),
        };
        repacked
            .map(|packed| Self { repr: Repr::Heap(packed) })
            .map_err(|e| ColumnarError::Snapshot(e.to_string()))
    }

    /// Builds a column by densely re-encoding arbitrary `u32` values.
    ///
    /// Values need not be dense; they are mapped to `0..u` in first-seen
    /// order. Returns the column and the mapping (old value per new code).
    pub fn from_raw_values(values: &[u32]) -> (Self, Vec<u32>) {
        let mut map = std::collections::HashMap::new();
        let mut order = Vec::new();
        let codes: Vec<Code> = values
            .iter()
            .map(|&v| {
                *map.entry(v).or_insert_with(|| {
                    order.push(v);
                    (order.len() - 1) as Code
                })
            })
            .collect();
        let support = order.len() as u32;
        (Self::new_unchecked(codes, support), order)
    }

    /// The physical representation — what the adaptive loops dispatch on.
    #[inline]
    pub fn storage(&self) -> ColumnStorage<'_> {
        match &self.repr {
            Repr::Heap(packed) => ColumnStorage::Heap(packed),
            Repr::Paged(paged) => ColumnStorage::Paged(paged),
        }
    }

    /// The width-packed heap storage.
    ///
    /// Panics for paged columns: callers that can meet a paged column
    /// must dispatch through [`Column::storage`] instead. Kept for the
    /// many heap-only paths (builders, generators, format conversion).
    #[inline]
    pub fn packed(&self) -> &PackedColumn {
        match &self.repr {
            Repr::Heap(packed) => packed,
            Repr::Paged(_) => {
                panic!("column is paged (out-of-core); dispatch via Column::storage()")
            }
        }
    }

    /// The pager-backed storage, when this column is paged.
    #[inline]
    pub fn paged(&self) -> Option<&Arc<PagedColumn>> {
        match &self.repr {
            Repr::Heap(_) => None,
            Repr::Paged(paged) => Some(paged),
        }
    }

    /// Whether the column is pager-backed (out-of-core).
    #[inline]
    pub fn is_paged(&self) -> bool {
        matches!(self.repr, Repr::Paged(_))
    }

    /// The storage width the codes are packed at.
    #[inline]
    pub fn width(&self) -> Width {
        match &self.repr {
            Repr::Heap(packed) => packed.width(),
            Repr::Paged(paged) => paged.width(),
        }
    }

    /// Bytes the column's codes currently occupy in memory: the full
    /// packed size for heap columns, the resident (hot + compressed)
    /// page bytes for paged columns.
    #[inline]
    pub fn bytes_in_memory(&self) -> usize {
        match &self.repr {
            Repr::Heap(packed) => packed.bytes_in_memory(),
            Repr::Paged(paged) => paged.resident_bytes() as usize,
        }
    }

    /// The per-row codes, widened into a fresh vector (cold paths only:
    /// exact baselines, concatenation, format conversion). For a paged
    /// column this is a full materializing scan.
    pub fn to_codes(&self) -> Vec<Code> {
        match &self.repr {
            Repr::Heap(packed) => packed.to_codes(),
            Repr::Paged(paged) => paged.to_codes().unwrap_or_else(|e| panic!("{e}")),
        }
    }

    /// The support size `u_alpha` (number of possible distinct codes).
    #[inline]
    pub fn support(&self) -> u32 {
        match &self.repr {
            Repr::Heap(packed) => packed.support(),
            Repr::Paged(paged) => paged.support(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Heap(packed) => packed.len(),
            Repr::Paged(paged) => paged.len(),
        }
    }

    /// Whether the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The code at `row`. Panics if out of range (or, for a paged
    /// column, on a corrupt page at first touch).
    #[inline]
    pub fn code(&self, row: usize) -> Code {
        match &self.repr {
            Repr::Heap(packed) => packed.code(row),
            Repr::Paged(paged) => paged.code(row),
        }
    }

    /// Counts occurrences of each code over all rows.
    ///
    /// The result has length `support()`; entry `i` is `n_i` in the paper's
    /// notation. A paged column scans one resident page at a time, so the
    /// count stays within the cache budget.
    pub fn value_counts(&self) -> Vec<u64> {
        match &self.repr {
            Repr::Heap(packed) => packed.value_counts(),
            Repr::Paged(paged) => paged.value_counts().unwrap_or_else(|e| panic!("{e}")),
        }
    }

    /// Number of codes that actually occur at least once.
    pub fn observed_distinct(&self) -> usize {
        self.value_counts().iter().filter(|&&n| n > 0).count()
    }
}

impl PartialEq for Column {
    /// Logical equality: same support and the same code sequence,
    /// regardless of representation (heap vs paged) or storage width.
    /// Mixed-representation comparison materializes the paged side —
    /// equality is a test/assertion tool, not a hot path.
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Heap(a), Repr::Heap(b)) => a == b,
            _ => {
                self.support() == other.support()
                    && self.len() == other.len()
                    && self.to_codes() == other.to_codes()
            }
        }
    }
}

impl Eq for Column {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_codes() {
        assert!(Column::new(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            Column::new(vec![0, 3], 3),
            Err(ColumnarError::CodeOutOfRange { code: 3, .. })
        ));
    }

    #[test]
    fn from_raw_values_densifies() {
        let (col, order) = Column::from_raw_values(&[10, 50, 10, 7]);
        assert_eq!(col.to_codes(), vec![0, 1, 0, 2]);
        assert_eq!(col.support(), 3);
        assert_eq!(order, vec![10, 50, 7]);
    }

    #[test]
    fn value_counts_match_manual_tally() {
        let col = Column::new(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(col.value_counts(), vec![1, 3, 1]);
        assert_eq!(col.observed_distinct(), 3);
    }

    #[test]
    fn support_can_exceed_observed() {
        // A column may declare support 5 while only codes {0,1} occur; this
        // happens after row subsetting. Counts must still be sized to support.
        let col = Column::new(vec![0, 1, 0], 5).unwrap();
        assert_eq!(col.value_counts(), vec![2, 1, 0, 0, 0]);
        assert_eq!(col.observed_distinct(), 2);
    }

    #[test]
    fn empty_column() {
        let col = Column::new(vec![], 4).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.value_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn packs_at_narrowest_width_for_support() {
        assert_eq!(Column::new(vec![0, 255], 256).unwrap().width(), Width::U8);
        assert_eq!(Column::new(vec![0, 256], 257).unwrap().width(), Width::U16);
        assert_eq!(Column::new(vec![0, 65536], 65537).unwrap().width(), Width::U32);
        let col = Column::new(vec![0, 1, 2, 3], 4).unwrap();
        assert_eq!(col.bytes_in_memory(), 4);
    }

    #[test]
    fn with_width_preserves_logical_content_and_equality() {
        let col = Column::new(vec![0, 7, 3, 7], 8).unwrap();
        for width in [Width::U8, Width::U16, Width::U32] {
            let re = col.with_width(width).unwrap();
            assert_eq!(re.width(), width);
            assert_eq!(re, col, "columns compare logically across widths");
            assert_eq!(re.to_codes(), col.to_codes());
        }
        assert!(Column::new(vec![0], 300).unwrap().with_width(Width::U8).is_err());
    }

    #[test]
    fn heap_columns_report_heap_storage() {
        let col = Column::new(vec![0, 1], 2).unwrap();
        assert!(!col.is_paged());
        assert!(col.paged().is_none());
        assert!(matches!(col.storage(), ColumnStorage::Heap(_)));
        let _ = col.packed(); // must not panic for heap storage
    }
}
