use swope_store::{PackedColumn, StoreError, Width};

use crate::{Code, ColumnarError};

/// A dictionary-encoded categorical column.
///
/// Logically one code per row with the invariant that every code is
/// `< support()`. Codes are dense: support equals the number of *possible*
/// distinct codes (typically the number actually observed, when built via
/// [`crate::DatasetBuilder`]).
///
/// Physical storage is delegated to [`swope_store::PackedColumn`], which
/// packs codes at the narrowest width the support allows (`u8` up to
/// support 256, `u16` up to 65536, `u32` beyond). Hot paths read the
/// width-tagged storage through [`Column::packed`]; cold paths use
/// [`Column::code`] / [`Column::to_codes`], which widen on the fly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    packed: PackedColumn,
}

impl Column {
    /// Creates a column from raw codes, validating `code < support` for all.
    pub fn new(codes: Vec<Code>, support: u32) -> Result<Self, ColumnarError> {
        match PackedColumn::new(codes, support) {
            Ok(packed) => Ok(Self { packed }),
            Err(StoreError::CodeOutOfRange { code, support }) => {
                Err(ColumnarError::CodeOutOfRange { attr: 0, code, support })
            }
            Err(e) => Err(ColumnarError::Snapshot(e.to_string())),
        }
    }

    /// Creates a column without validating codes.
    ///
    /// The caller must guarantee `codes[i] < support` for all `i`; violating
    /// this breaks counter indexing downstream (it will panic, not corrupt
    /// memory — counters use checked indexing in debug builds and sized
    /// allocations in release).
    pub fn new_unchecked(codes: Vec<Code>, support: u32) -> Self {
        Self { packed: PackedColumn::new_unchecked(codes, support) }
    }

    /// Wraps an already-validated packed column (the snapshot reader's
    /// path, which decodes pages straight at their stored width).
    pub fn from_packed(packed: PackedColumn) -> Self {
        Self { packed }
    }

    /// The same logical column re-packed at a forced (wider) `width`.
    ///
    /// Used by width-invariance tests and the store bench to compare the
    /// byte traffic of identical data at `u8`/`u16`/`u32`; errors if the
    /// width cannot hold the support.
    pub fn with_width(&self, width: Width) -> Result<Self, ColumnarError> {
        self.packed
            .repacked(width)
            .map(|packed| Self { packed })
            .map_err(|e| ColumnarError::Snapshot(e.to_string()))
    }

    /// Builds a column by densely re-encoding arbitrary `u32` values.
    ///
    /// Values need not be dense; they are mapped to `0..u` in first-seen
    /// order. Returns the column and the mapping (old value per new code).
    pub fn from_raw_values(values: &[u32]) -> (Self, Vec<u32>) {
        let mut map = std::collections::HashMap::new();
        let mut order = Vec::new();
        let codes: Vec<Code> = values
            .iter()
            .map(|&v| {
                *map.entry(v).or_insert_with(|| {
                    order.push(v);
                    (order.len() - 1) as Code
                })
            })
            .collect();
        let support = order.len() as u32;
        (Self::new_unchecked(codes, support), order)
    }

    /// The width-packed physical storage (what the adaptive loops scan).
    #[inline]
    pub fn packed(&self) -> &PackedColumn {
        &self.packed
    }

    /// The storage width the codes are packed at.
    #[inline]
    pub fn width(&self) -> Width {
        self.packed.width()
    }

    /// Bytes the codes occupy in memory at the current width.
    #[inline]
    pub fn bytes_in_memory(&self) -> usize {
        self.packed.bytes_in_memory()
    }

    /// The per-row codes, widened into a fresh vector (cold paths only:
    /// exact baselines, concatenation, format conversion).
    pub fn to_codes(&self) -> Vec<Code> {
        self.packed.to_codes()
    }

    /// The support size `u_alpha` (number of possible distinct codes).
    #[inline]
    pub fn support(&self) -> u32 {
        self.packed.support()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// The code at `row`. Panics if out of range.
    #[inline]
    pub fn code(&self, row: usize) -> Code {
        self.packed.code(row)
    }

    /// Counts occurrences of each code over all rows.
    ///
    /// The result has length `support()`; entry `i` is `n_i` in the paper's
    /// notation.
    pub fn value_counts(&self) -> Vec<u64> {
        self.packed.value_counts()
    }

    /// Number of codes that actually occur at least once.
    pub fn observed_distinct(&self) -> usize {
        self.value_counts().iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_codes() {
        assert!(Column::new(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            Column::new(vec![0, 3], 3),
            Err(ColumnarError::CodeOutOfRange { code: 3, .. })
        ));
    }

    #[test]
    fn from_raw_values_densifies() {
        let (col, order) = Column::from_raw_values(&[10, 50, 10, 7]);
        assert_eq!(col.to_codes(), vec![0, 1, 0, 2]);
        assert_eq!(col.support(), 3);
        assert_eq!(order, vec![10, 50, 7]);
    }

    #[test]
    fn value_counts_match_manual_tally() {
        let col = Column::new(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(col.value_counts(), vec![1, 3, 1]);
        assert_eq!(col.observed_distinct(), 3);
    }

    #[test]
    fn support_can_exceed_observed() {
        // A column may declare support 5 while only codes {0,1} occur; this
        // happens after row subsetting. Counts must still be sized to support.
        let col = Column::new(vec![0, 1, 0], 5).unwrap();
        assert_eq!(col.value_counts(), vec![2, 1, 0, 0, 0]);
        assert_eq!(col.observed_distinct(), 2);
    }

    #[test]
    fn empty_column() {
        let col = Column::new(vec![], 4).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.value_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn packs_at_narrowest_width_for_support() {
        assert_eq!(Column::new(vec![0, 255], 256).unwrap().width(), Width::U8);
        assert_eq!(Column::new(vec![0, 256], 257).unwrap().width(), Width::U16);
        assert_eq!(Column::new(vec![0, 65536], 65537).unwrap().width(), Width::U32);
        let col = Column::new(vec![0, 1, 2, 3], 4).unwrap();
        assert_eq!(col.bytes_in_memory(), 4);
    }

    #[test]
    fn with_width_preserves_logical_content_and_equality() {
        let col = Column::new(vec![0, 7, 3, 7], 8).unwrap();
        for width in [Width::U8, Width::U16, Width::U32] {
            let re = col.with_width(width).unwrap();
            assert_eq!(re.width(), width);
            assert_eq!(re, col, "columns compare logically across widths");
            assert_eq!(re.to_codes(), col.to_codes());
        }
        assert!(Column::new(vec![0], 300).unwrap().with_width(Width::U8).is_err());
    }
}
