use crate::{Code, ColumnarError};

/// A dictionary-encoded categorical column.
///
/// Stores one `u32` code per row, with the invariant that every code is
/// `< support()`. Codes are dense: support equals the number of *possible*
/// distinct codes (typically the number actually observed, when built via
/// [`crate::DatasetBuilder`]).
///
/// The column is the unit the SWOPE algorithms scan: a sampling iteration
/// reads `codes()[perm[m0..m1]]` for the permutation prefix extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    codes: Vec<Code>,
    support: u32,
}

impl Column {
    /// Creates a column from raw codes, validating `code < support` for all.
    pub fn new(codes: Vec<Code>, support: u32) -> Result<Self, ColumnarError> {
        if let Some(&bad) = codes.iter().find(|&&c| c >= support) {
            return Err(ColumnarError::CodeOutOfRange { attr: 0, code: bad, support });
        }
        Ok(Self { codes, support })
    }

    /// Creates a column without validating codes.
    ///
    /// The caller must guarantee `codes[i] < support` for all `i`; violating
    /// this breaks counter indexing downstream (it will panic, not corrupt
    /// memory — counters use checked indexing in debug builds and sized
    /// allocations in release).
    pub fn new_unchecked(codes: Vec<Code>, support: u32) -> Self {
        debug_assert!(codes.iter().all(|&c| c < support));
        Self { codes, support }
    }

    /// Builds a column by densely re-encoding arbitrary `u32` values.
    ///
    /// Values need not be dense; they are mapped to `0..u` in first-seen
    /// order. Returns the column and the mapping (old value per new code).
    pub fn from_raw_values(values: &[u32]) -> (Self, Vec<u32>) {
        let mut map = std::collections::HashMap::new();
        let mut order = Vec::new();
        let codes = values
            .iter()
            .map(|&v| {
                *map.entry(v).or_insert_with(|| {
                    order.push(v);
                    (order.len() - 1) as Code
                })
            })
            .collect();
        let support = order.len() as u32;
        (Self { codes, support }, order)
    }

    /// The per-row codes.
    #[inline]
    pub fn codes(&self) -> &[Code] {
        &self.codes
    }

    /// The support size `u_alpha` (number of possible distinct codes).
    #[inline]
    pub fn support(&self) -> u32 {
        self.support
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code at `row`. Panics if out of range.
    #[inline]
    pub fn code(&self, row: usize) -> Code {
        self.codes[row]
    }

    /// Counts occurrences of each code over all rows.
    ///
    /// The result has length `support()`; entry `i` is `n_i` in the paper's
    /// notation.
    pub fn value_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.support as usize];
        for &c in &self.codes {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Number of codes that actually occur at least once.
    pub fn observed_distinct(&self) -> usize {
        self.value_counts().iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_codes() {
        assert!(Column::new(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            Column::new(vec![0, 3], 3),
            Err(ColumnarError::CodeOutOfRange { code: 3, .. })
        ));
    }

    #[test]
    fn from_raw_values_densifies() {
        let (col, order) = Column::from_raw_values(&[10, 50, 10, 7]);
        assert_eq!(col.codes(), &[0, 1, 0, 2]);
        assert_eq!(col.support(), 3);
        assert_eq!(order, vec![10, 50, 7]);
    }

    #[test]
    fn value_counts_match_manual_tally() {
        let col = Column::new(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(col.value_counts(), vec![1, 3, 1]);
        assert_eq!(col.observed_distinct(), 3);
    }

    #[test]
    fn support_can_exceed_observed() {
        // A column may declare support 5 while only codes {0,1} occur; this
        // happens after row subsetting. Counts must still be sized to support.
        let col = Column::new(vec![0, 1, 0], 5).unwrap();
        assert_eq!(col.value_counts(), vec![2, 1, 0, 0, 0]);
        assert_eq!(col.observed_distinct(), 2);
    }

    #[test]
    fn empty_column() {
        let col = Column::new(vec![], 4).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.value_counts(), vec![0, 0, 0, 0]);
    }
}
