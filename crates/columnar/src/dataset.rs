use crate::{AttrIndex, Code, Column, ColumnarError, Schema};

/// An immutable columnar dataset: `N` rows by `h` categorical attributes.
///
/// This is the input type `D` of every SWOPE query. Columns are stored
/// independently so a query over a candidate subset only touches those
/// columns — matching the paper's columnar layout assumption (§6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Dataset {
    /// Assembles a dataset, validating that columns agree with the schema.
    ///
    /// Checks: one column per field, equal row counts, and codes within each
    /// field's support.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, ColumnarError> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::RaggedColumns);
        }
        let num_rows = columns.first().map_or(0, Column::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != num_rows {
                return Err(ColumnarError::RaggedColumns);
            }
            let support = schema.field(i).expect("length checked").support();
            if col.support() > support {
                return Err(ColumnarError::CodeOutOfRange {
                    attr: i,
                    code: col.support() - 1,
                    support,
                });
            }
        }
        Ok(Self { schema, columns, num_rows })
    }

    /// Loads a dataset from `path`, dispatching on the extension: `.swop`
    /// is read as a [`crate::snapshot`], anything else as CSV with default
    /// options. This is the one loader shared by the CLI and the server's
    /// dataset registry, so both agree on what a path means.
    pub fn from_path(path: impl AsRef<std::path::Path>) -> Result<Dataset, ColumnarError> {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "swop") {
            crate::snapshot::read_file(path)
        } else {
            crate::csv::read_csv_file(path, &crate::csv::CsvOptions::default())
        }
    }

    /// [`Dataset::from_path`] that also surfaces the snapshot's partition
    /// sketch when the file carries one. CSV files and v2 snapshots
    /// without a sketch section load with `None`.
    pub fn from_path_with_sketch(
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Dataset, Option<swope_sketch::DatasetSketch>), ColumnarError> {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "swop") {
            crate::snapshot::read_file_with_sketch(path)
        } else {
            crate::csv::read_csv_file(path, &crate::csv::CsvOptions::default()).map(|ds| (ds, None))
        }
    }

    /// [`Dataset::from_path_with_sketch`], but `.swop` snapshots open
    /// *out-of-core*: columns stay in the mapped (or buffered) file and
    /// fault page-by-page through `cache` — see
    /// [`crate::snapshot::open_paged`]. CSV files and v1 snapshots have
    /// no paged representation and load eagerly to heap columns.
    pub fn from_path_paged(
        path: impl AsRef<std::path::Path>,
        cache: std::sync::Arc<swope_pager::PageCache>,
    ) -> Result<(Dataset, Option<swope_sketch::DatasetSketch>), ColumnarError> {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "swop") {
            crate::snapshot::open_paged(path, cache)
        } else {
            crate::csv::read_csv_file(path, &crate::csv::CsvOptions::default()).map(|ds| (ds, None))
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records `N`.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes `h`.
    pub fn num_attrs(&self) -> usize {
        self.columns.len()
    }

    /// The column for attribute `attr`. Panics if out of range; use
    /// [`Dataset::try_column`] for a fallible variant.
    pub fn column(&self, attr: AttrIndex) -> &Column {
        &self.columns[attr]
    }

    /// The column for attribute `attr`, or an error if out of range.
    pub fn try_column(&self, attr: AttrIndex) -> Result<&Column, ColumnarError> {
        self.columns
            .get(attr)
            .ok_or(ColumnarError::AttrOutOfRange { index: attr, num_attrs: self.columns.len() })
    }

    /// The support size `u_alpha` of attribute `attr`.
    pub fn support(&self, attr: AttrIndex) -> u32 {
        self.columns[attr].support()
    }

    /// Resolves an attribute name to its index.
    pub fn attr_index(&self, name: &str) -> Result<AttrIndex, ColumnarError> {
        self.schema.index_of(name).ok_or_else(|| ColumnarError::UnknownAttr(name.to_owned()))
    }

    /// Returns a dataset containing only the attributes at `indices`.
    ///
    /// Row data for kept columns is shared by clone of the code vectors.
    pub fn project(&self, indices: &[AttrIndex]) -> Result<Dataset, ColumnarError> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(ColumnarError::AttrOutOfRange {
                    index: i,
                    num_attrs: self.columns.len(),
                });
            }
        }
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Dataset::new(schema, columns)
    }

    /// Drops attributes whose support size exceeds `cap`, returning the
    /// surviving dataset and the kept original indices.
    ///
    /// The paper removes columns with support > 1000 before querying, "since
    /// they are usually not the preferred attributes for downstream data
    /// mining tasks" (§6.1).
    pub fn cap_support(&self, cap: u32) -> (Dataset, Vec<AttrIndex>) {
        let kept: Vec<AttrIndex> =
            (0..self.num_attrs()).filter(|&i| self.columns[i].support() <= cap).collect();
        let ds = self.project(&kept).expect("indices derived from self are valid");
        (ds, kept)
    }

    /// Vertically concatenates datasets with matching schemas (e.g.
    /// shards of one logical table loaded separately).
    ///
    /// Attributes are matched by position and must agree in *name*. Codes
    /// are reconciled per attribute:
    ///
    /// * if both fields carry dictionaries, the other shard's codes are
    ///   re-encoded through a merged dictionary (value-level identity);
    /// * otherwise codes are taken as-is and the support becomes the max
    ///   of the two (code-level identity — correct for shards produced by
    ///   the same generator/encoder).
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, ColumnarError> {
        if self.num_attrs() != other.num_attrs() {
            return Err(ColumnarError::RaggedColumns);
        }
        let mut fields = Vec::with_capacity(self.num_attrs());
        let mut columns = Vec::with_capacity(self.num_attrs());
        for attr in 0..self.num_attrs() {
            let fa = self.schema.field(attr).expect("in range");
            let fb = other.schema.field(attr).expect("in range");
            if fa.name() != fb.name() {
                return Err(ColumnarError::UnknownAttr(format!(
                    "attribute {attr} name mismatch: {:?} vs {:?}",
                    fa.name(),
                    fb.name()
                )));
            }
            let ca = self.column(attr);
            let cb = other.column(attr);
            match (fa.dictionary(), fb.dictionary()) {
                (Some(da), Some(db)) => {
                    let mut merged = da.clone();
                    let remap: Vec<Code> = (0..db.len() as Code)
                        .map(|code| {
                            let value = db.decode(code).expect("dense dictionary");
                            merged.intern(value)
                        })
                        .collect();
                    let mut codes = ca.to_codes();
                    codes.reserve(cb.len());
                    codes.extend(cb.to_codes().iter().map(|&c| remap[c as usize]));
                    let support = merged.len() as u32;
                    fields.push(crate::Field::with_dictionary(fa.name(), merged));
                    columns.push(Column::new_unchecked(codes, support));
                }
                _ => {
                    let support = ca.support().max(cb.support());
                    let mut codes = ca.to_codes();
                    codes.reserve(cb.len());
                    codes.extend(cb.to_codes());
                    fields.push(crate::Field::new(fa.name(), support));
                    columns.push(Column::new_unchecked(codes, support));
                }
            }
        }
        Dataset::new(Schema::new(fields), columns)
    }

    /// Returns a dataset containing only the rows at `rows` (in that order).
    ///
    /// Supports are preserved (not re-densified) so bound computations using
    /// `u_alpha` stay comparable with the parent dataset.
    pub fn take_rows(&self, rows: &[usize]) -> Dataset {
        let columns: Vec<Column> = self
            .columns
            .iter()
            .map(|c| {
                let codes = rows.iter().map(|&r| c.code(r)).collect();
                Column::new_unchecked(codes, c.support())
            })
            .collect();
        Dataset { schema: self.schema.clone(), columns, num_rows: rows.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn small() -> Dataset {
        let schema = Schema::new(vec![Field::new("x", 3), Field::new("y", 2)]);
        let cols = vec![
            Column::new(vec![0, 1, 2, 0], 3).unwrap(),
            Column::new(vec![1, 0, 1, 1], 2).unwrap(),
        ];
        Dataset::new(schema, cols).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = Schema::new(vec![Field::new("x", 3)]);
        let cols = vec![Column::new(vec![0, 1], 3).unwrap(), Column::new(vec![0], 2).unwrap()];
        assert!(matches!(Dataset::new(schema, cols), Err(ColumnarError::RaggedColumns)));
    }

    #[test]
    fn construction_rejects_ragged_rows() {
        let schema = Schema::new(vec![Field::new("x", 3), Field::new("y", 2)]);
        let cols = vec![Column::new(vec![0, 1, 2], 3).unwrap(), Column::new(vec![0], 2).unwrap()];
        assert!(Dataset::new(schema, cols).is_err());
    }

    #[test]
    fn accessors() {
        let ds = small();
        assert_eq!(ds.num_rows(), 4);
        assert_eq!(ds.num_attrs(), 2);
        assert_eq!(ds.support(0), 3);
        assert_eq!(ds.attr_index("y").unwrap(), 1);
        assert!(ds.attr_index("z").is_err());
        assert!(ds.try_column(5).is_err());
    }

    #[test]
    fn project_subsets_columns() {
        let ds = small().project(&[1]).unwrap();
        assert_eq!(ds.num_attrs(), 1);
        assert_eq!(ds.schema().field(0).unwrap().name(), "y");
        assert_eq!(ds.num_rows(), 4);
    }

    #[test]
    fn project_rejects_bad_index() {
        assert!(small().project(&[0, 9]).is_err());
    }

    #[test]
    fn cap_support_drops_wide_columns() {
        let (ds, kept) = small().cap_support(2);
        assert_eq!(kept, vec![1]);
        assert_eq!(ds.num_attrs(), 1);
        let (all, kept_all) = small().cap_support(1000);
        assert_eq!(kept_all, vec![0, 1]);
        assert_eq!(all.num_attrs(), 2);
    }

    #[test]
    fn concat_without_dictionaries_appends_rows() {
        let a = small();
        let b = small();
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.num_rows(), 8);
        assert_eq!(joined.num_attrs(), 2);
        assert_eq!(joined.column(0).to_codes()[..4], a.column(0).to_codes());
        assert_eq!(joined.column(0).to_codes()[4..], b.column(0).to_codes());
    }

    #[test]
    fn concat_with_dictionaries_remaps_codes() {
        use crate::DatasetBuilder;
        let mut b1 = DatasetBuilder::new(vec!["c".into()]);
        b1.push_row(&["red"]).unwrap();
        b1.push_row(&["blue"]).unwrap();
        let mut b2 = DatasetBuilder::new(vec!["c".into()]);
        b2.push_row(&["blue"]).unwrap(); // code 0 in shard 2, 1 in merged
        b2.push_row(&["green"]).unwrap(); // new value
        let joined = b1.finish().concat(&b2.finish()).unwrap();
        assert_eq!(joined.num_rows(), 4);
        let dict = joined.schema().field(0).unwrap().dictionary().unwrap();
        assert_eq!(dict.len(), 3);
        // Row 2 ("blue") must share row 1's code; row 3 is the new value.
        let codes = joined.column(0).to_codes();
        assert_eq!(codes[2], codes[1]);
        assert_eq!(dict.decode(codes[3]), Some("green"));
    }

    #[test]
    fn concat_rejects_mismatched_shapes() {
        let a = small();
        let narrower = a.project(&[0]).unwrap();
        assert!(a.concat(&narrower).is_err());
        // Name mismatch.
        let schema = Schema::new(vec![Field::new("x", 3), Field::new("z", 2)]);
        let renamed = Dataset::new(
            schema,
            vec![Column::new(vec![0], 3).unwrap(), Column::new(vec![0], 2).unwrap()],
        )
        .unwrap();
        assert!(a.concat(&renamed).is_err());
    }

    #[test]
    fn take_rows_reorders_and_preserves_support() {
        let ds = small().take_rows(&[3, 0]);
        assert_eq!(ds.num_rows(), 2);
        assert_eq!(ds.column(0).to_codes(), vec![0, 0]);
        assert_eq!(ds.column(1).to_codes(), vec![1, 1]);
        assert_eq!(ds.support(0), 3); // not re-densified
    }
}
