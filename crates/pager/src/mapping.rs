//! Snapshot byte sources: `mmap(2)` on Linux with a buffered-read
//! fallback, behind one trait — the same facility-behind-a-trait shape
//! as the server's `Poller`.
//!
//! A [`Mapping`] is an immutable byte view of one snapshot file. The
//! pager never writes through it and never reads past the length
//! captured at open, so the only liveness assumption is the usual mmap
//! one: the file must not be truncated while mapped. Snapshot files are
//! written once and renamed into place, so that holds by convention.
//!
//! Selection ([`open_mapping`]): Linux maps the file `PROT_READ` /
//! `MAP_PRIVATE` and advises `MADV_RANDOM` (page faults follow the
//! sampler's permuted row order, not file order); every other platform —
//! and Linux with `SWOPE_FORCE_READ=1` in the environment — reads the
//! whole file into a heap buffer instead. A failed `mmap` also falls
//! back to the heap read rather than erroring: the fallback is always
//! correct, just not out-of-core.

use std::io;
use std::path::Path;
use std::sync::Arc;

/// An immutable byte view of a snapshot file.
pub trait Mapping: Send + Sync {
    /// The file's bytes, complete and in order.
    fn bytes(&self) -> &[u8];

    /// `"mmap"` or `"read"` — surfaced by `swope inspect` and
    /// `/datasets` so operators can tell which facility is live.
    fn kind(&self) -> &'static str;
}

/// Fallback source: the whole file read into an anonymous heap buffer.
pub struct HeapMapping {
    bytes: Vec<u8>,
}

impl HeapMapping {
    /// Reads `path` in full.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(Self { bytes: std::fs::read(path)? })
    }
}

impl Mapping for HeapMapping {
    fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn kind(&self) -> &'static str {
        "read"
    }
}

/// Raw-syscall bindings, gated exactly like the server's event layer.
#[cfg(target_os = "linux")]
mod sys {
    use core::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MADV_RANDOM: i32 = 1;
}

/// A read-only private memory map of the file.
#[cfg(target_os = "linux")]
pub struct MmapMapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and owned exclusively by this struct;
// concurrent readers of an immutable byte range are safe.
#[cfg(target_os = "linux")]
unsafe impl Send for MmapMapping {}
#[cfg(target_os = "linux")]
unsafe impl Sync for MmapMapping {}

#[cfg(target_os = "linux")]
impl MmapMapping {
    /// Maps `path` read-only. Errors if the map itself fails; the caller
    /// decides whether to fall back.
    pub fn open(path: &Path) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap rejects zero-length maps; an empty file has nothing
            // to page anyway.
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
        }
        // SAFETY: fd is a valid open file descriptor for `len` bytes;
        // NULL addr lets the kernel place the map.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Advisory only: the fault pattern follows sampled row order.
        // SAFETY: ptr/len describe the mapping just created.
        unsafe {
            let _ = sys::madvise(ptr, len, sys::MADV_RANDOM);
        }
        Ok(Self { ptr: ptr as *const u8, len })
    }
}

#[cfg(target_os = "linux")]
impl Mapping for MmapMapping {
    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; unmapped only in Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn kind(&self) -> &'static str {
        "mmap"
    }
}

#[cfg(target_os = "linux")]
impl Drop for MmapMapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            let _ = sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
        }
    }
}

/// `SWOPE_FORCE_READ=1` forces the buffered-read fallback even where
/// mmap is available — the escape hatch mirroring `SWOPE_FORCE_POLL`.
fn force_read() -> bool {
    std::env::var_os("SWOPE_FORCE_READ").is_some_and(|v| v == "1")
}

/// Opens the best available [`Mapping`] for `path`: mmap on Linux
/// (unless `SWOPE_FORCE_READ=1` or the map fails), buffered read
/// everywhere else.
pub fn open_mapping(path: &Path) -> io::Result<Arc<dyn Mapping>> {
    #[cfg(target_os = "linux")]
    {
        if !force_read() {
            if let Ok(m) = MmapMapping::open(path) {
                return Ok(Arc::new(m));
            }
        }
    }
    Ok(Arc::new(HeapMapping::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("swope-pager-map-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn heap_mapping_reads_whole_file() {
        let path = tmp("heap", b"0123456789");
        let m = HeapMapping::open(&path).unwrap();
        assert_eq!(m.bytes(), b"0123456789");
        assert_eq!(m.kind(), "read");
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_mapping_matches_file_bytes() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let path = tmp("mmap", &payload);
        let m = MmapMapping::open(&path).unwrap();
        assert_eq!(m.bytes(), &payload[..]);
        assert_eq!(m.kind(), "mmap");
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_rejects_empty_file() {
        let path = tmp("empty", b"");
        assert!(MmapMapping::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_mapping_always_succeeds_on_real_files() {
        let path = tmp("auto", b"swop bytes");
        let m = open_mapping(&path).unwrap();
        assert_eq!(m.bytes(), b"swop bytes");
        std::fs::remove_file(&path).ok();
    }
}
