//! The byte-budget page cache: CLOCK second-chance eviction over every
//! decoded page, with compressed cold pages as the middle tier.
//!
//! One [`PageCache`] is shared by every paged column opened against it
//! (the server owns a single process-wide instance). Columns decode
//! pages on demand and *admit* them here; when admitting would push the
//! resident byte total past the budget, the clock hand walks the ring
//! of known pages and evicts until the new page fits. Eviction demotes a
//! page one tier at a time:
//!
//! ```text
//! Cold ──fault (CRC once)──▶ Hot ──evict──▶ Compressed ──evict──▶ Cold
//!   ▲                         ▲ └─refetch = decode only─┘
//!   └────────── refetch = re-decode from mapping (no disk copy) ──┘
//! ```
//!
//! A `Hot → Compressed` demotion happens only when the page's encoding
//! pick (from the sketch histogram, or a run-count fallback) actually
//! reaches half the plain bytes; otherwise the page drops straight to
//! `Cold`. Pages currently borrowed by a gather (their `Arc` is cloned)
//! are never evicted, and a single page larger than the whole budget is
//! allowed to overshoot — the cache bounds steady-state memory, it does
//! not deadlock on pathological budgets.
//!
//! Locking: the fault path holds exactly one slot lock and may take the
//! clock lock inside it; the clock walk only ever *try-locks* other
//! slots, so no cycle exists.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use swope_store::rle::{self, CompressedPage, PageEncoding};
use swope_store::PackedCodes;

/// Where one page's codes currently live.
pub(crate) enum SlotState {
    /// Only in the mapping; next touch decodes (and CRC-checks once).
    Cold,
    /// Decoded and resident; gathers clone the `Arc`.
    Hot {
        /// The decoded page.
        page: Arc<PackedCodes>,
        /// Resident bytes charged for it.
        bytes: u64,
    },
    /// Evicted but kept re-encoded; refetch is a decode, not a re-read.
    Compressed {
        /// The re-encoded page.
        page: CompressedPage,
    },
}

/// One page's cache entry. Owned by its column, registered (weakly)
/// with the cache's clock ring on first decode.
pub(crate) struct PageSlot {
    /// CLOCK reference bit: set on touch, cleared for a second chance.
    pub(crate) refbit: AtomicBool,
    /// CRC verified on first decode; refaults skip the re-check.
    pub(crate) validated: AtomicBool,
    /// Set once the slot has been pushed onto the clock ring.
    pub(crate) registered: AtomicBool,
    /// Eviction-time encoding pick for this page.
    pub(crate) pick: PageEncoding,
    pub(crate) state: Mutex<SlotState>,
}

impl PageSlot {
    pub(crate) fn new(pick: PageEncoding) -> Self {
        Self {
            refbit: AtomicBool::new(false),
            validated: AtomicBool::new(false),
            registered: AtomicBool::new(false),
            pick,
            state: Mutex::new(SlotState::Cold),
        }
    }
}

struct Clock {
    ring: Vec<Weak<PageSlot>>,
    hand: usize,
}

/// Process-wide decoded-page cache with a byte budget.
pub struct PageCache {
    /// `None` = unbounded (heap-equivalent residency).
    budget: Option<u64>,
    resident: AtomicU64,
    peak_resident: AtomicU64,
    faults: AtomicU64,
    fault_nanos: AtomicU64,
    decompressions: AtomicU64,
    evictions: AtomicU64,
    crc_validations: AtomicU64,
    compressed_pages: AtomicU64,
    compressed_bytes: AtomicU64,
    clock: Mutex<Clock>,
}

/// A point-in-time copy of the cache's counters and gauges, for
/// metrics rendering and trace spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerSnapshot {
    /// Pages decoded from the mapping (first touch or cold refetch).
    pub faults: u64,
    /// Total nanoseconds spent decoding faulted pages.
    pub fault_nanos: u64,
    /// Refetches served from the compressed tier.
    pub decompressions: u64,
    /// Pages demoted by the clock hand (either tier).
    pub evictions: u64,
    /// First-touch CRC verifications performed.
    pub crc_validations: u64,
    /// Bytes currently resident (hot + compressed). Gauge.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`. Gauge.
    pub peak_resident_bytes: u64,
    /// Pages currently held compressed. Gauge.
    pub compressed_pages: u64,
    /// Bytes of the compressed tier. Gauge.
    pub compressed_bytes: u64,
    /// Configured budget; `None` when unbounded.
    pub budget_bytes: Option<u64>,
}

impl PagerSnapshot {
    /// Counter deltas since `before`; gauges keep their current values.
    pub fn since(&self, before: &PagerSnapshot) -> PagerSnapshot {
        PagerSnapshot {
            faults: self.faults - before.faults,
            fault_nanos: self.fault_nanos - before.fault_nanos,
            decompressions: self.decompressions - before.decompressions,
            evictions: self.evictions - before.evictions,
            crc_validations: self.crc_validations - before.crc_validations,
            ..*self
        }
    }
}

impl PageCache {
    /// A cache evicting past `budget` bytes; `None` never evicts.
    pub fn new(budget: Option<u64>) -> Self {
        Self {
            budget,
            resident: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            fault_nanos: AtomicU64::new(0),
            decompressions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            crc_validations: AtomicU64::new(0),
            compressed_pages: AtomicU64::new(0),
            compressed_bytes: AtomicU64::new(0),
            clock: Mutex::new(Clock { ring: Vec::new(), hand: 0 }),
        }
    }

    /// A cache that never evicts.
    pub fn unbounded() -> Self {
        Self::new(None)
    }

    /// The configured byte budget, if any.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes currently resident across every column on this cache.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Copies all counters and gauges.
    pub fn snapshot(&self) -> PagerSnapshot {
        PagerSnapshot {
            faults: self.faults.load(Ordering::Relaxed),
            fault_nanos: self.fault_nanos.load(Ordering::Relaxed),
            decompressions: self.decompressions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            crc_validations: self.crc_validations.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak_resident.load(Ordering::Relaxed),
            compressed_pages: self.compressed_pages.load(Ordering::Relaxed),
            compressed_bytes: self.compressed_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget,
        }
    }

    pub(crate) fn note_fault(&self, took: Duration) {
        self.faults.fetch_add(1, Ordering::Relaxed);
        self.fault_nanos.fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_crc_validation(&self) {
        self.crc_validations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_decompression(&self) {
        self.decompressions.fetch_add(1, Ordering::Relaxed);
    }

    /// Pushes a slot onto the clock ring exactly once (idempotent via
    /// the slot's `registered` bit).
    pub(crate) fn register(&self, slot: &Arc<PageSlot>) {
        if slot.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        self.clock.lock().expect("clock lock").ring.push(Arc::downgrade(slot));
    }

    /// Charges `bytes` of newly decoded page, evicting first if the
    /// budget requires it. `skip` is the slot being faulted (its state
    /// lock is held by the caller, so the walk must not try it).
    pub(crate) fn admit(&self, skip: &PageSlot, bytes: u64) {
        self.reserve(bytes, skip);
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
    }

    /// Uncharges bytes of a demoted/released page.
    pub(crate) fn release(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Swaps accounting when a compressed page is promoted back to hot.
    pub(crate) fn promote_compressed(&self, skip: &PageSlot, compressed_len: u64, hot_bytes: u64) {
        self.compressed_pages.fetch_sub(1, Ordering::Relaxed);
        self.compressed_bytes.fetch_sub(compressed_len, Ordering::Relaxed);
        self.release(compressed_len);
        self.admit(skip, hot_bytes);
    }

    /// Runs the eviction sweep with nothing to admit: demotes unpinned
    /// pages until resident bytes are back at or under the budget.
    /// Concurrent gathers pin pages past the budget while they run
    /// (admission never blocks on a pinned page), and only admissions
    /// trigger eviction — so after a burst of parallel queries the
    /// overshoot lingers until the next fault. Callers that want the
    /// steady-state bound *now* call this. No-op when unbounded or
    /// already within budget.
    pub fn trim(&self) {
        self.reserve(0, &PageSlot::new(PageEncoding::Plain));
    }

    /// Evicts pages until `need` more bytes fit under the budget, or the
    /// clock has swept the ring enough times to conclude nothing else is
    /// evictable (pages in use by a live gather are pinned). A single
    /// page bigger than the budget overshoots rather than failing.
    fn reserve(&self, need: u64, skip: &PageSlot) {
        let Some(budget) = self.budget else { return };
        let mut clock = self.clock.lock().expect("clock lock");
        let mut steps = 0usize;
        while self.resident.load(Ordering::Relaxed).saturating_add(need) > budget {
            if clock.ring.is_empty() || steps >= 3 * clock.ring.len() {
                break;
            }
            steps += 1;
            if clock.hand >= clock.ring.len() {
                clock.hand = 0;
            }
            let i = clock.hand;
            let Some(slot) = clock.ring[i].upgrade() else {
                // Column dropped; compact the ring in place. The element
                // swapped into `i` is inspected on the next iteration.
                clock.ring.swap_remove(i);
                continue;
            };
            clock.hand += 1;
            if std::ptr::eq(&*slot, skip) {
                continue;
            }
            if slot.refbit.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            let Ok(mut st) = slot.state.try_lock() else { continue };
            match std::mem::replace(&mut *st, SlotState::Cold) {
                SlotState::Cold => {}
                SlotState::Hot { page, bytes } => {
                    if Arc::strong_count(&page) > 1 {
                        // A gather holds this page right now: pinned.
                        *st = SlotState::Hot { page, bytes };
                        continue;
                    }
                    let pick = match slot.pick {
                        // No sketch pick for this page: one cheap pass
                        // decides whether RLE pays for itself.
                        PageEncoding::Plain => {
                            let runs = rle::count_runs(&page);
                            if (4 + runs * 8) * 2 <= page.bytes() {
                                PageEncoding::Rle
                            } else {
                                PageEncoding::Plain
                            }
                        }
                        pick => pick,
                    };
                    if let Some(c) = rle::compress(&page, pick) {
                        let clen = c.bytes_len() as u64;
                        self.compressed_pages.fetch_add(1, Ordering::Relaxed);
                        self.compressed_bytes.fetch_add(clen, Ordering::Relaxed);
                        self.release(bytes);
                        self.resident.fetch_add(clen, Ordering::Relaxed);
                        // Fresh second chance for the compressed form.
                        slot.refbit.store(true, Ordering::Relaxed);
                        *st = SlotState::Compressed { page: c };
                    } else {
                        self.release(bytes);
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                SlotState::Compressed { page } => {
                    let clen = page.bytes_len() as u64;
                    self.compressed_pages.fetch_sub(1, Ordering::Relaxed);
                    self.compressed_bytes.fetch_sub(clen, Ordering::Relaxed);
                    self.release(clen);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_slot(rows: usize, pick: PageEncoding) -> (Arc<PageSlot>, u64) {
        let slot = Arc::new(PageSlot::new(pick));
        let page = Arc::new(PackedCodes::U16(vec![7; rows]));
        let bytes = page.bytes() as u64;
        *slot.state.lock().unwrap() = SlotState::Hot { page, bytes };
        (slot, bytes)
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = PageCache::unbounded();
        let (slot, bytes) = hot_slot(1 << 16, PageEncoding::Plain);
        cache.register(&slot);
        cache.admit(&slot, bytes);
        cache.admit(&PageSlot::new(PageEncoding::Plain), 1 << 30);
        assert_eq!(cache.snapshot().evictions, 0);
        assert!(matches!(&*slot.state.lock().unwrap(), SlotState::Hot { .. }));
    }

    #[test]
    fn over_budget_admission_demotes_constant_page_to_compressed() {
        let cache = PageCache::new(Some(200_000));
        let (slot, bytes) = hot_slot(1 << 16, PageEncoding::Rle);
        cache.register(&slot);
        cache.admit(&slot, bytes);
        // Second chance first: one admit clears the refbit...
        slot.refbit.store(true, Ordering::Relaxed);
        let newcomer = PageSlot::new(PageEncoding::Plain);
        cache.admit(&newcomer, 150_000);
        let snap = cache.snapshot();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.compressed_pages, 1);
        assert!(matches!(&*slot.state.lock().unwrap(), SlotState::Compressed { .. }));
        // ...and the resident total now counts the tiny compressed form
        // plus the newcomer, not the old hot bytes.
        assert!(snap.resident_bytes < 160_000, "{}", snap.resident_bytes);
    }

    #[test]
    fn compressed_tier_is_dropped_cold_under_continued_pressure() {
        let cache = PageCache::new(Some(100));
        let (slot, bytes) = hot_slot(1 << 16, PageEncoding::Rle);
        cache.register(&slot);
        // Overshoots: nothing else to evict.
        cache.admit(&slot, bytes);
        // One pressured admit demotes Hot → Compressed, burns the
        // compressed form's second chance, then drops it Cold — all
        // within the same clock sweep because the budget stays exceeded.
        cache.admit(&PageSlot::new(PageEncoding::Plain), 90);
        assert!(matches!(&*slot.state.lock().unwrap(), SlotState::Cold));
        assert_eq!(cache.snapshot().compressed_pages, 0);
        assert_eq!(cache.snapshot().evictions, 2);
    }

    #[test]
    fn pages_borrowed_by_a_gather_are_pinned() {
        let cache = PageCache::new(Some(10));
        let (slot, bytes) = hot_slot(1 << 16, PageEncoding::Plain);
        let borrowed = match &*slot.state.lock().unwrap() {
            SlotState::Hot { page, .. } => page.clone(),
            _ => unreachable!(),
        };
        cache.register(&slot);
        cache.admit(&slot, bytes);
        cache.admit(&PageSlot::new(PageEncoding::Plain), 50);
        assert!(matches!(&*slot.state.lock().unwrap(), SlotState::Hot { .. }));
        assert_eq!(cache.snapshot().evictions, 0);
        drop(borrowed);
        slot.refbit.store(false, Ordering::Relaxed);
        cache.admit(&PageSlot::new(PageEncoding::Plain), 50);
        assert!(cache.snapshot().evictions >= 1);
        assert!(!matches!(&*slot.state.lock().unwrap(), SlotState::Hot { .. }));
    }

    #[test]
    fn trim_reclaims_overshoot_once_pins_drop() {
        let cache = PageCache::new(Some(10));
        let (slot, bytes) = hot_slot(1 << 16, PageEncoding::Plain);
        let pin = match &*slot.state.lock().unwrap() {
            SlotState::Hot { page, .. } => page.clone(),
            _ => unreachable!(),
        };
        cache.register(&slot);
        cache.admit(&slot, bytes); // pinned: overshoots the budget
        slot.refbit.store(false, Ordering::Relaxed);
        cache.trim(); // still pinned: nothing to reclaim
        assert!(cache.snapshot().resident_bytes > 10);
        drop(pin);
        cache.trim();
        assert!(cache.snapshot().resident_bytes <= 10);
    }

    #[test]
    fn snapshot_since_deltas_counters_and_keeps_gauges() {
        let cache = PageCache::new(Some(1));
        cache.note_fault(Duration::from_nanos(500));
        let before = cache.snapshot();
        cache.note_fault(Duration::from_nanos(200));
        cache.note_crc_validation();
        let delta = cache.snapshot().since(&before);
        assert_eq!(delta.faults, 1);
        assert_eq!(delta.fault_nanos, 200);
        assert_eq!(delta.crc_validations, 1);
        assert_eq!(delta.budget_bytes, Some(1));
    }
}
