//! A column served page-by-page out of a [`Mapping`], with lazy
//! first-touch CRC validation and cache-managed residency.
//!
//! Opening a paged column parses and validates only *structure*: the
//! page-stream header, the arithmetic that fixes every page's byte
//! offset (pages before the last are always full, so offsets are a pure
//! function of the page index), and each 8-byte page header's row
//! count. Payload bytes are not read, checksummed, or decoded until a
//! query actually touches a row in that page — which is the whole point:
//! sampling loops touch a sublinear fraction of rows, so most pages of a
//! large snapshot are never faulted at all.
//!
//! On first touch a page's CRC is verified once (a corrupt page fails
//! right there with the same `page {i}: checksum mismatch` message the
//! eager decoder uses), its codes are decoded through the width-generic
//! [`CodeRepr`] path into a [`PackedCodes`], and the decoded bytes are
//! admitted to the [`PageCache`]. Refaults of an evicted page skip the
//! CRC re-check (the `validated` bit survives eviction) and, when the
//! page was kept compressed, skip the mapping entirely.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use swope_store::page::{PAGE_HEADER_BYTES, STREAM_HEADER_BYTES};
use swope_store::rle::{self, PageEncoding};
use swope_store::{crc32::crc32, Code, CodeRepr, PackedCodes, StoreError, Width};

use crate::cache::{PageCache, PageSlot, SlotState};
use crate::mapping::Mapping;

/// A read-only column whose pages live in a [`Mapping`] and fault into
/// a shared [`PageCache`] on demand.
pub struct PagedColumn {
    mapping: Arc<dyn Mapping>,
    cache: Arc<PageCache>,
    /// Offset of the page-stream header within the mapping.
    payload_start: usize,
    width: Width,
    support: u32,
    rows: usize,
    page_rows: usize,
    slots: Vec<Arc<PageSlot>>,
}

impl std::fmt::Debug for PagedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedColumn")
            .field("rows", &self.rows)
            .field("support", &self.support)
            .field("width", &self.width)
            .field("pages", &self.slots.len())
            .field("mapping", &self.mapping.kind())
            .finish()
    }
}

impl PagedColumn {
    /// Opens the column payload at `payload` (byte range within
    /// `mapping`) holding `rows` codes of `width`. Validates the page
    /// stream's structure and every page header's row count — but no
    /// payload bytes — so a corrupt page surfaces on first touch, not
    /// here. `picks` carries the per-page eviction encoding chosen from
    /// the sketch histogram (ignored unless one pick per page).
    pub fn open(
        mapping: Arc<dyn Mapping>,
        cache: Arc<PageCache>,
        payload: Range<usize>,
        rows: usize,
        support: u32,
        width: Width,
        picks: Option<Vec<PageEncoding>>,
    ) -> Result<Self, StoreError> {
        let file = mapping.bytes();
        if payload.start > payload.end || payload.end > file.len() {
            return Err(StoreError::Corrupt("column payload out of file bounds".into()));
        }
        let mut buf = &file[payload.clone()];
        let payload_len = buf.len();
        let page_rows = get_u32(&mut buf)? as usize;
        let page_count = get_u32(&mut buf)? as usize;
        if page_rows == 0 && rows > 0 {
            return Err(StoreError::Corrupt("page size of zero rows".into()));
        }
        let expect_pages = if page_rows == 0 { 0 } else { rows.div_ceil(page_rows) };
        if page_count != expect_pages {
            return Err(StoreError::Corrupt(format!(
                "page count {page_count} disagrees with {rows} rows at {page_rows} rows/page"
            )));
        }
        let need = STREAM_HEADER_BYTES as u64
            + (page_count as u64) * (PAGE_HEADER_BYTES as u64)
            + (rows as u64) * (width.bytes() as u64);
        if payload_len as u64 != need {
            return Err(StoreError::Corrupt(format!(
                "column payload is {payload_len} bytes, expected {need}"
            )));
        }
        // Every page before the last is full, so page offsets are pure
        // arithmetic — but only if the headers agree. Check the 8-byte
        // headers now (payloads stay untouched).
        for page in 0..page_count {
            let expect = (rows - page * page_rows).min(page_rows);
            let off = header_offset(payload.start, page, page_rows, width);
            let got = read_u32(file, off) as usize;
            if got != expect {
                return Err(StoreError::Corrupt(format!("page {page}: invalid row count {got}")));
            }
        }
        let picks = picks.filter(|p| p.len() == page_count);
        let slots = (0..page_count)
            .map(|i| {
                let pick = picks.as_ref().map_or(PageEncoding::Plain, |p| p[i]);
                Arc::new(PageSlot::new(pick))
            })
            .collect();
        Ok(Self {
            mapping,
            cache,
            payload_start: payload.start,
            width,
            support,
            rows,
            page_rows,
            slots,
        })
    }

    /// Rows in the column.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Dictionary support (codes are `0..support`).
    pub fn support(&self) -> u32 {
        self.support
    }

    /// On-disk (and decoded) storage width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Number of pages backing the column.
    pub fn num_pages(&self) -> usize {
        self.slots.len()
    }

    /// Rows per full page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// `"mmap"` or `"read"` — which byte-source facility backs this
    /// column.
    pub fn mapping_kind(&self) -> &'static str {
        self.mapping.kind()
    }

    /// Bytes the column would occupy fully decoded (the heap-mode cost).
    pub fn plain_bytes(&self) -> u64 {
        (self.rows * self.width.bytes()) as u64
    }

    /// Bytes of this column currently resident (hot + compressed tiers).
    pub fn resident_bytes(&self) -> u64 {
        let mut total = 0u64;
        for slot in &self.slots {
            match &*slot.state.lock().expect("slot lock") {
                SlotState::Cold => {}
                SlotState::Hot { bytes, .. } => total += bytes,
                SlotState::Compressed { page } => total += page.bytes_len() as u64,
            }
        }
        total
    }

    /// Faults page `index` resident and returns its decoded codes. The
    /// returned `Arc` pins the page against eviction while held.
    pub fn page(&self, index: usize) -> Result<Arc<PackedCodes>, StoreError> {
        let slot = &self.slots[index];
        slot.refbit.store(true, std::sync::atomic::Ordering::Relaxed);
        let mut st = slot.state.lock().expect("slot lock");
        match &*st {
            SlotState::Hot { page, .. } => return Ok(page.clone()),
            SlotState::Compressed { page } => {
                let decoded = rle::decompress(page)
                    .map_err(|e| StoreError::Corrupt(format!("page {index}: {e}")))?;
                let clen = page.bytes_len() as u64;
                let bytes = decoded.bytes() as u64;
                let decoded = Arc::new(decoded);
                self.cache.note_decompression();
                self.cache.promote_compressed(slot, clen, bytes);
                *st = SlotState::Hot { page: decoded.clone(), bytes };
                return Ok(decoded);
            }
            SlotState::Cold => {}
        }
        // Cold: decode from the mapping, CRC-checking on first touch.
        let start = Instant::now();
        let file = self.mapping.bytes();
        let off = header_offset(self.payload_start, index, self.page_rows, self.width);
        let rows = read_u32(file, off) as usize;
        let crc = read_u32(file, off + 4);
        let payload =
            &file[off + PAGE_HEADER_BYTES..off + PAGE_HEADER_BYTES + rows * self.width.bytes()];
        if !slot.validated.load(std::sync::atomic::Ordering::Relaxed) {
            self.cache.note_crc_validation();
            if crc32(payload) != crc {
                return Err(StoreError::Corrupt(format!("page {index}: checksum mismatch")));
            }
            slot.validated.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        let decoded = decode_payload(payload, rows, self.width);
        if let Some(max) = decoded.max_code() {
            if max >= self.support {
                return Err(StoreError::Corrupt(format!(
                    "page {index}: code {max} out of range for support {}",
                    self.support
                )));
            }
        }
        let bytes = decoded.bytes() as u64;
        let decoded = Arc::new(decoded);
        self.cache.register(slot);
        self.cache.note_fault(start.elapsed());
        self.cache.admit(slot, bytes);
        *st = SlotState::Hot { page: decoded.clone(), bytes };
        Ok(decoded)
    }

    /// A single-row read paying one page fault at worst. Prefer a
    /// [`cursor`](Self::cursor) for anything iterative.
    pub fn try_code(&self, row: usize) -> Result<Code, StoreError> {
        assert!(row < self.rows, "row {row} out of range for {} rows", self.rows);
        let page = self.page(row / self.page_rows)?;
        Ok(page.code(row % self.page_rows))
    }

    /// Panicking [`try_code`](Self::try_code) for hot paths (the exec
    /// pool converts the panic back into a query error).
    pub fn code(&self, row: usize) -> Code {
        self.try_code(row).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A cursor memoizing the last faulted page, for row sequences with
    /// page locality (even sampled row order revisits pages heavily:
    /// 64Ki rows per page vs thousands of samples).
    pub fn cursor(&self) -> PageCursor<'_> {
        PageCursor { col: self, page_index: usize::MAX, page: None }
    }

    /// Gathers `rows` (in order) into `out` as widened codes, replacing
    /// its contents — the paged analogue of `PackedCodes::gather_widen`.
    pub fn gather_widen(&self, rows: &[u32], out: &mut Vec<Code>) {
        out.clear();
        out.reserve(rows.len());
        let mut cur = self.cursor();
        for &row in rows {
            out.push(cur.code(row as usize));
        }
    }

    /// Runs `f` over every page overlapping `rows`, in order, passing
    /// the page's first row and its decoded codes. The visit holds one
    /// page resident at a time, so a full scan stays within budget.
    pub fn try_for_each_page<F>(&self, rows: Range<usize>, mut f: F) -> Result<(), StoreError>
    where
        F: FnMut(usize, &PackedCodes),
    {
        if rows.start >= rows.end {
            return Ok(());
        }
        let first = rows.start / self.page_rows;
        let last = (rows.end - 1) / self.page_rows;
        for index in first..=last {
            let page = self.page(index)?;
            f(index * self.page_rows, &page);
        }
        Ok(())
    }

    /// The whole column widened to `u32` — a materializing full scan;
    /// only for cold paths (equality checks, snapshot rewrite).
    pub fn to_codes(&self) -> Result<Vec<Code>, StoreError> {
        let mut out = Vec::with_capacity(self.rows);
        self.try_for_each_page(0..self.rows, |_, page| out.extend(page.to_codes()))?;
        Ok(out)
    }

    /// Occurrences of every code, one full scan, one page resident at a
    /// time.
    pub fn value_counts(&self) -> Result<Vec<u64>, StoreError> {
        let mut counts = vec![0u64; self.support as usize];
        self.try_for_each_page(0..self.rows, |_, page| {
            swope_store::for_packed!(page, |codes| {
                for &c in codes.iter() {
                    counts[c.widen() as usize] += 1;
                }
            })
        })?;
        Ok(counts)
    }
}

/// A per-call page memo over one [`PagedColumn`].
pub struct PageCursor<'a> {
    col: &'a PagedColumn,
    page_index: usize,
    page: Option<Arc<PackedCodes>>,
}

impl PageCursor<'_> {
    /// Reads one row, faulting its page only when it differs from the
    /// previous row's.
    pub fn try_code(&mut self, row: usize) -> Result<Code, StoreError> {
        assert!(row < self.col.rows, "row {row} out of range for {} rows", self.col.rows);
        let index = row / self.col.page_rows;
        if index != self.page_index {
            self.page = Some(self.col.page(index)?);
            self.page_index = index;
        }
        let page = self.page.as_ref().expect("page faulted above");
        Ok(page.code(row % self.col.page_rows))
    }

    /// Panicking [`try_code`](Self::try_code) for hot paths.
    pub fn code(&mut self, row: usize) -> Code {
        self.try_code(row).unwrap_or_else(|e| panic!("{e}"))
    }
}

fn header_offset(payload_start: usize, page: usize, page_rows: usize, width: Width) -> usize {
    payload_start
        + STREAM_HEADER_BYTES
        + page * PAGE_HEADER_BYTES
        + page * page_rows * width.bytes()
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, StoreError> {
    if buf.len() < 4 {
        return Err(StoreError::Corrupt("truncated page stream".into()));
    }
    let (head, tail) = buf.split_at(4);
    *buf = tail;
    Ok(u32::from_le_bytes(head.try_into().expect("split at 4")))
}

fn decode_payload(payload: &[u8], rows: usize, width: Width) -> PackedCodes {
    let mut out = match width {
        Width::U8 => PackedCodes::U8(Vec::with_capacity(rows)),
        Width::U16 => PackedCodes::U16(Vec::with_capacity(rows)),
        Width::U32 => PackedCodes::U32(Vec::with_capacity(rows)),
    };
    match &mut out {
        PackedCodes::U8(v) => CodeRepr::extend_from_le_bytes(payload, v),
        PackedCodes::U16(v) => CodeRepr::extend_from_le_bytes(payload, v),
        PackedCodes::U32(v) => CodeRepr::extend_from_le_bytes(payload, v),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::HeapMapping;
    use swope_store::page::{encode_pages, PAGE_ROWS};

    struct VecMapping(Vec<u8>);
    impl Mapping for VecMapping {
        fn bytes(&self) -> &[u8] {
            &self.0
        }
        fn kind(&self) -> &'static str {
            "read"
        }
    }

    fn column_bytes(rows: usize, support: u32) -> (Vec<u8>, Vec<Code>) {
        let codes: Vec<Code> =
            (0..rows as u32).map(|i| i.wrapping_mul(2654435761) % support).collect();
        let packed = PackedCodes::pack(&codes, Width::for_support(support));
        (encode_pages(&packed), codes)
    }

    fn open(
        bytes: Vec<u8>,
        rows: usize,
        support: u32,
        cache: Arc<PageCache>,
    ) -> Result<PagedColumn, StoreError> {
        let len = bytes.len();
        PagedColumn::open(
            Arc::new(VecMapping(bytes)),
            cache,
            0..len,
            rows,
            support,
            Width::for_support(support),
            None,
        )
    }

    #[test]
    fn reads_match_eager_decode_across_pages() {
        let rows = 2 * PAGE_ROWS + 1234;
        let (bytes, codes) = column_bytes(rows, 300);
        let col = open(bytes, rows, 300, Arc::new(PageCache::unbounded())).unwrap();
        assert_eq!(col.num_pages(), 3);
        let mut cur = col.cursor();
        for (i, &want) in codes.iter().enumerate().step_by(977) {
            assert_eq!(cur.code(i), want, "row {i}");
        }
        assert_eq!(col.to_codes().unwrap(), codes);
    }

    #[test]
    fn open_touches_no_payload_and_first_touch_validates_crc() {
        let rows = 3 * PAGE_ROWS;
        let (mut bytes, _) = column_bytes(rows, 100);
        // Corrupt one payload byte in page 1.
        let off = STREAM_HEADER_BYTES + 2 * PAGE_HEADER_BYTES + PAGE_ROWS + 17;
        bytes[off] ^= 0xFF;
        let cache = Arc::new(PageCache::unbounded());
        let col = open(bytes, rows, 100, cache.clone()).unwrap(); // open succeeds
        assert_eq!(cache.snapshot().crc_validations, 0);
        // Pages 0 and 2 fault fine.
        assert!(col.try_code(0).is_ok());
        assert!(col.try_code(2 * PAGE_ROWS + 5).is_ok());
        // Page 1 fails on first touch, naming itself.
        let err = col.try_code(PAGE_ROWS + 100).unwrap_err();
        assert_eq!(err.to_string(), "corrupt store data: page 1: checksum mismatch");
        assert_eq!(cache.snapshot().crc_validations, 3);
        // Refault of an already-validated page skips the CRC pass.
        assert!(col.try_code(1).is_ok());
        assert_eq!(cache.snapshot().crc_validations, 3);
    }

    #[test]
    fn corrupt_header_row_count_fails_at_open() {
        let rows = PAGE_ROWS + 10;
        let (mut bytes, _) = column_bytes(rows, 100);
        let off = STREAM_HEADER_BYTES; // page 0's rows field
        bytes[off..off + 4].copy_from_slice(&7u32.to_le_bytes());
        let err = open(bytes, rows, 100, Arc::new(PageCache::unbounded())).unwrap_err();
        assert!(err.to_string().contains("page 0: invalid row count 7"), "{err}");
    }

    #[test]
    fn budget_eviction_keeps_reads_identical() {
        let rows = 4 * PAGE_ROWS;
        let support = 50_000; // u16 pages of 128 KiB
        let (bytes, codes) = column_bytes(rows, support);
        // Budget below two pages: every page-crossing read evicts.
        let cache = Arc::new(PageCache::new(Some((PAGE_ROWS * 2 - 1000) as u64)));
        let col = open(bytes, rows, support, cache.clone()).unwrap();
        let mut cur = col.cursor();
        for pass in 0..3 {
            for (i, &want) in codes.iter().enumerate().step_by(4999) {
                assert_eq!(cur.code(i), want, "pass {pass} row {i}");
            }
        }
        let snap = cache.snapshot();
        assert!(snap.evictions > 0, "budget never forced an eviction");
        // u16 pages. Mid-scan the cursor pins one page while the
        // overshoot allowance admits another; once the cursor is gone,
        // one more reserve settles residency back to ≤ one page +
        // compressed.
        let page_bytes = (PAGE_ROWS * 2) as u64;
        assert!(
            snap.resident_bytes <= 2 * page_bytes + snap.compressed_bytes,
            "resident {} over pinned+overshoot allowance",
            snap.resident_bytes
        );
        drop(cur);
        col.try_code(0).unwrap();
        let snap = cache.snapshot();
        assert!(
            snap.resident_bytes <= page_bytes + snap.compressed_bytes,
            "resident {} over overshoot allowance",
            snap.resident_bytes
        );
    }

    #[test]
    fn out_of_range_codes_fail_on_touch() {
        let rows = 100;
        let codes: Vec<Code> = vec![90; rows];
        let packed = PackedCodes::pack(&codes, Width::U8);
        let bytes = encode_pages(&packed);
        // Declare a support smaller than the stored codes.
        let col = open(bytes, rows, 50, Arc::new(PageCache::unbounded())).unwrap();
        let err = col.try_code(0).unwrap_err();
        assert!(err.to_string().contains("code 90 out of range"), "{err}");
    }

    #[test]
    fn value_counts_and_scan_visit_every_row_once() {
        let rows = PAGE_ROWS + 777;
        let (bytes, codes) = column_bytes(rows, 32);
        let col = open(bytes, rows, 32, Arc::new(PageCache::new(Some(1)))).unwrap();
        let counts = col.value_counts().unwrap();
        let mut want = vec![0u64; 32];
        for &c in &codes {
            want[c as usize] += 1;
        }
        assert_eq!(counts, want);
        let mut seen = 0usize;
        col.try_for_each_page(10..rows - 10, |first, page| {
            assert_eq!(first % PAGE_ROWS, 0);
            seen += page.len();
        })
        .unwrap();
        // The range overlaps both pages, so both are visited in full.
        assert_eq!(seen, rows);
    }

    #[test]
    fn heap_mapping_backed_file_round_trips() {
        let rows = PAGE_ROWS / 2;
        let (bytes, codes) = column_bytes(rows, 70_000);
        let path = std::env::temp_dir().join(format!("swope-pager-col-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapping: Arc<dyn Mapping> = Arc::new(HeapMapping::open(&path).unwrap());
        let col = PagedColumn::open(
            mapping,
            Arc::new(PageCache::unbounded()),
            0..bytes.len(),
            rows,
            70_000,
            Width::U32,
            None,
        )
        .unwrap();
        assert_eq!(col.to_codes().unwrap(), codes);
        std::fs::remove_file(&path).ok();
    }
}
