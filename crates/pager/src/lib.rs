//! # swope-pager
//!
//! Out-of-core storage for `SWOP` v2 snapshots: memory-map the file,
//! fault CRC'd 64Ki-row pages resident on first touch, and bound total
//! decoded bytes with a process-wide byte-budget page cache.
//!
//! SWOPE's sampling loops touch a sublinear fraction of rows per query,
//! but the eager loader decodes whole snapshots into heap memory,
//! capping a server at RAM-sized datasets. This crate makes the SWOP v2
//! *page* — already length-delimited and individually checksummed — the
//! unit of residency instead:
//!
//! * [`mapping`] — the byte source: raw-syscall `mmap`/`munmap`/
//!   `madvise` on Linux behind the [`Mapping`] trait, with a
//!   buffered-read fallback (`SWOPE_FORCE_READ=1` forces it), the same
//!   facility-behind-a-trait pattern as the server's `Poller`.
//! * [`column`] — [`PagedColumn`]: an arithmetic page directory over
//!   the mapped payload, lazy first-touch CRC validation, and gathers
//!   served page-by-page through the width-generic `CodeRepr` decode
//!   path — no eager whole-column decode anywhere.
//! * [`cache`] — [`PageCache`]: CLOCK second-chance eviction over every
//!   decoded page against a configurable byte budget
//!   (`--store-budget-bytes`), demoting cold pages to a compressed tier
//!   (RLE / palette, picked per page from the sketch histogram) before
//!   dropping them entirely.
//!
//! Paged reads decode the exact bytes the eager path decodes, so query
//! results are bitwise identical across heap, mmap, and
//! budget-constrained modes — enforced end-to-end by
//! `core/tests/pager_invariance.rs`.
//!
//! Like the rest of the workspace, the crate uses no external
//! dependencies; the only unsafe code is the mmap facility itself.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod column;
pub mod mapping;

pub use cache::{PageCache, PagerSnapshot};
pub use column::{PageCursor, PagedColumn};
pub use mapping::{open_mapping, HeapMapping, Mapping};
