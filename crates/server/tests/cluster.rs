//! Coordinator/peer integration over real loopback sockets: a
//! coordinator fanning out to shard servers must serve byte-for-byte
//! the same HTTP bodies as a single box holding the union, dead peers
//! must fail fast with a one-line 503, and `/metrics` must expose the
//! cluster families.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use swope_obs::json::Json;
use swope_server::{Server, ServerConfig, ServerHandle};

/// The union every cluster in this file serves, split row-wise.
fn union_dataset() -> swope_columnar::Dataset {
    swope_datagen::generate(&swope_datagen::corpus::tiny(400, 5), 0x5EED)
}

/// Rows `[start, end)` of `ds` in order, supports preserved so shard
/// halves agree with the union on every attribute's meta.
fn slice_rows(ds: &swope_columnar::Dataset, start: usize, end: usize) -> swope_columnar::Dataset {
    let rows: Vec<usize> = (start..end).collect();
    ds.take_rows(&rows)
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(config: ServerConfig, dataset: swope_columnar::Dataset) -> Self {
        let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap();
        server.registry().insert("tiny", dataset);
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let thread = Some(std::thread::spawn(move || server.run()));
        Self { addr, handle, thread }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn get(addr: SocketAddr, path: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("no header/body separator");
    let mut lines = head.lines();
    let status = lines.next().unwrap().split_whitespace().nth(1).unwrap().parse().unwrap();
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').unwrap();
            (k.trim().to_ascii_lowercase(), v.trim().to_owned())
        })
        .collect();
    HttpReply { status, headers, body: body.to_owned() }
}

/// Value of a plain `name value` line in Prometheus exposition text.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}

/// Two peer shard servers holding the halves plus a coordinator wired
/// to them. Returned in drop order: coordinator last so its best-effort
/// session teardown still finds the peers alive.
fn start_cluster() -> (TestServer, TestServer, TestServer) {
    let union = union_dataset();
    let cut = union.num_rows() / 2;
    let peer_a = TestServer::start(ServerConfig::default(), slice_rows(&union, 0, cut));
    let peer_b =
        TestServer::start(ServerConfig::default(), slice_rows(&union, cut, union.num_rows()));
    let coordinator = TestServer::start(
        ServerConfig {
            peers: vec![peer_a.addr.to_string(), peer_b.addr.to_string()],
            ..ServerConfig::default()
        },
        union_dataset(),
    );
    (peer_a, peer_b, coordinator)
}

#[test]
fn coordinator_serves_single_box_identical_bytes() {
    let single = TestServer::start(ServerConfig::default(), union_dataset());
    let (_peer_a, _peer_b, coordinator) = start_cluster();

    let paths = [
        "/query/entropy-topk?dataset=tiny&k=2",
        "/query/entropy-topk?dataset=tiny&k=2&seed=7&epsilon=0.2",
        "/query/entropy-filter?dataset=tiny&eta=1.0",
        "/query/entropy-profile?dataset=tiny",
        "/query/mi-topk?dataset=tiny&target=0&k=2",
        "/query/mi-filter?dataset=tiny&target=0&eta=0.05",
        "/query/mi-profile?dataset=tiny&target=0",
        // Scopes spanning the shard cut and inside a single shard, plus
        // an open-ended row_end past N (clamps to N on both paths).
        "/query/entropy-topk?dataset=tiny&k=2&row_start=100&row_end=300",
        "/query/entropy-topk?dataset=tiny&k=2&row_start=10&row_end=150",
        "/query/mi-topk?dataset=tiny&target=1&k=2&row_start=250",
        "/query/entropy-profile?dataset=tiny&row_end=100000",
    ];
    for path in paths {
        let want = get(single.addr, path);
        assert_eq!(want.status, 200, "single box failed {path}: {}", want.body);
        let got = get(coordinator.addr, path);
        assert_eq!(got.status, 200, "coordinator failed {path}: {}", got.body);
        assert_eq!(got.body, want.body, "bodies differ for {path}");
    }

    // A repeat of the first query is a coordinator-cache hit serving the
    // same bytes without another fan-out.
    let merges_before =
        metric(&get(coordinator.addr, "/metrics").body, "swope_cluster_merges_total");
    let again = get(coordinator.addr, paths[0]);
    assert_eq!(again.header("x-swope-cache"), Some("hit"));
    assert_eq!(again.body, get(single.addr, paths[0]).body);
    let metrics = get(coordinator.addr, "/metrics").body;
    assert_eq!(metric(&metrics, "swope_cluster_merges_total"), merges_before);

    // The coordinator exposes the cluster gauge and counter families.
    assert_eq!(metric(&metrics, "swope_cluster_peers"), 2);
    assert_eq!(metric(&metrics, "swope_cluster_union_rows"), 400);
    assert!(metric(&metrics, "swope_cluster_queries_total") >= paths.len() as u64);
    assert!(metric(&metrics, "swope_cluster_merges_total") >= 1);
    assert!(metric(&metrics, "swope_cluster_frames_sent_total") > 0);
    assert!(metric(&metrics, "swope_cluster_bytes_received_total") > 0);
    assert_eq!(metric(&metrics, "swope_cluster_peer_errors_total"), 0);

    // Peer sessions are pooled: the startup probe and the first fan-out
    // dial each peer, every later query reuses the pooled sockets. 11
    // queries x 2 peers without pooling would open 20+ connections.
    assert!(metric(&metrics, "swope_cluster_conns_opened_total") <= 8);
    assert!(metric(&metrics, "swope_cluster_conn_reuses_total") >= 10);

    // Peers count the frames they served on their own wire counters.
    let peer_metrics = get(_peer_a.addr, "/metrics").body;
    assert!(metric(&peer_metrics, "swope_cluster_frames_received_total") > 0);
}

#[test]
fn cluster_rejects_predicate_scopes_and_empty_ranges() {
    let (_peer_a, _peer_b, coordinator) = start_cluster();

    let reply = get(coordinator.addr, "/query/entropy-topk?dataset=tiny&k=2&where=0%3D1");
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert!(reply.body.contains("row_start/row_end"), "{}", reply.body);

    // Empty-after-clamp ranges fail the same way a single box does.
    let reply = get(coordinator.addr, "/query/entropy-topk?dataset=tiny&k=2&row_start=400");
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert!(Json::parse(&reply.body).unwrap().get("error").is_some());
}

#[test]
fn dead_peer_is_a_fast_one_line_503() {
    let union = union_dataset();
    let cut = union.num_rows() / 2;
    let peer_a = TestServer::start(ServerConfig::default(), slice_rows(&union, 0, cut));
    let peer_b =
        TestServer::start(ServerConfig::default(), slice_rows(&union, cut, union.num_rows()));
    let dead_addr = peer_b.addr;
    let coordinator = TestServer::start(
        ServerConfig {
            peers: vec![peer_a.addr.to_string(), dead_addr.to_string()],
            peer_connect_timeout: Duration::from_millis(500),
            peer_io_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
        union_dataset(),
    );
    drop(peer_b);

    let started = Instant::now();
    let reply = get(coordinator.addr, "/query/entropy-topk?dataset=tiny&k=2");
    assert!(started.elapsed() < Duration::from_secs(5), "query hung on the dead peer");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert_eq!(reply.header("retry-after"), Some("1"));
    let err = Json::parse(&reply.body).unwrap();
    let msg = err.get("error").unwrap().as_str().unwrap().to_owned();
    assert!(!msg.contains('\n'), "error must be one line: {msg:?}");
    assert!(msg.contains(&dead_addr.to_string()), "error must name the peer: {msg}");

    let metrics = get(coordinator.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_cluster_peer_errors_total") >= 1);
}

#[test]
fn coordinator_refuses_to_start_when_a_peer_is_down() {
    // Reserve a port that refuses connections by binding and dropping.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead = probe.local_addr().unwrap();
    drop(probe);
    let err = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        peers: vec![dead.to_string()],
        peer_connect_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let msg = err.err().expect("bind must fail against a dead peer").to_string();
    assert!(msg.contains(&dead.to_string()), "error must name the peer: {msg}");
}

#[test]
fn debug_listings_honor_the_n_limit() {
    let server = TestServer::start(
        ServerConfig { trace: true, slow_ms: 0, ..ServerConfig::default() },
        union_dataset(),
    );
    for k in 1..=3 {
        let reply = get(server.addr, &format!("/query/entropy-topk?dataset=tiny&k={k}"));
        assert_eq!(reply.status, 200, "{}", reply.body);
    }

    let all = Json::parse(&get(server.addr, "/debug/traces").body).unwrap();
    assert_eq!(all.get("recorded_total").unwrap().as_u64(), Some(3));
    assert_eq!(all.get("returned").unwrap().as_u64(), Some(3));
    assert_eq!(all.get("truncated").unwrap().as_bool(), Some(false));

    let limited = Json::parse(&get(server.addr, "/debug/traces?n=1").body).unwrap();
    assert_eq!(limited.get("returned").unwrap().as_u64(), Some(1));
    assert_eq!(limited.get("truncated").unwrap().as_bool(), Some(true));
    let Json::Arr(traces) = limited.get("traces").unwrap() else { panic!("traces not an array") };
    // The limit keeps the newest trace, which queried k=3.
    assert!(traces[0].get("endpoint").unwrap().as_str() == Some("query_entropy_top_k"));

    let slow = Json::parse(&get(server.addr, "/debug/slow?n=2").body).unwrap();
    assert_eq!(slow.get("returned").unwrap().as_u64(), Some(2));
    assert_eq!(slow.get("truncated").unwrap().as_bool(), Some(true));

    let reply = get(server.addr, "/debug/traces?n=abc");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains('n'), "{}", reply.body);
}
