//! End-to-end tests over a real loopback `TcpStream`: bitwise identity
//! with the direct library path, cache-hit semantics, load shedding,
//! queueing deadlines, dataset management, graceful shutdown, and the
//! event-driven connection layer (keep-alive, pipelining, slow-loris
//! timeouts, per-tenant quotas, idle-connection capacity).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use swope_core::{
    entropy_filter, entropy_profile, entropy_top_k, mi_filter, mi_profile, mi_top_k, AttrScore,
    QueryStats, SwopeConfig,
};
use swope_obs::json::Json;
use swope_server::{Server, ServerConfig, ServerHandle};

fn tiny_dataset() -> swope_columnar::Dataset {
    swope_datagen::generate(&swope_datagen::corpus::tiny(300, 5), 0x5170)
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(config: ServerConfig) -> Self {
        let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap();
        server.registry().insert("tiny", tiny_dataset());
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let thread = Some(std::thread::spawn(move || server.run()));
        Self { addr, handle, thread }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

struct HttpReply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl HttpReply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn parse_reply(raw: &str) -> HttpReply {
    let (head, body) = raw.split_once("\r\n\r\n").expect("no header/body separator");
    let mut lines = head.lines();
    let status_line = lines.next().expect("empty response");
    let status = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').unwrap();
            (k.trim().to_ascii_lowercase(), v.trim().to_owned())
        })
        .collect();
    HttpReply { status, headers, body: body.to_owned() }
}

/// One-shot exchange: sends raw bytes and reads to EOF. The request must
/// make the server close (send `Connection: close`, or be unparseable).
fn send_raw(addr: SocketAddr, request: &str) -> HttpReply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    parse_reply(&raw)
}

fn get(addr: SocketAddr, path: &str) -> HttpReply {
    send_raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpReply {
    send_raw(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Reads exactly one response off a keep-alive connection: headers up to
/// the blank line, then `Content-Length` body bytes — leaving the stream
/// open and positioned at the next response.
fn read_one_response(stream: &mut TcpStream) -> HttpReply {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "EOF inside response head");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .expect("response has no Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    buf.extend_from_slice(&body);
    parse_reply(&String::from_utf8(buf).unwrap())
}

/// Spawns a GET that parks a worker for `ms` (needs
/// `debug_sleep_endpoint: true`); join the handle to wait it out.
fn spawn_sleeper(addr: SocketAddr, ms: u64) -> std::thread::JoinHandle<u16> {
    std::thread::spawn(move || get(addr, &format!("/debug/sleep?ms={ms}")).status)
}

/// Value of a plain `name value` line in Prometheus exposition text.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}

/// Asserts a served `scores` array is bitwise-identical to the library's.
fn assert_scores_match(served: &Json, expected: &[AttrScore], stats: &QueryStats) {
    let Json::Arr(scores) = served.get("scores").unwrap() else { panic!("scores not an array") };
    assert_eq!(scores.len(), expected.len());
    for (got, want) in scores.iter().zip(expected) {
        assert_eq!(got.get("attr").unwrap().as_u64(), Some(want.attr as u64));
        assert_eq!(got.get("name").unwrap().as_str(), Some(want.name.as_str()));
        for (field, value) in
            [("estimate", want.estimate), ("lower", want.lower), ("upper", want.upper)]
        {
            let served_bits = got.get(field).unwrap().as_f64().unwrap().to_bits();
            assert_eq!(served_bits, value.to_bits(), "{field} differs for attr {}", want.attr);
        }
    }
    let served_stats = served.get("stats").unwrap();
    assert_eq!(served_stats.get("sample_size").unwrap().as_u64(), Some(stats.sample_size as u64));
    assert_eq!(served_stats.get("iterations").unwrap().as_u64(), Some(stats.iterations as u64));
    assert_eq!(served_stats.get("rows_scanned").unwrap().as_u64(), Some(stats.rows_scanned));
}

#[test]
fn all_six_shapes_serve_library_identical_results() {
    let server = TestServer::start(ServerConfig::default());
    // The registry caps support at 1000 exactly like the CLI load path.
    let (ds, _) = tiny_dataset().cap_support(1000);

    let reply = get(server.addr, "/query/entropy-topk?dataset=tiny&k=2");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = entropy_top_k(&ds, 2, &SwopeConfig::with_epsilon(0.1)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.top, &r.stats);

    let reply = get(server.addr, "/query/entropy-filter?dataset=tiny&eta=1.0");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = entropy_filter(&ds, 1.0, &SwopeConfig::with_epsilon(0.05)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.accepted, &r.stats);

    let reply = get(server.addr, "/query/mi-topk?dataset=tiny&target=0&k=2");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = mi_top_k(&ds, 0, 2, &SwopeConfig::with_epsilon(0.5)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.top, &r.stats);

    let reply = get(server.addr, "/query/mi-filter?dataset=tiny&target=0&eta=0.05");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = mi_filter(&ds, 0, 0.05, &SwopeConfig::with_epsilon(0.5)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.accepted, &r.stats);

    let reply = get(server.addr, "/query/entropy-profile?dataset=tiny");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = entropy_profile(&ds, 0.05, &SwopeConfig::with_epsilon(0.1)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.scores, &r.stats);

    let reply = get(server.addr, "/query/mi-profile?dataset=tiny&target=0");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = mi_profile(&ds, 0, 0.05, &SwopeConfig::with_epsilon(0.5)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.scores, &r.stats);

    // Explicit seed/epsilon overrides flow through to the library config.
    let reply = get(server.addr, "/query/entropy-topk?dataset=tiny&k=2&seed=7&epsilon=0.2");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let r = entropy_top_k(&ds, 2, &SwopeConfig::with_epsilon(0.2).with_seed(7)).unwrap();
    assert_scores_match(&Json::parse(&reply.body).unwrap(), &r.top, &r.stats);
}

#[test]
fn cache_hit_serves_identical_bytes_without_rerunning_the_query() {
    let server = TestServer::start(ServerConfig::default());
    let path = "/query/entropy-topk?dataset=tiny&k=3";

    let first = get(server.addr, path);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-swope-cache"), Some("miss"));
    let metrics_before = get(server.addr, "/metrics").body;
    let scanned_before = metric(&metrics_before, "swope_rows_scanned_total");
    let hits_before = metric(&metrics_before, "swope_cache_hits_total");
    assert!(scanned_before > 0, "the miss must have run the adaptive loop");

    let second = get(server.addr, path);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-swope-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "hit must serve identical bytes");

    let metrics_after = get(server.addr, "/metrics").body;
    assert_eq!(
        metric(&metrics_after, "swope_rows_scanned_total"),
        scanned_before,
        "a cache hit must not scan any rows"
    );
    assert_eq!(metric(&metrics_after, "swope_cache_hits_total"), hits_before + 1);

    // A different parameterization misses again.
    let third = get(server.addr, "/query/entropy-topk?dataset=tiny&k=3&seed=9");
    assert_eq!(third.header("x-swope-cache"), Some("miss"));
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        debug_sleep_endpoint: true,
        ..ServerConfig::default()
    });
    // Occupy the single worker, then fill the one queue slot.
    let busy = spawn_sleeper(server.addr, 900);
    std::thread::sleep(Duration::from_millis(200));
    let queued = spawn_sleeper(server.addr, 0);
    std::thread::sleep(Duration::from_millis(200));

    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(reply.body.contains("overloaded"));

    // Once the sleeper finishes, service must recover.
    assert_eq!(busy.join().unwrap(), 200);
    assert_eq!(queued.join().unwrap(), 200);
    let mut recovered = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(20));
        if get(server.addr, "/healthz").status == 200 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "server did not recover after shedding");
    let metrics = get(server.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_http_rejected_total") >= 1);
}

#[test]
fn burst_load_sheds_exactly_the_overflow_and_serves_the_rest() {
    // With the single worker parked and a queue of 2, a 12-connection
    // burst gets exactly (12 − queued) 503s, the queued ones are
    // eventually served, and the shed counter agrees with what clients
    // observed.
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue_capacity: 2,
        debug_sleep_endpoint: true,
        ..ServerConfig::default()
    });
    let busy = spawn_sleeper(server.addr, 800);
    std::thread::sleep(Duration::from_millis(200));

    let burst: Vec<_> = (0..12)
        .map(|_| {
            let addr = server.addr;
            std::thread::spawn(move || get(addr, "/healthz").status)
        })
        .collect();
    let statuses: Vec<u16> = burst.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(busy.join().unwrap(), 200);

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + shed, 12, "unexpected statuses: {statuses:?}");
    assert!(ok >= 1, "queued requests must still be served: {statuses:?}");
    assert!(shed >= 1, "overflow must shed: {statuses:?}");
    let metrics = get(server.addr, "/metrics").body;
    assert_eq!(metric(&metrics, "swope_http_rejected_total"), shed as u64);
}

#[test]
fn requests_queued_past_their_deadline_get_503() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue_capacity: 4,
        deadline: Duration::from_millis(100),
        debug_sleep_endpoint: true,
        ..ServerConfig::default()
    });
    let busy = spawn_sleeper(server.addr, 600);
    std::thread::sleep(Duration::from_millis(150));

    // This request queues behind the parked worker and ages past 100 ms.
    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert!(reply.body.contains("deadline"));
    assert_eq!(busy.join().unwrap(), 200);
    let metrics = get(server.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_http_deadline_expired_total") >= 1);
}

#[test]
fn datasets_can_be_posted_listed_and_queried() {
    let server = TestServer::start(ServerConfig::default());
    let dir = std::env::temp_dir().join("swope-server-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("uploaded.swop");
    swope_columnar::snapshot::write_file(&tiny_dataset(), &path).unwrap();

    let body = format!("{{\"path\":{:?},\"name\":\"fresh\"}}", path.to_str().unwrap());
    let reply = post(server.addr, "/datasets", &body);
    assert_eq!(reply.status, 201, "{}", reply.body);
    let described = Json::parse(&reply.body).unwrap();
    assert_eq!(described.get("name").unwrap().as_str(), Some("fresh"));
    assert_eq!(described.get("rows").unwrap().as_u64(), Some(300));

    let listing = get(server.addr, "/datasets");
    let parsed = Json::parse(&listing.body).unwrap();
    let Json::Arr(datasets) = parsed.get("datasets").unwrap() else { panic!("not an array") };
    let names: Vec<_> =
        datasets.iter().map(|d| d.get("name").unwrap().as_str().unwrap().to_owned()).collect();
    assert_eq!(names, vec!["fresh", "tiny"]);

    let reply = get(server.addr, "/query/entropy-topk?dataset=fresh&k=1");
    assert_eq!(reply.status, 200, "{}", reply.body);

    // Re-posting under the same name bumps the generation, so the cache
    // key changes and the first query against it is a miss, not a stale hit.
    let gen_before = described.get("generation").unwrap().as_u64().unwrap();
    let reply = post(server.addr, "/datasets", &body);
    let gen_after = Json::parse(&reply.body).unwrap().get("generation").unwrap().as_u64().unwrap();
    assert!(gen_after > gen_before);
    let requery = get(server.addr, "/query/entropy-topk?dataset=fresh&k=1");
    assert_eq!(requery.header("x-swope-cache"), Some("miss"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn paged_datasets_serve_identically_and_report_residency() {
    // A multi-page dataset served two ways: decoded eagerly on the heap,
    // and out-of-core under a byte budget small enough to force eviction.
    let ds = swope_datagen::generate(&swope_datagen::corpus::tiny(100_000, 3), 0x5170);
    let dir = std::env::temp_dir().join("swope-server-pager-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("paged.swop");
    swope_columnar::snapshot::write_file(&ds, &path).unwrap();

    let heap = TestServer::start(ServerConfig::default());
    // Big enough for a few hot pages (a u8 page is 64 KiB), small enough
    // that the dataset's six pages cannot all stay resident — the full
    // column scan behind `/datasets` is then guaranteed to evict.
    let budget = 200_000u64;
    let paged = TestServer::start(ServerConfig {
        mmap: true,
        store_budget_bytes: Some(budget),
        ..ServerConfig::default()
    });
    let body = format!("{{\"path\":{:?},\"name\":\"pg\"}}", path.to_str().unwrap());
    assert_eq!(post(heap.addr, "/datasets", &body).status, 201);
    let reply = post(paged.addr, "/datasets", &body);
    assert_eq!(reply.status, 201, "{}", reply.body);
    let described = Json::parse(&reply.body).unwrap();
    assert_eq!(described.get("paged").unwrap().as_bool(), Some(true));

    // The pager changes where code bytes live, never what a query
    // answers: the served bodies must be bitwise-identical.
    // A loose epsilon keeps the sample (and so the page-fault count)
    // small; identity must hold regardless of sample size.
    let q = "/query/entropy-topk?dataset=pg&k=2&seed=7&epsilon=0.5";
    let a = get(heap.addr, q);
    let b = get(paged.addr, q);
    assert_eq!(a.status, 200, "{}", a.body);
    assert_eq!(a.body, b.body, "paged body must match the heap body byte for byte");

    // `bytes_in_memory` itemizes the true footprint: packed column bytes
    // (resident pages only, for a paged dataset), the sketch, and the
    // resident-page gauge. On the heap server the same object reports
    // the full eager footprint and no paging.
    let find = |addr: SocketAddr| -> Json {
        let listing = get(addr, "/datasets");
        let parsed = Json::parse(&listing.body).unwrap();
        let Json::Arr(datasets) = parsed.get("datasets").unwrap() else { panic!("not an array") };
        datasets
            .iter()
            .find(|d| d.get("name").unwrap().as_str() == Some("pg"))
            .expect("pg listed")
            .clone()
    };
    let h = find(heap.addr);
    assert_eq!(h.get("paged").unwrap().as_bool(), Some(false));
    let hb = h.get("bytes_in_memory").unwrap();
    let h_cols = hb.get("columns").unwrap().as_u64().unwrap();
    let h_sketch = hb.get("sketch").unwrap().as_u64().unwrap();
    assert_eq!(
        h_cols as usize,
        swope_columnar::stats::bytes_in_memory(&ds),
        "full eager footprint"
    );
    assert!(h_sketch > 0, "snapshot sketch bytes counted");
    assert_eq!(hb.get("resident_pages").unwrap().as_u64(), Some(0));
    assert_eq!(hb.get("total").unwrap().as_u64(), Some(h_cols + h_sketch));

    let p = find(paged.addr);
    assert_eq!(p.get("paged").unwrap().as_bool(), Some(true));
    let pb = p.get("bytes_in_memory").unwrap();
    let p_cols = pb.get("columns").unwrap().as_u64().unwrap();
    let p_resident = pb.get("resident_pages").unwrap().as_u64().unwrap();
    assert_eq!(p_cols, p_resident, "paged column footprint is its resident pages");
    assert!(p_resident <= budget, "resident {p_resident} exceeds budget {budget}");
    assert_eq!(
        pb.get("total").unwrap().as_u64().unwrap(),
        p_cols + pb.get("sketch").unwrap().as_u64().unwrap()
    );

    // The pager metric families: faults happened, the budget forced
    // evictions, and steady-state residency honours the budget.
    let metrics = get(paged.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_pager_faults_total") > 0);
    assert!(metric(&metrics, "swope_pager_evictions_total") > 0);
    assert!(metric(&metrics, "swope_pager_resident_bytes") <= budget);
    assert_eq!(metric(&metrics, "swope_pager_budget_bytes"), budget);
    std::fs::remove_file(&path).ok();
}

#[test]
fn error_paths_return_structured_json() {
    let server = TestServer::start(ServerConfig::default());
    let cases = [
        ("/no/such/endpoint", 404),
        ("/query/entropy-topk?dataset=missing&k=1", 404),
        ("/query/entropy-topk?dataset=tiny", 400),
        ("/query/entropy-topk?dataset=tiny&k=abc", 400),
        ("/query/unknown-shape?dataset=tiny", 400),
        ("/query/entropy-topk?dataset=tiny&k=999", 422),
        ("/query/mi-topk?dataset=tiny&target=notacolumn&k=1", 422),
    ];
    for (path, want) in cases {
        let reply = get(server.addr, path);
        assert_eq!(reply.status, want, "for {path}: {}", reply.body);
        assert!(Json::parse(&reply.body).unwrap().get("error").is_some(), "for {path}");
    }
    let reply = post(server.addr, "/healthz", "");
    assert_eq!(reply.status, 405);
    let reply = post(server.addr, "/datasets", "this is not json");
    assert_eq!(reply.status, 400);
    let reply = send_raw(server.addr, "NOT-HTTP\r\n\r\n");
    assert_eq!(reply.status, 400);
}

#[test]
fn shutdown_drains_queued_requests_before_returning() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        queue_capacity: 4,
        debug_sleep_endpoint: true,
        ..ServerConfig::default()
    });
    let busy = spawn_sleeper(server.addr, 500);
    std::thread::sleep(Duration::from_millis(100));
    let mut queued = TcpStream::connect(server.addr).unwrap();
    queued.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    queued.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Stop the server while the request is still queued behind the
    // parked worker: the drain must still answer it before run returns.
    let mut server = server;
    server.handle.shutdown();
    server.thread.take().unwrap().join().unwrap();
    assert_eq!(busy.join().unwrap(), 200);

    let mut raw = String::new();
    queued.read_to_string(&mut raw).unwrap();
    let reply = parse_reply(&raw);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"status\":\"ok\""));
}

#[test]
fn pooled_queries_report_exec_stats_and_serve_identical_bytes() {
    let server = TestServer::start(ServerConfig { exec_threads: 2, ..ServerConfig::default() });
    let metrics = get(server.addr, "/metrics").body;
    assert_eq!(metric(&metrics, "swope_exec_pool_workers"), 2);
    assert_eq!(metric(&metrics, "swope_exec_dispatches_total"), 0);

    // threads=1 (the default) runs inline on the HTTP worker and must
    // leave the pool counters untouched.
    let seq = get(server.addr, "/query/entropy-topk?dataset=tiny&k=2");
    assert_eq!(seq.status, 200, "{}", seq.body);
    let metrics = get(server.addr, "/metrics").body;
    assert_eq!(metric(&metrics, "swope_exec_dispatches_total"), 0);

    // threads=2 dispatches on the shared pool. The cache key includes
    // `threads`, so this reruns the loop — and the response body carries
    // no executor detail, so the bytes must match the inline run exactly.
    let pooled = get(server.addr, "/query/entropy-topk?dataset=tiny&k=2&threads=2");
    assert_eq!(pooled.status, 200, "{}", pooled.body);
    assert_eq!(pooled.header("x-swope-cache"), Some("miss"));
    assert_eq!(seq.body, pooled.body, "pooled run must serve bitwise-identical bytes");

    let metrics = get(server.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_exec_dispatches_total") > 0);
    assert!(metric(&metrics, "swope_exec_chunks_total") > 0);
    assert!(metric(&metrics, "swope_exec_items_total") > 0);
}

#[test]
fn datasets_report_column_widths_and_store_metrics() {
    let server = TestServer::start(ServerConfig::default());
    let listing = get(server.addr, "/datasets");
    let parsed = Json::parse(&listing.body).unwrap();
    let Json::Arr(datasets) = parsed.get("datasets").unwrap() else { panic!("not an array") };
    let rows = datasets[0].get("rows").unwrap().as_u64().unwrap();
    let Json::Arr(cols) = datasets[0].get("column_stats").unwrap() else { panic!("not an array") };
    for c in cols {
        let width = c.get("code_width").unwrap().as_u64().unwrap();
        let bytes = c.get("bytes_in_memory").unwrap().as_u64().unwrap();
        assert!(matches!(width, 8 | 16 | 32), "width {width}");
        assert_eq!(bytes, rows * width / 8, "bytes must be rows × width");
    }

    let metrics = get(server.addr, "/metrics").body;
    let in_memory = metric(&metrics, "swope_store_bytes_in_memory");
    let saved = metric(&metrics, "swope_store_bytes_saved");
    assert!(in_memory > 0);
    // in_memory + saved reconstructs the all-u32 footprint exactly.
    assert_eq!(in_memory + saved, rows * 4 * cols.len() as u64);
    assert!(metrics.contains("swope_store_columns{width=\"u8\"}"));
}

#[test]
fn traced_request_round_trips_span_tree_through_debug_endpoints() {
    let server = TestServer::start(ServerConfig { slow_ms: 0, ..ServerConfig::default() });
    let reply = send_raw(
        server.addr,
        "GET /query/entropy-topk?dataset=tiny&k=2 HTTP/1.1\r\nHost: test\r\n\
         Connection: close\r\nX-Swope-Trace: deadbeef1234\r\n\r\n",
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("x-swope-trace"), Some("0000deadbeef1234"), "canonical echo");
    assert_eq!(reply.header("x-swope-cache"), Some("miss"));

    let traces = get(server.addr, "/debug/traces");
    assert_eq!(traces.status, 200);
    let v = Json::parse(&traces.body).unwrap();
    assert_eq!(v.get("recorded_total").unwrap().as_u64(), Some(1));
    let Json::Arr(list) = v.get("traces").unwrap() else { panic!("traces not an array") };
    let t = &list[0];
    assert_eq!(t.get("trace_id").unwrap().as_str(), Some("0000deadbeef1234"));
    assert_eq!(t.get("endpoint").unwrap().as_str(), Some("query_entropy_top_k"));
    assert_eq!(t.get("dataset").unwrap().as_str(), Some("tiny"));
    assert_eq!(t.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(t.get("status").unwrap().as_u64(), Some(200));
    let wall = t.get("wall_ns").unwrap().as_u64().unwrap();

    let Json::Arr(spans) = t.get("spans").unwrap() else { panic!("spans not an array") };
    let span = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("missing span {name:?} in {spans:?}"))
    };
    let root = span("request");
    assert!(root.get("parent").unwrap().as_u64().is_none(), "request must be the root");
    span("queue_wait");
    span("cache_lookup");
    let query = span("query:entropy_top_k");
    let query_id = query.get("id").unwrap().as_u64().unwrap();
    let query_ns = query.get("end_ns").unwrap().as_u64().unwrap()
        - query.get("start_ns").unwrap().as_u64().unwrap();
    assert!(query_ns <= wall, "query span exceeds request wall time");
    // The adaptive loop's phases parent onto the query span, run
    // sequentially, and their nanos sum within the query's wall time.
    let mut phase_total = 0u64;
    for phase in ["sample_grow", "ingest", "update_bounds", "decide"] {
        let s = span(phase);
        assert_eq!(s.get("parent").unwrap().as_u64(), Some(query_id), "{phase} parent");
        phase_total += s.get("end_ns").unwrap().as_u64().unwrap()
            - s.get("start_ns").unwrap().as_u64().unwrap();
    }
    assert!(phase_total > 0, "phases recorded no time");
    assert!(phase_total <= query_ns, "phase nanos {phase_total} exceed query wall {query_ns}");

    // slow_ms = 0 classifies every traced request as slow.
    let slow = get(server.addr, "/debug/slow");
    assert!(slow.body.contains("0000deadbeef1234"), "{}", slow.body);
    let metrics = get(server.addr, "/metrics").body;
    assert_eq!(metric(&metrics, "swope_traces_recorded_total"), 1);
    assert_eq!(metric(&metrics, "swope_slow_queries_total"), 1);

    // An untraced request records nothing new.
    get(server.addr, "/query/entropy-topk?dataset=tiny&k=1");
    let v = Json::parse(&get(server.addr, "/debug/traces").body).unwrap();
    assert_eq!(v.get("recorded_total").unwrap().as_u64(), Some(1));
}

#[test]
fn trace_mode_traces_every_query_and_labels_endpoint_latency() {
    let server = TestServer::start(ServerConfig { trace: true, ..ServerConfig::default() });
    let reply = get(server.addr, "/query/mi-profile?dataset=tiny&target=0");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let id = reply.header("x-swope-trace").expect("trace id assigned without a header");
    assert_eq!(id.len(), 16, "canonical id: {id}");
    let traces = get(server.addr, "/debug/traces").body;
    assert!(traces.contains("query:mi_profile"), "{traces}");
    // Tracing enables store gather timing, so the aggregate span appears.
    assert!(traces.contains("\"name\":\"store_gather\""), "{traces}");
    let metrics = get(server.addr, "/metrics").body;
    assert!(metrics.contains(
        "swope_http_endpoint_duration_microseconds_count\
         {endpoint=\"query_mi_profile\",dataset=\"tiny\"}"
    ));
    assert!(metrics.contains("swope_http_request_duration_microseconds_approx_quantile"));
}

#[test]
fn healthz_reports_gauges() {
    let server = TestServer::start(ServerConfig::default());
    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 200);
    let v = Json::parse(&reply.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("datasets").unwrap().as_u64(), Some(1));
}

/// Keep-alive: one socket serves many requests, each byte-identical to
/// what a fresh `Connection: close` exchange serves, and the reuse
/// counter records the second-and-later requests.
#[test]
fn keep_alive_reuses_one_socket_with_identical_bytes() {
    let server = TestServer::start(ServerConfig::default());
    let paths = [
        "/query/entropy-topk?dataset=tiny&k=2",
        "/healthz",
        "/query/mi-topk?dataset=tiny&target=0&k=1",
        "/datasets",
    ];
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut kept: Vec<HttpReply> = Vec::new();
    for path in paths {
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes()).unwrap();
        let reply = read_one_response(&mut stream);
        assert_eq!(reply.header("connection"), Some("keep-alive"), "{path}");
        kept.push(reply);
    }
    drop(stream);
    for (path, reply) in paths.iter().zip(&kept) {
        let fresh = get(server.addr, path);
        assert_eq!(reply.status, fresh.status, "{path}");
        // Query responses embed no connection state, so cache hit vs miss
        // is the only allowed header difference — bodies must be equal
        // except the healthz queue gauge, which is time-dependent; compare
        // the deterministic ones byte-for-byte.
        if !path.contains("healthz") {
            assert_eq!(reply.body, fresh.body, "{path} served different bytes under keep-alive");
        }
    }
    let metrics = get(server.addr, "/metrics").body;
    assert!(
        metric(&metrics, "swope_conn_keepalive_reuses_total") >= 3,
        "requests 2..4 on the socket are reuses"
    );
    assert!(metric(&metrics, "swope_conn_accepted_total") >= 5);
}

/// Pipelining: several requests written back-to-back in one burst are
/// answered in order on the same socket.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = TestServer::start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let burst = "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n\
                 GET /datasets HTTP/1.1\r\nHost: test\r\n\r\n\
                 GET /query/entropy-topk?dataset=tiny&k=1 HTTP/1.1\r\nHost: test\r\n\
                 Connection: close\r\n\r\n";
    stream.write_all(burst.as_bytes()).unwrap();
    let first = read_one_response(&mut stream);
    let second = read_one_response(&mut stream);
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    let third = parse_reply(&rest);
    assert!(first.body.contains("\"status\":\"ok\""), "healthz first: {}", first.body);
    assert!(second.body.contains("\"datasets\""), "datasets second: {}", second.body);
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"scores\""), "query third: {}", third.body);
    assert_eq!(third.header("connection"), Some("close"));
    // The pipelined query serves the same bytes as a fresh connection.
    let fresh = get(server.addr, "/query/entropy-topk?dataset=tiny&k=1");
    assert_eq!(third.body, fresh.body);
}

/// `Connection: close` and HTTP/1.0 both end the connection after one
/// response; HTTP/1.0 with `Connection: keep-alive` keeps it open.
#[test]
fn connection_close_and_http10_semantics_are_honored() {
    let server = TestServer::start(ServerConfig::default());
    // Explicit close: read_to_string returning proves the server closed.
    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.header("connection"), Some("close"));
    // HTTP/1.0 defaults to close.
    let reply = send_raw(server.addr, "GET /healthz HTTP/1.0\r\nHost: test\r\n\r\n");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    // HTTP/1.0 + keep-alive stays open for a second exchange.
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: test\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let first = read_one_response(&mut stream);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert_eq!(parse_reply(&rest).status, 200);
}

/// A slow-loris client holding a partial request is answered 408 and
/// cleanly closed once the read timeout expires — it cannot hold a
/// connection slot forever.
#[test]
fn slow_loris_partial_request_gets_408_and_a_clean_close() {
    let server = TestServer::start(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(b"GET /healthz HT").unwrap(); // never finishes the line
    let start = Instant::now();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap(); // EOF = server closed us
    assert!(start.elapsed() < Duration::from_secs(5), "timeout did not fire");
    let reply = parse_reply(&raw);
    assert_eq!(reply.status, 408, "{raw}");
    let metrics = get(server.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_conn_timeouts_total") >= 1);
}

/// Idle connections cost a file descriptor, not a worker: with ONE
/// worker thread, hundreds of parked keep-alive connections leave the
/// server fully responsive, and the census gauges see them.
#[test]
fn idle_connections_consume_no_worker_threads() {
    let server = TestServer::start(ServerConfig {
        threads: 1,
        max_conns: 3000,
        keep_alive: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    // Park a crowd of idle connections (scaled well under typical fd
    // rlimits; the event loop holds one fd per connection and nothing
    // else). Some opens may be refused under a tight accept backlog —
    // retry a few times and require a large crowd, not perfection.
    let mut idle = Vec::new();
    for _ in 0..1000 {
        match TcpStream::connect(server.addr) {
            Ok(s) => idle.push(s),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(idle.len() >= 900, "only {} idle connections opened", idle.len());
    // Give the event loop a tick to accept the tail of the crowd.
    std::thread::sleep(Duration::from_millis(100));

    // The single worker is still instantly available.
    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let metrics = get(server.addr, "/metrics").body;
    assert!(
        metric(&metrics, "swope_conn_open") >= idle.len() as u64,
        "census missed the idle crowd:\n{metrics}"
    );
    // A query still runs fine with the crowd parked.
    let reply = get(server.addr, "/query/entropy-topk?dataset=tiny&k=1");
    assert_eq!(reply.status, 200, "{}", reply.body);
    drop(idle);
}

/// Connections past `max_conns` are answered 503 immediately.
#[test]
fn connections_past_the_cap_get_503() {
    let server = TestServer::start(ServerConfig {
        max_conns: 4,
        keep_alive: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    let idle: Vec<_> = (0..4).map(|_| TcpStream::connect(server.addr).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(100)); // let them be accepted
    let mut over = TcpStream::connect(server.addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = String::new();
    over.read_to_string(&mut raw).unwrap();
    let reply = parse_reply(&raw);
    assert_eq!(reply.status, 503, "{raw}");
    assert!(reply.body.contains("connection limit"));
    drop(idle);
}

/// Per-tenant token buckets: a tenant that exhausts its burst gets 429 +
/// Retry-After on the SAME keep-alive connection (throttling does not
/// close it), while another tenant and the anonymous bucket sail
/// through.
#[test]
fn tenant_quotas_throttle_with_429_and_retry_after() {
    let server = TestServer::start(ServerConfig {
        tenant_rps: Some(0.5),
        tenant_burst: Some(2.0),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Swope-Api-Key: alice\r\n\r\n";
    let mut statuses = Vec::new();
    for _ in 0..4 {
        stream.write_all(req.as_bytes()).unwrap();
        let reply = read_one_response(&mut stream);
        statuses.push(reply.status);
        if reply.status == 429 {
            assert!(reply.header("retry-after").is_some(), "429 without Retry-After");
            assert_eq!(
                reply.header("connection"),
                Some("keep-alive"),
                "throttling must not close the connection"
            );
        }
    }
    assert_eq!(&statuses[..2], &[200, 200], "burst admits first: {statuses:?}");
    assert!(statuses[2..].contains(&429), "burst exhausted must throttle: {statuses:?}");
    // Other tenants are unaffected by alice's empty bucket.
    let reply = send_raw(
        server.addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Swope-Api-Key: bob\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(reply.status, 200);
    let reply = get(server.addr, "/healthz"); // anonymous bucket
    assert_eq!(reply.status, 200);
    let metrics = get(server.addr, "/metrics").body;
    assert!(metrics.contains("swope_tenant_throttled_total{tenant=\"alice\"}"), "{metrics}");
    assert!(metrics.contains("swope_tenant_requests_total{tenant=\"bob\"}"), "{metrics}");
}

/// The connection gauges and counters render and add up.
#[test]
fn connection_metrics_census_renders() {
    let server = TestServer::start(ServerConfig {
        keep_alive: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    let idle: Vec<_> = (0..3).map(|_| TcpStream::connect(server.addr).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(150)); // accepted + census tick
    let metrics = get(server.addr, "/metrics").body;
    assert!(metric(&metrics, "swope_conn_open") >= 3);
    assert!(metric(&metrics, "swope_conn_accepted_total") >= 4);
    assert!(metrics.contains("swope_conn_idle"), "{metrics}");
    assert!(metrics.contains("swope_conn_reading"), "{metrics}");
    assert!(metrics.contains("swope_conn_writing"), "{metrics}");
    drop(idle);
}
