//! SIGINT/SIGTERM → atomic-flag shutdown signalling, with no
//! dependencies beyond the libc the process is already linked against.
//!
//! The handler does the only thing that is async-signal-safe here: store
//! into a static `AtomicBool`. The event loop polls [`signalled`] each
//! wakeup, so a signal turns into a graceful drain within one poll
//! interval: stop accepting, finish requests already parsed or in
//! flight (their responses are sent with `Connection: close`), close
//! idle keep-alive connections, then exit once the slab is empty.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Installs the SIGINT (ctrl-c) and SIGTERM handlers. Idempotent; on
/// non-Unix targets this is a no-op and only [`request_shutdown`] can
/// trip the flag.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Whether a shutdown signal has been received (or requested in-process).
pub fn signalled() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Trips the shutdown flag from ordinary code — used by tests and by any
/// embedder that wants the same drain path a signal takes.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}
