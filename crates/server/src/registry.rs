//! Dataset registry: named, immutable, shareable datasets.
//!
//! The whole point of the server is amortization — load a dataset once,
//! answer many cheap adaptive queries against it. The registry holds
//! each dataset behind an `Arc` so worker threads answer queries against
//! a consistent snapshot even while an operator replaces the dataset
//! under the same name; replacement bumps a monotonically increasing
//! *generation* that the result cache folds into its keys, so stale
//! cached answers can never be served for a reloaded dataset.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use swope_columnar::{stats, Dataset, DatasetSketch, Width};

/// One registered dataset plus its identity metadata.
pub struct DatasetEntry {
    /// Registry name (the `dataset` query parameter).
    pub name: String,
    /// Monotonic insert counter; a replaced dataset gets a new generation.
    pub generation: u64,
    /// The dataset itself (already support-capped at load).
    pub dataset: Arc<Dataset>,
    /// Per-page partition sketch for scoped queries: read from the
    /// snapshot when the file carries one (and no columns were capped
    /// away), otherwise built at insert time so every registered dataset
    /// can serve scoped queries.
    pub sketch: Arc<DatasetSketch>,
    /// Columns dropped at load because their support exceeded the cap.
    pub dropped_columns: usize,
}

/// A concurrent name → dataset map.
pub struct DatasetRegistry {
    inner: RwLock<HashMap<String, Arc<DatasetEntry>>>,
    next_generation: AtomicU64,
    max_support: u32,
}

impl DatasetRegistry {
    /// An empty registry. Datasets are capped to `max_support` at load,
    /// mirroring the CLI's `--max-support` behaviour so the server path
    /// and the CLI path answer queries over identical data.
    pub fn new(max_support: u32) -> Self {
        Self { inner: RwLock::new(HashMap::new()), next_generation: AtomicU64::new(1), max_support }
    }

    /// Registers `dataset` under `name`, replacing any previous holder of
    /// the name. Returns the new entry.
    pub fn insert(&self, name: &str, dataset: Dataset) -> Arc<DatasetEntry> {
        self.insert_with_sketch(name, dataset, None)
    }

    /// [`DatasetRegistry::insert`] reusing a sketch read from a snapshot
    /// file. The file sketch is kept only when support capping dropped no
    /// columns (its column indices would be wrong otherwise); in every
    /// other case the sketch is rebuilt from the capped dataset.
    pub fn insert_with_sketch(
        &self,
        name: &str,
        dataset: Dataset,
        file_sketch: Option<DatasetSketch>,
    ) -> Arc<DatasetEntry> {
        let before = dataset.num_attrs();
        let (capped, kept) = dataset.cap_support(self.max_support);
        let sketch = match file_sketch {
            Some(sk) if kept.len() == before => sk,
            // Rebuild through the snapshot module's paged-aware path: a
            // capped out-of-core dataset sketches one faulted page at a
            // time instead of materializing whole columns.
            _ => swope_columnar::snapshot::build_sketch(&capped),
        };
        let entry = Arc::new(DatasetEntry {
            name: name.to_owned(),
            generation: self.next_generation.fetch_add(1, Ordering::Relaxed),
            dataset: Arc::new(capped),
            sketch: Arc::new(sketch),
            dropped_columns: before - kept.len(),
        });
        let mut map = self.inner.write().expect("registry lock poisoned");
        map.insert(name.to_owned(), Arc::clone(&entry));
        entry
    }

    /// Loads the `.swop`/`.csv` file at `path` and registers it under its
    /// file stem (`data/cdc.swop` → `cdc`). Snapshot sketches are reused
    /// when present; otherwise one is built at load.
    pub fn load_path(&self, path: &str) -> Result<Arc<DatasetEntry>, String> {
        let (dataset, sketch) =
            Dataset::from_path_with_sketch(path).map_err(|e| format!("loading {path}: {e}"))?;
        self.insert_loaded(path, dataset, sketch)
    }

    /// [`DatasetRegistry::load_path`], but `.swop` snapshots open
    /// *out-of-core*: columns stay in the mapped file and fault
    /// page-by-page through `cache` (CSV files still load eagerly).
    pub fn load_path_paged(
        &self,
        path: &str,
        cache: &Arc<swope_columnar::PageCache>,
    ) -> Result<Arc<DatasetEntry>, String> {
        let (dataset, sketch) = Dataset::from_path_paged(path, Arc::clone(cache))
            .map_err(|e| format!("loading {path}: {e}"))?;
        self.insert_loaded(path, dataset, sketch)
    }

    fn insert_loaded(
        &self,
        path: &str,
        dataset: Dataset,
        sketch: Option<DatasetSketch>,
    ) -> Result<Arc<DatasetEntry>, String> {
        let name = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("cannot derive a dataset name from {path:?}"))?
            .to_owned();
        Ok(self.insert_with_sketch(&name, dataset, sketch))
    }

    /// The current entry registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.inner.read().expect("registry lock poisoned").get(name).cloned()
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<Arc<DatasetEntry>> {
        let map = self.inner.read().expect("registry lock poisoned");
        let mut entries: Vec<_> = map.values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregates the storage layer's footprint over all registered
    /// datasets, for the `swope_store_*` metric families.
    pub fn store_stats(&self) -> StoreStats {
        let mut agg = StoreStats::default();
        for entry in self.list() {
            let ds = &entry.dataset;
            agg.bytes_in_memory += stats::bytes_in_memory(ds) as u64;
            agg.bytes_unpacked += stats::bytes_unpacked(ds) as u64;
            for attr in 0..ds.num_attrs() {
                match ds.column(attr).width() {
                    Width::U8 => agg.columns_u8 += 1,
                    Width::U16 => agg.columns_u16 += 1,
                    Width::U32 => agg.columns_u32 += 1,
                }
            }
        }
        agg
    }

    /// Aggregates partition-sketch footprint over all registered
    /// datasets, for the `swope_sketch_*` metric families.
    pub fn sketch_stats(&self) -> SketchStats {
        let mut agg = SketchStats::default();
        for entry in self.list() {
            agg.bytes += entry.sketch.encoded_len() as u64;
            agg.pages += entry.sketch.num_pages() as u64;
            agg.rows_covered += entry.covered_rows();
            agg.rows_total += entry.dataset.num_rows() as u64;
        }
        agg
    }
}

/// Registry-wide partition-sketch footprint
/// (see [`DatasetRegistry::sketch_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Bytes the registered sketches occupy when encoded.
    pub bytes: u64,
    /// Total sketch pages across registered datasets.
    pub pages: u64,
    /// Rows inside fully-covered pages (a range scope aligned to these
    /// pages is answered entirely from sketch histograms).
    pub rows_covered: u64,
    /// Total rows across registered datasets.
    pub rows_total: u64,
}

impl SketchStats {
    /// Fraction of registered rows inside fully-covered sketch pages.
    pub fn coverage(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.rows_covered as f64 / self.rows_total as f64
        }
    }
}

/// Registry-wide storage-layer footprint (see [`DatasetRegistry::store_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes of width-packed code storage resident in memory.
    pub bytes_in_memory: u64,
    /// Bytes the same codes would occupy unpacked at 4 bytes each.
    pub bytes_unpacked: u64,
    /// Registered columns packed at `u8`.
    pub columns_u8: u64,
    /// Registered columns packed at `u16`.
    pub columns_u16: u64,
    /// Registered columns packed at `u32`.
    pub columns_u32: u64,
}

impl StoreStats {
    /// Bytes saved by width packing versus all-`u32` storage.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_unpacked.saturating_sub(self.bytes_in_memory)
    }
}

impl DatasetEntry {
    /// Rows inside fully-covered sketch pages (the final partial page,
    /// if any, cannot seed scoped queries exactly).
    pub fn covered_rows(&self) -> u64 {
        let n = self.dataset.num_rows();
        (n - n % swope_columnar::PAGE_ROWS) as u64
    }

    /// Whether any column is pager-backed (loaded out-of-core).
    pub fn is_paged(&self) -> bool {
        (0..self.dataset.num_attrs()).any(|a| self.dataset.column(a).is_paged())
    }

    /// Bytes of pager-backed pages currently resident (hot + compressed
    /// tiers) across this dataset's columns; 0 for a heap-loaded dataset.
    pub fn resident_page_bytes(&self) -> u64 {
        (0..self.dataset.num_attrs())
            .filter_map(|a| self.dataset.column(a).paged())
            .map(|p| p.resident_bytes())
            .sum()
    }

    /// Serializes this entry (shape + per-column stats) as a JSON object.
    pub fn describe_json(&self) -> String {
        use std::fmt::Write as _;
        use swope_obs::json::{escape_into, f64_into};

        let summary = stats::summarize(&self.dataset);
        let mut out = String::from("{");
        out.push_str("\"name\":");
        escape_into(&mut out, &self.name);
        let _ = write!(
            out,
            ",\"generation\":{},\"rows\":{},\"columns\":{},\"max_support\":{},\
             \"dropped_columns\":{}",
            self.generation,
            summary.rows,
            summary.columns,
            summary.max_support,
            self.dropped_columns
        );
        let rows = self.dataset.num_rows() as u64;
        let coverage = if rows == 0 { 0.0 } else { self.covered_rows() as f64 / rows as f64 };
        let _ = write!(
            out,
            ",\"sketch\":{{\"pages\":{},\"bytes\":{},\"coverage\":",
            self.sketch.num_pages(),
            self.sketch.encoded_len()
        );
        f64_into(&mut out, coverage);
        // In-memory footprint: heap columns report their full packed
        // size, paged columns only their currently-resident page bytes
        // (also broken out under `resident_pages`), and the sketch's
        // encoded size is always counted — `total` is what this dataset
        // actually holds in memory right now.
        let column_bytes = stats::bytes_in_memory(&self.dataset) as u64;
        let sketch_bytes = self.sketch.encoded_len() as u64;
        let _ = write!(
            out,
            "}},\"paged\":{},\"bytes_in_memory\":{{\"columns\":{},\"sketch\":{},\
             \"resident_pages\":{},\"total\":{}}}",
            self.is_paged(),
            column_bytes,
            sketch_bytes,
            self.resident_page_bytes(),
            column_bytes + sketch_bytes
        );
        out.push_str(",\"column_stats\":[");
        for (i, s) in stats::dataset_stats(&self.dataset).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"attr\":");
            let _ = write!(out, "{}", s.attr);
            out.push_str(",\"name\":");
            escape_into(&mut out, &s.name);
            let _ = write!(
                out,
                ",\"support\":{},\"observed_distinct\":{},\"code_width\":{},\
                 \"bytes_in_memory\":{},\"mode_fraction\":",
                s.support, s.observed_distinct, s.code_width, s.bytes_in_memory
            );
            f64_into(&mut out, s.mode_fraction);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::DatasetBuilder;
    use swope_obs::json::Json;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(vec!["color".into(), "size".into()]);
        for row in [["red", "s"], ["blue", "m"], ["red", "l"]] {
            b.push_row(&row).unwrap();
        }
        b.finish()
    }

    #[test]
    fn insert_get_and_generations() {
        let reg = DatasetRegistry::new(1000);
        assert!(reg.is_empty());
        let first = reg.insert("t", sample());
        let second = reg.insert("t", sample());
        assert!(second.generation > first.generation);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("t").unwrap().generation, second.generation);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn support_cap_applies_at_insert() {
        let reg = DatasetRegistry::new(2);
        let entry = reg.insert("t", sample()); // "color" has support 3
        assert_eq!(entry.dataset.num_attrs(), 1);
        assert_eq!(entry.dropped_columns, 1);
    }

    #[test]
    fn load_path_uses_file_stem() {
        let dir = std::env::temp_dir().join("swope-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("colors.swop");
        swope_columnar::snapshot::write_file(&sample(), &path).unwrap();
        let reg = DatasetRegistry::new(1000);
        let entry = reg.load_path(path.to_str().unwrap()).unwrap();
        assert_eq!(entry.name, "colors");
        assert_eq!(entry.dataset.num_rows(), 3);
        assert!(reg.load_path("/no/such/file.swop").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn describe_json_parses_and_lists_columns() {
        let reg = DatasetRegistry::new(1000);
        let entry = reg.insert("t", sample());
        let v = Json::parse(&entry.describe_json()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("rows").unwrap().as_u64(), Some(3));
        match v.get("column_stats").unwrap() {
            Json::Arr(cols) => {
                assert_eq!(cols.len(), 2);
                assert_eq!(cols[0].get("name").unwrap().as_str(), Some("color"));
                // Support 3 packs at u8: one byte per row.
                assert_eq!(cols[0].get("code_width").unwrap().as_u64(), Some(8));
                assert_eq!(cols[0].get("bytes_in_memory").unwrap().as_u64(), Some(3));
            }
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn list_is_sorted_by_name() {
        let reg = DatasetRegistry::new(1000);
        reg.insert("zeta", sample());
        reg.insert("alpha", sample());
        let names: Vec<_> = reg.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
