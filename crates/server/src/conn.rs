//! Per-connection state for the event loop.
//!
//! Each accepted socket becomes a [`Conn`]: a nonblocking `TcpStream`
//! plus an accumulation buffer, an outgoing write queue, and a state tag
//! the event loop drives — `Reading` (accumulating request bytes),
//! `Dispatched` (a worker owns the request; the loop ignores readiness
//! until the completion arrives), `Writing` (flushing the serialized
//! response), and `Idle` (keep-alive, waiting for the next request).
//! Pipelined requests live in the same buffer: after a response flushes,
//! the leftover bytes are parsed immediately rather than waiting for the
//! socket to become readable again.
//!
//! All methods here are nonblocking and syscall-thin; policy (quotas,
//! shedding, dispatch) lives in `server.rs`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{self, HttpError, ParseStatus, Request, Response};

/// What the event loop is waiting on for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accumulating bytes of the next request.
    Reading,
    /// A worker owns the current request; no socket interest.
    Dispatched,
    /// Flushing the serialized response.
    Writing,
    /// Keep-alive: response flushed, no request bytes pending.
    Idle,
}

/// Outcome of asking a connection for its next parseable request.
pub enum Parsed {
    /// Not enough bytes yet — keep reading.
    Incomplete,
    /// A complete request; `keep_alive` is the client's framing wish.
    Request {
        /// The parsed request (boxed: `Conn` lives in a slab).
        request: Box<Request>,
        /// Whether the connection should outlive the response.
        keep_alive: bool,
    },
    /// The buffered bytes are an SWPC cluster-peer handshake, not HTTP.
    Cluster,
    /// The bytes are unusable as HTTP; answer with this and close.
    Reject(Box<Response>),
}

/// Result of pumping bytes between the socket and the buffers.
#[derive(Debug, PartialEq, Eq)]
pub enum Pump {
    /// Made progress (or no progress was possible without blocking).
    Progress,
    /// The peer closed (EOF or connection reset); drop the connection.
    Closed,
}

/// One live client connection owned by the event loop.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Current state tag.
    pub state: ConnState,
    /// Monotonic id assigned at accept (slab tokens are reused; ids are
    /// not) — surfaced in the access log as `conn=`.
    pub id: u64,
    /// Requests completed or in flight on this connection; the 1-based
    /// ordinal of the current request, surfaced as `req=`.
    pub requests: u64,
    /// Bumped on every dispatch; a worker completion carrying a stale
    /// generation (the conn was closed and the slab slot reused) is
    /// discarded instead of answering the wrong client.
    pub generation: u64,
    /// Close after the current response flushes (`Connection: close`,
    /// HTTP/1.0, inline errors, or server drain).
    pub close_after_write: bool,
    /// Last socket activity — drives idle/read timeouts.
    pub last_activity: Instant,
    /// When the first byte of the current request arrived; anchors the
    /// trace clock so `queue_wait` spans keep their meaning.
    pub read_started: Option<Instant>,
    /// The readiness interest currently registered with the poller, so
    /// the event loop can skip no-op `modify` syscalls — pipelined
    /// requests would otherwise pay a READ→NONE→READ `epoll_ctl` pair
    /// each.
    pub interest: crate::event::Interest,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking stream.
    pub fn new(stream: TcpStream, id: u64, now: Instant) -> Self {
        Self {
            stream,
            state: ConnState::Reading,
            id,
            requests: 0,
            generation: 0,
            close_after_write: false,
            last_activity: now,
            read_started: None,
            interest: crate::event::Interest::READ,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
        }
    }

    /// Reads as much as the socket will give without blocking,
    /// appending to the accumulation buffer. `Closed` means EOF/reset.
    pub fn fill(&mut self, now: Instant) -> io::Result<Pump> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Pump::Closed),
                Ok(n) => {
                    if self.read_started.is_none() {
                        self.read_started = Some(now);
                    }
                    self.last_activity = now;
                    self.buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return Ok(Pump::Progress);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Pump::Progress),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::BrokenPipe
                    ) =>
                {
                    return Ok(Pump::Closed)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether any request bytes are waiting in the buffer.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to parse the next request out of the accumulated bytes.
    ///
    /// The first call on a fresh connection sniffs for the SWPC cluster
    /// magic — peer sessions share the HTTP port — and reports
    /// [`Parsed::Cluster`] without consuming anything, so the peer
    /// handler sees a pristine byte stream (buffered prefix included,
    /// via [`Conn::take_buffered`]).
    pub fn take_request(&mut self, max_body: usize) -> Parsed {
        if self.requests == 0 && !self.buf.is_empty() {
            let magic = swope_cluster::MAGIC;
            let n = self.buf.len().min(magic.len());
            if self.buf[..n] == magic[..n] {
                if n < magic.len() {
                    return Parsed::Incomplete; // could still be either
                }
                return Parsed::Cluster;
            }
        }
        match http::parse_request(&self.buf, max_body) {
            Ok(ParseStatus::Incomplete) => Parsed::Incomplete,
            Ok(ParseStatus::Complete { request, consumed, keep_alive }) => {
                self.buf.drain(..consumed);
                self.requests += 1;
                Parsed::Request { request: Box::new(request), keep_alive }
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => Parsed::Reject(Box::new(
                Response::error(413, &format!("body of {declared} bytes exceeds limit of {limit}")),
            )),
            Err(e) => Parsed::Reject(Box::new(Response::error(400, &e.to_string()))),
        }
    }

    /// Hands over the buffered bytes (used when a connection turns out
    /// to be an SWPC peer session: the dedicated peer thread must see
    /// the bytes the event loop already consumed from the socket).
    pub fn take_buffered(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Queues a serialized response for writing.
    pub fn queue_response(&mut self, resp: &Response, keep_alive: bool) {
        debug_assert!(self.out_pos == self.out.len(), "previous response still in flight");
        self.out = resp.serialize(keep_alive);
        self.out_pos = 0;
        if !keep_alive {
            self.close_after_write = true;
        }
        self.state = ConnState::Writing;
    }

    /// Appends a serialized response behind whatever is already queued.
    /// A batch of pipelined requests answers with one output buffer —
    /// and one socket write — instead of a write per response.
    pub fn append_response(&mut self, resp: &Response, keep_alive: bool) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(&resp.serialize(keep_alive));
        if !keep_alive {
            self.close_after_write = true;
        }
        self.state = ConnState::Writing;
    }

    /// Writes as much of the queued response as the socket accepts.
    /// Returns `true` when the whole response has been flushed.
    pub fn flush_out(&mut self, now: Instant) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"))
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out = Vec::new();
        self.out_pos = 0;
        Ok(true)
    }

    /// Whether a queued response still has unflushed bytes.
    pub fn write_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Marks the response cycle done: back to `Idle` (or `Reading` when
    /// pipelined bytes are already buffered) and resets the per-request
    /// arrival clock.
    pub fn response_done(&mut self) {
        self.read_started = None;
        self.state = if self.buf.is_empty() { ConnState::Idle } else { ConnState::Reading };
    }

    /// Shuts down the write half and drains pending inbound bytes so the
    /// kernel sends FIN rather than RST (an RST can destroy the response
    /// sitting in the client's receive buffer).
    pub fn close_gracefully(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 4096];
        // Nonblocking socket: drain whatever is already queued, then stop.
        while let Ok(n) = self.stream.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, Conn::new(server, 1, Instant::now()))
    }

    #[test]
    fn fill_and_parse_round_trip() {
        let (mut client, mut conn) = pair();
        assert!(matches!(conn.take_request(1024), Parsed::Incomplete));
        client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(conn.fill(Instant::now()).unwrap(), Pump::Progress);
        assert!(conn.read_started.is_some());
        match conn.take_request(1024) {
            Parsed::Request { request, keep_alive } => {
                assert_eq!(request.path, "/healthz");
                assert!(keep_alive);
            }
            _ => panic!("expected a parsed request"),
        }
        assert_eq!(conn.requests, 1);
        assert!(!conn.has_buffered());
    }

    #[test]
    fn pipelined_bytes_stay_buffered_between_requests() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill(Instant::now()).unwrap();
        let Parsed::Request { request, keep_alive } = conn.take_request(1024) else {
            panic!("first request should parse");
        };
        assert_eq!(request.path, "/a");
        assert!(keep_alive);
        assert!(conn.has_buffered(), "second request must remain buffered");
        let Parsed::Request { request, keep_alive } = conn.take_request(1024) else {
            panic!("second request should parse");
        };
        assert_eq!(request.path, "/b");
        assert!(!keep_alive);
        assert_eq!(conn.requests, 2);
    }

    #[test]
    fn cluster_magic_is_sniffed_without_consuming() {
        let (mut client, mut conn) = pair();
        // One byte of the magic: ambiguous, must wait.
        client.write_all(&swope_cluster::MAGIC[..1]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill(Instant::now()).unwrap();
        assert!(matches!(conn.take_request(1024), Parsed::Incomplete));
        client.write_all(&swope_cluster::MAGIC[1..]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill(Instant::now()).unwrap();
        assert!(matches!(conn.take_request(1024), Parsed::Cluster));
        assert_eq!(conn.take_buffered(), swope_cluster::MAGIC.to_vec());
    }

    #[test]
    fn malformed_bytes_become_a_400_reject() {
        let (mut client, mut conn) = pair();
        client.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill(Instant::now()).unwrap();
        match conn.take_request(1024) {
            Parsed::Reject(resp) => assert_eq!(resp.status, 400),
            _ => panic!("expected a reject"),
        }
    }

    #[test]
    fn queue_and_flush_then_idle_or_reading() {
        let (mut client, mut conn) = pair();
        let resp = Response::text(200, "hi");
        conn.queue_response(&resp, true);
        assert_eq!(conn.state, ConnState::Writing);
        assert!(conn.flush_out(Instant::now()).unwrap());
        assert!(!conn.write_pending());
        conn.response_done();
        assert_eq!(conn.state, ConnState::Idle);

        let mut got = vec![0u8; 256];
        let n = client.read(&mut got).unwrap();
        let text = String::from_utf8_lossy(&got[..n]).into_owned();
        assert!(text.contains("Connection: keep-alive"), "{text}");
        assert!(text.ends_with("hi"), "{text}");

        // With bytes still buffered, response_done resumes Reading.
        client.write_all(b"GET /next HTTP/1.1\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill(Instant::now()).unwrap();
        conn.queue_response(&resp, false);
        assert!(conn.close_after_write);
        assert!(conn.flush_out(Instant::now()).unwrap());
        conn.response_done();
        assert_eq!(conn.state, ConnState::Reading);
    }

    #[test]
    fn fill_reports_closed_on_eof() {
        let (client, mut conn) = pair();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(conn.fill(Instant::now()).unwrap(), Pump::Closed);
    }
}
