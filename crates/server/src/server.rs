//! The server proper: the event loop, admission control, routing, and
//! graceful shutdown.
//!
//! One *event thread* owns every connection: a level-triggered
//! [`Poller`] (epoll on Linux, `poll(2)` elsewhere — see
//! [`crate::event`]) drives per-connection state machines
//! ([`crate::conn`]) through reading → dispatched → writing →
//! keep-alive idle. Idle clients cost a file descriptor, not a thread:
//! the fixed [`WorkerPool`] is purely a *compute* stage. When a complete
//! request parses, the event thread runs admission control — per-tenant
//! token buckets ([`crate::quota`], 429 + `Retry-After`), then the exact
//! queue-depth shed check (503 + `Retry-After`) — and only then hands
//! the request to a worker. The worker routes it and pushes the finished
//! [`Response`] back through a completion queue, waking the event thread
//! via a self-pipe; the event thread serializes and flushes it, honoring
//! `Connection: close`/HTTP/1.0 semantics and parsing pipelined requests
//! back-to-back out of the same buffer. The event thread is the sole
//! producer into the pool's bounded queue, so checking the queue depth
//! before dispatch remains an exact admission decision, and a worker
//! that dequeues a request past its deadline answers 503 without running
//! the query — both semantics carried over unchanged from the
//! thread-per-connection server this replaced.
//!
//! Slow-loris clients (partial request older than the read timeout) and
//! stalled response writes are killed by a periodic timeout scan;
//! keep-alive idle expiry closes quietly. Shutdown (via
//! [`ServerHandle::shutdown`] or, when enabled, SIGINT/SIGTERM) drains:
//! stop accepting, close idle connections, finish in-flight requests,
//! then return from `run`.
//!
//! ## Request tracing
//!
//! Every `/query/*` request is traced when the server runs with
//! `trace: true` or when the client sends an `X-Swope-Trace` header
//! (any 1–16 hex digits; an unparseable value gets a fresh id). The
//! trace's clock is anchored at the *arrival* timestamp (the first byte
//! of the request — for the first request on a connection, the moment it
//! was accepted), so `start_ns: 0` is request arrival and the root
//! `request` span's children expose queue wait directly. Finished traces
//! land in a bounded [`TraceRecorder`] behind `GET /debug/traces`, with
//! slow ones (wall time ≥ `slow_ms`) retained preferentially behind
//! `GET /debug/slow`. The trace id is echoed back in the response's
//! `X-Swope-Trace` header in canonical 16-hex-digit form.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use swope_cluster::{probe, serve_connection, ClusterStats, PeerPool, PeerTimeouts};
use swope_columnar::{Dataset, PageCache};
use swope_core::{gather_stats, ComposedObserver, Executor};
use swope_obs::json::Json;
use swope_obs::trace::{SpanSink, TraceId, TraceObserver, TraceRecord, TraceRecorder};

use crate::cache::ResultCache;
use crate::conn::{Conn, ConnState, Parsed, Pump};
use crate::event::{new_poller, Interest, Poller, WakePipe};
use crate::http::{Request, Response};
use crate::metrics::{ServerMetrics, TraceCounters};
use crate::pool::{QueueWatcher, WorkerPool};
use crate::query::{cache_key, parse_spec, run_query, run_query_cluster, ClusterTarget, QuerySpec};
use crate::quota::{Admission, TenantQuotas, ANONYMOUS_TENANT};
use crate::registry::DatasetRegistry;
use crate::signal;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub threads: usize,
    /// Bounded queue of parsed-but-unserved requests; beyond this the
    /// server sheds with 503.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Maximum time a request may wait in the queue before a worker picks
    /// it up; older requests are answered 503 without running.
    pub deadline: Duration,
    /// Kill threshold for slow-loris clients: a connection holding a
    /// *partial* request (or a stalled response write) older than this is
    /// answered 408 where possible and closed.
    pub read_timeout: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Support cap applied to datasets at load (the CLI's default 1000).
    pub max_support: u32,
    /// Install SIGINT/SIGTERM handlers and honour them in the event loop.
    pub handle_signals: bool,
    /// Threads in the process-wide execution pool that queries asking for
    /// `threads > 1` share (`<= 1` disables the pool entirely). The pool
    /// is built once at bind time and reused by every query, so no query
    /// pays thread-spawn latency. Defaults to the machine's available
    /// parallelism.
    pub exec_threads: usize,
    /// Trace every query request (otherwise only requests carrying an
    /// `X-Swope-Trace` header are traced). Also enables the storage
    /// layer's gather timing, so traces include `store_gather` spans.
    pub trace: bool,
    /// Wall-time threshold above which a traced request is retained in
    /// the slow-query flight recorder (`GET /debug/slow`).
    pub slow_ms: u64,
    /// Append one logfmt line per served request to this file.
    pub access_log: Option<String>,
    /// Peer shard-servers (`--peer host:port`, repeatable). When
    /// non-empty this server is a cluster *coordinator*: every `/query/*`
    /// is fanned out over the exact count-merge protocol and answered
    /// from the union of the peers' datasets, laid end to end in this
    /// order. Empty means single-box operation (the default). Any server
    /// — coordinator or not — also answers the binary shard protocol on
    /// its HTTP port (connections are sniffed by the `SWPC` magic).
    pub peers: Vec<String>,
    /// TCP connect deadline per peer (coordinator side).
    pub peer_connect_timeout: Duration,
    /// Read/write deadline per protocol frame (coordinator side). Bounds
    /// every wait on a peer, so a killed peer degrades to a one-line 503
    /// instead of a hung worker.
    pub peer_io_timeout: Duration,
    /// How long a keep-alive connection may sit idle (no request bytes)
    /// before the server closes it. Also bounds freshly accepted
    /// connections that never send a byte.
    pub keep_alive: Duration,
    /// Cap on concurrently open client connections; connections accepted
    /// past it are answered 503 and closed immediately.
    pub max_conns: usize,
    /// Per-tenant admission rate in requests/second, keyed by the
    /// `X-Swope-Api-Key` header (`None` disables quotas entirely).
    pub tenant_rps: Option<f64>,
    /// Per-tenant token-bucket capacity (burst size). Defaults to twice
    /// the rate, floored at 1.
    pub tenant_burst: Option<f64>,
    /// Serve `.swop` snapshots out-of-core: map the file (mmap where
    /// available, buffered reads otherwise) and decode 65 536-row pages
    /// on demand through the process-wide page cache instead of loading
    /// every column eagerly.
    pub mmap: bool,
    /// Byte budget for the page cache (`--store-budget-bytes`). When the
    /// decoded pages of out-of-core datasets exceed it, a CLOCK sweep
    /// re-compresses cold pages and drops the coldest. `None` means
    /// unbounded.
    pub store_budget_bytes: Option<u64>,
    /// Test aid (never exposed on the CLI): enables `GET
    /// /debug/sleep?ms=N`, which parks a worker thread for `ms`
    /// milliseconds. Load-shedding, deadline, and drain tests use it to
    /// occupy workers deterministically — with the event loop, an idle
    /// *connection* no longer costs a worker, so only real work can.
    pub debug_sleep_endpoint: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            deadline: Duration::from_secs(10),
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            max_support: 1000,
            handle_signals: false,
            exec_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            trace: false,
            slow_ms: 250,
            access_log: None,
            peers: Vec::new(),
            peer_connect_timeout: Duration::from_secs(2),
            peer_io_timeout: Duration::from_secs(10),
            keep_alive: Duration::from_secs(30),
            max_conns: 4096,
            tenant_rps: None,
            tenant_burst: None,
            mmap: false,
            store_budget_bytes: None,
            debug_sleep_endpoint: false,
        }
    }
}

/// Per-request context threaded from the event loop into routing: when
/// the request's first byte arrived (the traced clock's zero point) and
/// whether tracing is on for everyone or only header-opt-in requests.
struct RequestContext {
    accepted_at: Instant,
    trace_default: bool,
}

/// State shared by the event loop, the workers, and [`ServerHandle`]s.
struct Shared {
    registry: DatasetRegistry,
    cache: ResultCache,
    metrics: ServerMetrics,
    /// Process-wide execution pool handle; queries with `threads > 1`
    /// clone this (sharing the parked workers), `threads <= 1` runs
    /// inline on the HTTP worker.
    exec: Executor,
    /// Flight recorder of finished traces behind `/debug/traces` and
    /// `/debug/slow`.
    recorder: TraceRecorder,
    /// Open access-log writer; one logfmt line per served request,
    /// flushed per line so `tail -f` works.
    access_log: Option<Mutex<BufWriter<std::fs::File>>>,
    /// Wire/merge counters shared by the coordinator path and incoming
    /// peer sessions, exported as `swope_cluster_*` families.
    cluster_stats: Arc<ClusterStats>,
    /// Coordinator fan-out target; `None` when serving single-box.
    cluster: Option<ClusterTarget>,
    /// Per-tenant admission quotas; `None` when `--tenant-rps` is unset.
    quotas: Option<TenantQuotas>,
    /// Process-wide page cache for out-of-core datasets. Built even when
    /// `mmap` is off so `/metrics` always has a snapshot to render — it
    /// simply stays empty.
    pager: Arc<PageCache>,
    /// Mirrors [`ServerConfig::mmap`]: route dataset loads through the
    /// paged opener.
    mmap: bool,
    /// Mirrors [`ServerConfig::debug_sleep_endpoint`].
    debug_sleep: bool,
    stop: AtomicBool,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: Arc<ServerConfig>,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the event loop to stop; `run` drains in-flight requests,
    /// closes idle connections, and returns.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }
}

impl Server {
    /// Binds the listen socket (nonblocking — the event loop multiplexes
    /// it with every connection), opens the access log if configured, and
    /// builds the shared state.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let access_log = match &config.access_log {
            Some(path) => {
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                Some(Mutex::new(BufWriter::new(file)))
            }
            None => None,
        };
        if config.trace {
            // Gather timing is process-global (it runs on exec workers far
            // below any request context); flip it on once at startup.
            gather_stats::set_enabled(true);
        }
        let cluster_stats = Arc::new(ClusterStats::new());
        let cluster = if config.peers.is_empty() {
            None
        } else {
            // A coordinator must not come up pointing at a dead fleet:
            // dial every peer once and learn the union size.
            let timeouts =
                PeerTimeouts { connect: config.peer_connect_timeout, io: config.peer_io_timeout };
            let probed = probe(&config.peers, &timeouts, &cluster_stats)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            // Pool peer sessions across queries: enough per peer for every
            // worker to fan out concurrently.
            let pool = Arc::new(PeerPool::new(config.threads.max(1)));
            Some(ClusterTarget {
                addrs: config.peers.clone(),
                timeouts,
                union_rows: probed.union_rows,
                pool,
            })
        };
        let quotas = config.tenant_rps.map(|rps| {
            let burst = config.tenant_burst.unwrap_or((rps * 2.0).max(1.0));
            TenantQuotas::new(rps, burst)
        });
        let shared = Arc::new(Shared {
            registry: DatasetRegistry::new(config.max_support),
            cache: ResultCache::new(config.cache_capacity),
            metrics: ServerMetrics::new(),
            exec: Executor::new(config.exec_threads),
            recorder: TraceRecorder::with_slow_ms(config.slow_ms),
            access_log,
            cluster_stats,
            cluster,
            quotas,
            pager: Arc::new(PageCache::new(config.store_budget_bytes)),
            mmap: config.mmap,
            debug_sleep: config.debug_sleep_endpoint,
            stop: AtomicBool::new(false),
        });
        Ok(Self { listener, config: Arc::new(config), shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The dataset registry, for preloading datasets before `run`.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.shared.registry
    }

    /// The process-wide page cache, for preloading out-of-core datasets
    /// before `run` (pair with [`DatasetRegistry::load_path_paged`]).
    pub fn pager(&self) -> &Arc<PageCache> {
        &self.shared.pager
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shut down, then drains in-flight requests and returns.
    pub fn run(self) {
        if self.config.handle_signals {
            signal::install();
        }
        let pool = WorkerPool::new(self.config.threads, self.config.queue_capacity);
        let watcher = pool.watcher();
        let result = EventLoop::new(
            &self.listener,
            Arc::clone(&self.shared),
            Arc::clone(&self.config),
            &pool,
            watcher,
        )
        .and_then(|mut el| el.run());
        if let Err(e) = result {
            eprintln!("swope serve: event loop failed: {e}");
        }
        pool.shutdown();
    }
}

/// Token the listener registers under (no connection slab slot can reach
/// it: the slab would have to hold `usize::MAX` entries first).
const TOKEN_LISTENER: usize = usize::MAX;
/// Token of the worker-completion wake pipe's read end.
const TOKEN_WAKE: usize = usize::MAX - 1;
/// Poll tick: upper bound on timeout-scan and shutdown-check latency.
const TICK: Duration = Duration::from_millis(20);
/// Cap on concurrently served SWPC peer sessions (each holds a thread).
const MAX_PEER_SESSIONS: usize = 256;

/// Cap on pipelined requests bundled into one worker job, so a client
/// that pipelines thousands of requests cannot monopolise a worker; the
/// remainder stays buffered and forms the next batch.
const MAX_BATCH: usize = 32;

/// A batch of finished responses — one per pipelined request, in request
/// order — traveling from a worker back to the event thread.
struct Completion {
    token: usize,
    generation: u64,
    /// `(response, keep_alive)` per request of the batch.
    responses: Vec<(Response, bool)>,
}

/// One parsed request inside a dispatch batch: real work for a worker,
/// or an event-thread admission answer (429/503/4xx) that must keep its
/// place in the pipelined response order.
enum BatchItem {
    /// Route this request on a worker thread.
    Run { request: Box<Request>, keep_alive: bool, ordinal: u64 },
    /// Answer with this pre-cooked response without routing.
    Canned { response: Box<Response>, keep_alive: bool },
}

/// The event thread's state: the poller, the connection slab, and the
/// plumbing shared with workers.
struct EventLoop<'a> {
    poller: Box<dyn Poller>,
    listener: &'a TcpListener,
    /// Connection slab indexed by poller token; `free` recycles slots.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_conn_id: u64,
    shared: Arc<Shared>,
    config: Arc<ServerConfig>,
    pool: &'a WorkerPool,
    watcher: QueueWatcher,
    completions: Arc<Mutex<Vec<Completion>>>,
    wake: WakePipe,
    draining: bool,
    last_scan: Instant,
    peer_sessions: Arc<AtomicUsize>,
}

impl<'a> EventLoop<'a> {
    fn new(
        listener: &'a TcpListener,
        shared: Arc<Shared>,
        config: Arc<ServerConfig>,
        pool: &'a WorkerPool,
        watcher: QueueWatcher,
    ) -> std::io::Result<Self> {
        let mut poller = new_poller()?;
        let wake = WakePipe::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake.read_fd(), TOKEN_WAKE, Interest::READ)?;
        Ok(Self {
            poller,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_conn_id: 0,
            shared,
            config,
            pool,
            watcher,
            completions: Arc::new(Mutex::new(Vec::new())),
            wake,
            draining: false,
            last_scan: Instant::now(),
            peer_sessions: Arc::new(AtomicUsize::new(0)),
        })
    }

    fn run(&mut self) -> std::io::Result<()> {
        let mut events = Vec::new();
        loop {
            let stop = self.shared.stop.load(Ordering::Acquire)
                || (self.config.handle_signals && signal::signalled());
            if stop && !self.draining {
                self.draining = true;
                let _ = self.poller.remove(self.listener.as_raw_fd());
            }
            if self.draining {
                // Drain = stop accepting (done above), close idle and
                // still-reading connections, finish dispatched/writing.
                self.close_quiescent();
                if self.live == 0 {
                    return Ok(());
                }
            }
            self.poller.wait(&mut events, TICK)?;
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.wake.drain(),
                    token => self.conn_event(token, ev.hangup),
                }
            }
            self.drain_completions();
            let now = Instant::now();
            if now.duration_since(self.last_scan) >= TICK {
                self.last_scan = now;
                self.scan_timeouts(now);
                self.publish_gauges();
            }
        }
    }

    /// Accepts until the listener would block (level-triggered: anything
    /// left over is reported again on the next wait).
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.draining {
                        continue;
                    }
                    self.shared.metrics.record_conn_accepted();
                    if self.live >= self.config.max_conns {
                        self.shared.metrics.record_rejected();
                        over_capacity(stream);
                        self.shared.metrics.record_response(503, 0);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are small; without this, Nagle stacked on
                    // the client's delayed ACK stalls keep-alive
                    // round-trips by up to 40ms each.
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let token = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    if self.poller.add(fd, token, Interest::READ).is_err() {
                        self.free.push(token);
                        continue;
                    }
                    self.next_conn_id += 1;
                    self.conns[token] = Some(Conn::new(stream, self.next_conn_id, Instant::now()));
                    self.live += 1;
                }
                Err(_) => return, // WouldBlock or transient accept error
            }
        }
    }

    /// Readiness on a connection token: pump bytes, then advance the
    /// state machine.
    fn conn_event(&mut self, token: usize, hangup: bool) {
        let now = Instant::now();
        let state;
        {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            state = conn.state;
            match state {
                ConnState::Dispatched => {
                    // Interest is NONE while a worker owns the request;
                    // only errors/hangups surface. Remember to close once
                    // the response flushes (it will likely fail anyway).
                    if hangup {
                        conn.close_after_write = true;
                    }
                    return;
                }
                ConnState::Reading | ConnState::Idle => match conn.fill(now) {
                    Ok(Pump::Progress) => {
                        if conn.state == ConnState::Idle && conn.has_buffered() {
                            conn.state = ConnState::Reading;
                        }
                    }
                    Ok(Pump::Closed) | Err(_) => {
                        self.close(token);
                        return;
                    }
                },
                ConnState::Writing => {}
            }
        }
        match state {
            ConnState::Reading | ConnState::Idle => self.advance(token, now),
            ConnState::Writing => self.flush_and_advance(token, now),
            ConnState::Dispatched => unreachable!("handled above"),
        }
    }

    /// Parses every complete buffered request of a reading connection —
    /// running admission control per request on the event thread — and
    /// dispatches the resulting batch. Pipelined requests share one
    /// queue slot, one worker hand-off, and one response flush.
    fn advance(&mut self, token: usize, now: Instant) {
        enum Action {
            Wait,
            Peer,
            Batch(Vec<BatchItem>),
        }
        let action = {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            if conn.state == ConnState::Idle || !conn.has_buffered() {
                Action::Wait
            } else {
                let mut items: Vec<BatchItem> = Vec::new();
                let mut peer = false;
                while items.len() < MAX_BATCH {
                    match conn.take_request(self.config.max_body_bytes) {
                        Parsed::Incomplete => break,
                        Parsed::Cluster => {
                            // Only possible on a pristine connection, so
                            // the batch is necessarily empty.
                            peer = true;
                            break;
                        }
                        Parsed::Reject(response) => {
                            // Unusable bytes: count the attempt, answer,
                            // close — nothing after them is parseable.
                            self.shared.metrics.record_request();
                            items.push(BatchItem::Canned { response, keep_alive: false });
                            break;
                        }
                        Parsed::Request { request, keep_alive } => {
                            self.shared.metrics.record_request();
                            let throttle = self.shared.quotas.as_ref().and_then(|q| {
                                let tenant =
                                    request.header("x-swope-api-key").unwrap_or(ANONYMOUS_TENANT);
                                match q.admit(tenant, now) {
                                    Admission::Allow => {
                                        self.shared.metrics.record_tenant(tenant, false);
                                        None
                                    }
                                    Admission::Throttle { retry_after_secs } => {
                                        self.shared.metrics.record_tenant(tenant, true);
                                        Some(retry_after_secs)
                                    }
                                }
                            });
                            if let Some(retry) = throttle {
                                let response = Box::new(
                                    Response::error(
                                        429,
                                        "tenant over admission quota, retry after backoff",
                                    )
                                    .with_header("Retry-After", &retry.to_string()),
                                );
                                items.push(BatchItem::Canned { response, keep_alive });
                            } else if self.watcher.depth() >= self.config.queue_capacity {
                                // Sole producer: depth vs capacity is exact.
                                self.shared.metrics.record_rejected();
                                let response = Box::new(
                                    Response::error(503, "server overloaded, retry shortly")
                                        .with_header("Retry-After", "1"),
                                );
                                items.push(BatchItem::Canned { response, keep_alive });
                            } else {
                                items.push(BatchItem::Run {
                                    request,
                                    keep_alive,
                                    ordinal: conn.requests,
                                });
                            }
                            if !keep_alive {
                                break;
                            }
                        }
                    }
                }
                if peer {
                    Action::Peer
                } else if items.is_empty() {
                    Action::Wait
                } else {
                    Action::Batch(items)
                }
            }
        };
        match action {
            Action::Wait => self.set_interest(token, Interest::READ),
            Action::Peer => self.hand_off_peer(token),
            Action::Batch(items) => self.dispatch(token, items, now),
        }
    }

    /// Queues an event-thread response (429/503/4xx) and flushes it.
    fn respond_inline(&mut self, token: usize, resp: Response, keep_alive: bool, now: Instant) {
        let status = resp.status;
        let micros;
        {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            micros = conn.read_started.map(|t| now.duration_since(t).as_micros() as u64);
            conn.queue_response(&resp, keep_alive && !self.draining);
        }
        self.shared.metrics.record_response(status, micros.unwrap_or(0));
        self.flush_and_advance(token, now);
    }

    /// Hands a request batch to a worker; the connection parks in
    /// `Dispatched` with no poller interest until the completion returns.
    /// A batch with no routable work (every item canned by admission
    /// control) is answered on the event thread without a queue slot.
    fn dispatch(&mut self, token: usize, items: Vec<BatchItem>, now: Instant) {
        if items.iter().all(|i| matches!(i, BatchItem::Canned { .. })) {
            let micros = {
                let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                    return;
                };
                let micros = conn.read_started.map(|t| now.duration_since(t).as_micros() as u64);
                for item in &items {
                    let BatchItem::Canned { response, keep_alive } = item else { unreachable!() };
                    conn.append_response(response, *keep_alive && !self.draining);
                }
                micros.unwrap_or(0)
            };
            for item in &items {
                if let BatchItem::Canned { response, .. } = item {
                    self.shared.metrics.record_response(response.status, micros);
                }
            }
            self.flush_and_advance(token, now);
            return;
        }
        let (generation, conn_id, arrival);
        {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            conn.generation += 1;
            conn.state = ConnState::Dispatched;
            generation = conn.generation;
            conn_id = conn.id;
            arrival = conn.read_started.unwrap_or(now);
        }
        for item in &items {
            if matches!(item, BatchItem::Run { ordinal, .. } if *ordinal >= 2) {
                self.shared.metrics.record_keepalive_reuse();
            }
        }
        self.set_interest(token, Interest::NONE);
        let shared = Arc::clone(&self.shared);
        let config = Arc::clone(&self.config);
        let watcher = self.watcher.clone();
        let completions = Arc::clone(&self.completions);
        let notifier = self.wake.notifier();
        let dispatched_at = now;
        let accepted = self.pool.try_execute(move || {
            let mut responses = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    BatchItem::Canned { response, keep_alive } => {
                        shared
                            .metrics
                            .record_response(response.status, arrival.elapsed().as_micros() as u64);
                        responses.push((*response, keep_alive));
                    }
                    BatchItem::Run { request, keep_alive, ordinal } => {
                        // The deadline is re-checked per request: a batch
                        // that queued too long sheds every member.
                        let response = if dispatched_at.elapsed() > config.deadline {
                            shared.metrics.record_deadline_expired();
                            Response::error(503, "request deadline expired while queued")
                                .with_header("Retry-After", "1")
                        } else {
                            let ctx = RequestContext {
                                accepted_at: arrival,
                                trace_default: config.trace,
                            };
                            let resp = route(&request, &shared, &watcher, &ctx);
                            let micros = arrival.elapsed().as_micros() as u64;
                            let dataset = request.param("dataset").unwrap_or("-");
                            shared.metrics.record_labelled(
                                endpoint_label(&request.path),
                                dataset,
                                micros,
                            );
                            log_access(&shared, &request, &resp, micros, conn_id, ordinal);
                            resp
                        };
                        shared
                            .metrics
                            .record_response(response.status, arrival.elapsed().as_micros() as u64);
                        responses.push((response, keep_alive));
                    }
                }
            }
            completions.lock().expect("completion queue lock").push(Completion {
                token,
                generation,
                responses,
            });
            notifier.wake();
        });
        if accepted.is_err() {
            // Lost a race with pool shutdown; answer on the event thread.
            let resp = Response::error(503, "server shutting down").with_header("Retry-After", "1");
            self.respond_inline(token, resp, false, now);
        }
    }

    /// Applies finished worker responses to their connections. Stale
    /// completions (the slot was closed and possibly reused — detected by
    /// the generation stamp) are discarded, never written to the wrong
    /// client.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> =
            std::mem::take(&mut *self.completions.lock().expect("completion queue lock"));
        let now = Instant::now();
        for c in done {
            let matched = match self.conns.get_mut(c.token).and_then(Option::as_mut) {
                Some(conn)
                    if conn.generation == c.generation && conn.state == ConnState::Dispatched =>
                {
                    for (response, keep_alive) in &c.responses {
                        let keep = *keep_alive && !conn.close_after_write && !self.draining;
                        conn.append_response(response, keep);
                    }
                    conn.last_activity = now;
                    true
                }
                _ => false,
            };
            if matched {
                self.flush_and_advance(c.token, now);
            }
        }
    }

    /// Flushes the queued response; on completion either closes or goes
    /// back to idle/reading — immediately parsing any pipelined request
    /// already sitting in the buffer.
    fn flush_and_advance(&mut self, token: usize, now: Instant) {
        let flushed = {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            conn.flush_out(now)
        };
        match flushed {
            Err(_) => self.close(token),
            Ok(false) => self.set_interest(token, Interest::WRITE),
            Ok(true) => {
                let close = {
                    let conn = self.conns[token].as_mut().expect("conn checked above");
                    if conn.close_after_write || self.draining {
                        true
                    } else {
                        conn.response_done();
                        false
                    }
                };
                if close {
                    self.close(token);
                } else {
                    // No re-arm here: `advance` ends in an explicit
                    // interest (READ on wait, NONE on dispatch), so a
                    // pipelined request skips the READ→NONE round trip.
                    self.advance(token, now);
                }
            }
        }
    }

    /// Re-registers `token`'s readiness interest only when it changed;
    /// under pipelining a connection cycles NONE→READ→NONE per request,
    /// and every transition skipped is an `epoll_ctl` saved.
    fn set_interest(&mut self, token: usize, want: Interest) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        if conn.interest != want {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want).is_ok() {
                conn.interest = want;
            }
        }
    }

    /// An SWPC peer session announced itself on this connection: detach
    /// it from the event loop and serve the binary protocol on a
    /// dedicated thread (peer counting far outlasts any HTTP exchange,
    /// and coordinators are few).
    fn hand_off_peer(&mut self, token: usize) {
        let Some(mut conn) = self.conns.get_mut(token).and_then(Option::take) else { return };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.free.push(token);
        self.live -= 1;
        if self.peer_sessions.load(Ordering::Relaxed) >= MAX_PEER_SESSIONS {
            return; // drop the stream: the coordinator sees a clean EOF
        }
        self.peer_sessions.fetch_add(1, Ordering::Relaxed);
        let prefix = conn.take_buffered();
        let stream = conn.stream;
        let sessions = Arc::clone(&self.peer_sessions);
        let shared = Arc::clone(&self.shared);
        let config = Arc::clone(&self.config);
        std::thread::spawn(move || {
            serve_peer_session(stream, prefix, &shared, &config);
            sessions.fetch_sub(1, Ordering::Relaxed);
        });
    }

    /// Kills timed-out connections: slow-loris partial reads and stalled
    /// writes get the timeout counter (readers also get a best-effort
    /// 408); keep-alive idle expiry closes quietly.
    fn scan_timeouts(&mut self, now: Instant) {
        let mut kill: Vec<(usize, bool)> = Vec::new();
        for (token, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            match conn.state {
                ConnState::Dispatched => {} // bounded by the worker deadline
                ConnState::Reading if conn.read_started.is_some() => {
                    let started = conn.read_started.expect("checked in guard");
                    if now.duration_since(started) > self.config.read_timeout {
                        kill.push((token, true));
                    }
                }
                ConnState::Reading | ConnState::Idle => {
                    if now.duration_since(conn.last_activity) > self.config.keep_alive {
                        kill.push((token, false));
                    }
                }
                ConnState::Writing => {
                    if now.duration_since(conn.last_activity) > self.config.read_timeout {
                        kill.push((token, true));
                    }
                }
            }
        }
        for (token, timed_out) in kill {
            if timed_out {
                self.shared.metrics.record_conn_timeout();
                if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
                    if conn.state == ConnState::Reading {
                        let resp = Response::error(408, "timed out waiting for a complete request");
                        let _ = conn.stream.write(&resp.serialize(false));
                        self.shared.metrics.record_response(408, 0);
                    }
                }
            }
            self.close(token);
        }
    }

    /// Publishes the connection-state census as gauges.
    fn publish_gauges(&self) {
        let (mut idle, mut reading, mut writing) = (0u64, 0u64, 0u64);
        for conn in self.conns.iter().flatten() {
            match conn.state {
                ConnState::Idle => idle += 1,
                ConnState::Reading => reading += 1,
                ConnState::Writing => writing += 1,
                ConnState::Dispatched => {}
            }
        }
        self.shared.metrics.set_conn_states(self.live as u64, idle, reading, writing);
    }

    /// During drain: closes every connection with no request in flight.
    fn close_quiescent(&mut self) {
        for token in 0..self.conns.len() {
            let quiescent = self.conns[token]
                .as_ref()
                .is_some_and(|c| matches!(c.state, ConnState::Idle | ConnState::Reading));
            if quiescent {
                self.close(token);
            }
        }
    }

    /// Deregisters, gracefully closes, and frees a connection slot.
    fn close(&mut self, token: usize) {
        if let Some(mut conn) = self.conns.get_mut(token).and_then(Option::take) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            conn.close_gracefully();
            self.free.push(token);
            self.live -= 1;
        }
    }
}

/// Best-effort 503 for a connection accepted past `max_conns`; never
/// blocks the event thread (the socket goes nonblocking first).
fn over_capacity(mut stream: TcpStream) {
    let resp = Response::error(503, "connection limit reached, retry shortly")
        .with_header("Retry-After", "1");
    let _ = stream.set_nonblocking(true);
    let _ = stream.write(&resp.serialize(false));
}

/// A `TcpStream` with already-consumed bytes replayed in front: the event
/// loop reads a connection's first bytes before discovering it speaks the
/// SWPC protocol, so the peer session must see those bytes again.
struct PrefixedStream {
    prefix: Vec<u8>,
    pos: usize,
    inner: TcpStream,
}

impl std::io::Read for PrefixedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (self.prefix.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

impl std::io::Write for PrefixedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Answers one shard-protocol session on the HTTP port: this server acts
/// as a *peer*, counting over its registered datasets for a remote
/// coordinator. The empty dataset name resolves to the sole registered
/// dataset (the common one-dataset peer), names resolve through the
/// registry. `prefix` carries the bytes the event loop consumed while
/// sniffing (at least the magic).
fn serve_peer_session(stream: TcpStream, prefix: Vec<u8>, shared: &Shared, config: &ServerConfig) {
    // Peer counting can far outlast an HTTP parse; run blocking with the
    // coordinator-facing I/O deadline instead of the HTTP read timeout.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.peer_io_timeout));
    let _ = stream.set_write_timeout(Some(config.peer_io_timeout));
    let _ = stream.set_nodelay(true);
    let resolve = |name: &str| {
        if name.is_empty() {
            let all = shared.registry.list();
            return match all.as_slice() {
                [only] => Some(Arc::clone(&only.dataset)),
                _ => None,
            };
        }
        shared.registry.get(name).map(|entry| Arc::clone(&entry.dataset))
    };
    let mut io = PrefixedStream { prefix, pos: 0, inner: stream };
    serve_connection(&mut io, &resolve, &shared.cluster_stats);
}

/// The fixed label vocabulary for per-endpoint latency families — a
/// closed set so an attacker probing random paths cannot mint metric
/// label values (those all collapse into `other`/`query_other`).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/datasets" => "datasets",
        "/debug/traces" => "debug_traces",
        "/debug/slow" => "debug_slow",
        _ if path.starts_with("/query/") => match &path["/query/".len()..] {
            "entropy-topk" => "query_entropy_top_k",
            "entropy-filter" => "query_entropy_filter",
            "mi-topk" => "query_mi_top_k",
            "mi-filter" => "query_mi_filter",
            "entropy-profile" => "query_entropy_profile",
            "mi-profile" => "query_mi_profile",
            _ => "query_other",
        },
        _ => "other",
    }
}

/// Appends one logfmt line for a served request and flushes it. Under
/// keep-alive a connection serves many requests: `conn` is the accept
/// counter (monotonic per process) and `req` the 1-based ordinal of this
/// request on its connection, so reuse is visible in the log.
fn log_access(
    shared: &Shared,
    req: &Request,
    resp: &Response,
    micros: u64,
    conn_id: u64,
    ordinal: u64,
) {
    let Some(log) = &shared.access_log else { return };
    let ts = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let header = |name: &str| {
        resp.extra_headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str()).unwrap_or("-")
    };
    let line = format!(
        "ts={ts} conn={conn_id} req={ordinal} method={} path={} status={} bytes={} \
         dur_us={micros} trace={} cache={}\n",
        req.method,
        req.path,
        resp.status,
        resp.body.len(),
        header("X-Swope-Trace"),
        header("X-Swope-Cache"),
    );
    if let Ok(mut w) = log.lock() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Dispatches a parsed request to an endpoint.
fn route(req: &Request, shared: &Shared, watcher: &QueueWatcher, ctx: &RequestContext) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared, watcher),
        ("GET", "/metrics") => Response::text(
            200,
            shared.metrics.render_prometheus(
                &shared.cache,
                watcher.depth(),
                shared.registry.len(),
                shared.exec.stats(),
                shared.registry.store_stats(),
                shared.registry.sketch_stats(),
                TraceCounters {
                    recorded: shared.recorder.recorded_total(),
                    slow: shared.recorder.slow_total(),
                },
                shared.cluster.as_ref().map(|c| (c.addrs.len() as u64, c.union_rows)),
                shared.cluster_stats.snapshot(),
                shared.pager.snapshot(),
            ),
        ),
        ("GET", "/datasets") => list_datasets(shared),
        ("POST", "/datasets") => load_dataset(req, shared),
        ("GET", "/debug/traces") => debug_listing(req, shared, false),
        ("GET", "/debug/slow") => debug_listing(req, shared, true),
        ("GET", "/debug/sleep") if shared.debug_sleep => {
            let ms = req.param("ms").and_then(|v| v.parse::<u64>().ok()).unwrap_or(100).min(10_000);
            std::thread::sleep(Duration::from_millis(ms));
            Response::json(200, format!("{{\"slept_ms\":{ms}}}"))
        }
        ("GET", path) if path.starts_with("/query/") => {
            serve_query(&path["/query/".len()..], req, shared, ctx)
        }
        (_, "/healthz" | "/metrics" | "/datasets" | "/debug/traces" | "/debug/slow") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) if path.starts_with("/query/") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => Response::error(404, &format!("no such endpoint {path:?}")),
    }
}

/// `GET /debug/traces` / `GET /debug/slow`: the retained ring, newest
/// `?n=` traces only when given, always under the recorder's byte cap.
fn debug_listing(req: &Request, shared: &Shared, slow: bool) -> Response {
    let n = match req.param("n") {
        None => usize::MAX,
        Some(raw) => match raw.parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                return Response::error(
                    400,
                    &format!("malformed value {raw:?} for parameter \"n\""),
                )
            }
        },
    };
    let body = if slow { shared.recorder.slow_json_n(n) } else { shared.recorder.recent_json_n(n) };
    Response::json(200, body)
}

fn healthz(shared: &Shared, watcher: &QueueWatcher) -> Response {
    let body = format!(
        "{{\"status\":\"ok\",\"datasets\":{},\"queue_depth\":{}}}",
        shared.registry.len(),
        watcher.depth()
    );
    Response::json(200, body)
}

fn list_datasets(shared: &Shared) -> Response {
    let mut body = String::from("{\"datasets\":[");
    for (i, entry) in shared.registry.list().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&entry.describe_json());
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `POST /datasets` with body `{"path": "...", "name": "..."}` (`name`
/// optional — defaults to the file stem).
fn load_dataset(req: &Request, shared: &Shared) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "request body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("request body is not JSON: {e}")),
    };
    let Some(path) = parsed.get("path").and_then(|v| v.as_str().map(str::to_owned)) else {
        return Response::error(400, "body must contain a string \"path\" field");
    };
    let name = parsed.get("name").and_then(|v| v.as_str().map(str::to_owned));
    let entry = match (name, shared.mmap) {
        (Some(name), false) => match Dataset::from_path(&path) {
            Ok(ds) => Ok(shared.registry.insert(&name, ds)),
            Err(e) => Err(format!("loading {path}: {e}")),
        },
        (Some(name), true) => match Dataset::from_path_paged(&path, Arc::clone(&shared.pager)) {
            Ok((ds, sketch)) => Ok(shared.registry.insert_with_sketch(&name, ds, sketch)),
            Err(e) => Err(format!("loading {path}: {e}")),
        },
        (None, false) => shared.registry.load_path(&path),
        (None, true) => shared.registry.load_path_paged(&path, &shared.pager),
    };
    match entry {
        Ok(entry) => Response::json(201, entry.describe_json()),
        Err(msg) => Response::error(422, &msg),
    }
}

/// `GET /query/<shape>`: cache lookup, then the adaptive loop on a miss.
/// Traced when the server traces by default or the request carries an
/// `X-Swope-Trace` header.
fn serve_query(segment: &str, req: &Request, shared: &Shared, ctx: &RequestContext) -> Response {
    let spec = match parse_spec(segment, req) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    let header = req.header("x-swope-trace");
    if !(ctx.trace_default || header.is_some()) {
        return execute_query(&spec, shared, None);
    }
    // A malformed header value still gets a trace — just under a fresh id.
    let trace_id = header.and_then(TraceId::parse).unwrap_or_else(TraceId::next_seeded);
    let sink = SpanSink::anchored(trace_id, ctx.accepted_at);
    let root = sink.open_at("request", None, 0);
    sink.set_items(root, req.body.len() as u64);
    // Everything between arrival and this point: queue wait + parsing.
    sink.record("queue_wait", Some(root), 0, sink.now_ns(), 0, 0);
    let response = execute_query(&spec, shared, Some((&sink, root)));
    sink.close(root);
    let wall_ns = sink.now_ns();
    let (spans, dropped_spans) = sink.drain();
    let cache = response
        .extra_headers
        .iter()
        .find(|(k, _)| k == "X-Swope-Cache")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "-".into());
    shared.recorder.record(TraceRecord {
        trace_id: sink.trace_id().to_string(),
        endpoint: endpoint_label(&req.path).to_owned(),
        dataset: spec.dataset.clone(),
        status: response.status,
        cache,
        wall_ns,
        dropped_spans,
        spans,
    });
    response.with_header("X-Swope-Trace", &sink.trace_id().to_string())
}

/// Runs a parsed query spec: registry lookup, cache, then the adaptive
/// loop. With a trace attached, records `cache_lookup`, the query's span
/// tree (via [`TraceObserver`]), `exec_dispatch` spans from the pooled
/// executor, and an aggregate `store_gather` span from the storage
/// layer's global gather counters (exact when one query runs at a time;
/// approximate under concurrent traced queries).
fn execute_query(
    spec: &QuerySpec,
    shared: &Shared,
    trace: Option<(&Arc<SpanSink>, u32)>,
) -> Response {
    if shared.cluster.is_some() {
        return execute_query_cluster(spec, shared, trace);
    }
    let Some(entry) = shared.registry.get(&spec.dataset) else {
        return Response::error(404, &format!("no dataset named {:?} is loaded", spec.dataset));
    };
    let key = cache_key(spec, entry.generation);
    let lookup = trace.map(|(sink, root)| sink.open("cache_lookup", Some(root)));
    let cached = shared.cache.get(&key);
    if let (Some((sink, _)), Some(span)) = (trace, lookup) {
        sink.close(span);
    }
    if let Some(body) = cached {
        return Response::json(200, body.as_str()).with_header("X-Swope-Cache", "hit");
    }
    // Single-threaded queries run inline on the HTTP worker; anything
    // else shares the process-wide pool. Either way the answer bytes are
    // identical (the loops are executor-invariant), so cached bodies stay
    // valid across the choice — and so does tracing, which is purely
    // observational (enforced by `core/tests/trace_invariance.rs`).
    let exec = if spec.threads <= 1 { Executor::sequential() } else { shared.exec.clone() };
    let result = match trace {
        None => run_query(&entry, spec, &exec, &mut &shared.metrics.registry),
        Some((sink, root)) => {
            let exec = exec.with_trace(Arc::clone(sink), root);
            let mut obs = ComposedObserver::new(
                TraceObserver::new(Arc::clone(sink), Some(root)),
                &shared.metrics.registry,
            );
            let start_ns = sink.now_ns();
            let before = gather_stats::snapshot();
            let pager_before = shared.pager.snapshot();
            let result = run_query(&entry, spec, &exec, &mut obs);
            let delta = gather_stats::snapshot().since(before);
            if delta.calls > 0 {
                sink.record(
                    "store_gather",
                    Some(root),
                    start_ns,
                    start_ns + delta.nanos,
                    0,
                    delta.rows,
                );
            }
            // Same aggregate-span treatment for the pager: one span whose
            // width is the summed fault-service time and whose item count
            // is the pages faulted while this query ran (exact when one
            // traced query runs at a time).
            let pdelta = shared.pager.snapshot().since(&pager_before);
            if pdelta.faults > 0 {
                sink.record(
                    "page_fault",
                    Some(root),
                    start_ns,
                    start_ns + pdelta.fault_nanos,
                    0,
                    pdelta.faults,
                );
            }
            result
        }
    };
    match result {
        Ok(body) => {
            let body = Arc::new(body);
            shared.cache.put(key, Arc::clone(&body));
            Response::json(200, body.as_str()).with_header("X-Swope-Cache", "miss")
        }
        Err((status, msg)) => Response::error(status, &msg),
    }
}

/// The coordinator flavour of [`execute_query`]: same cache and tracing
/// plumbing, but the answer comes from fanning the query over the peer
/// fleet. Cluster datasets live on the (static) peers, so bodies cache
/// under the pinned cluster generation; a dead or hung peer maps onto a
/// retryable 503, never a hang (every wire wait is deadline-bounded).
fn execute_query_cluster(
    spec: &QuerySpec,
    shared: &Shared,
    trace: Option<(&Arc<SpanSink>, u32)>,
) -> Response {
    let cluster = shared.cluster.as_ref().expect("cluster target configured");
    // The union is immutable for the process lifetime; generation 1
    // matches a fresh single box's first insert, so coordinator bodies
    // diff cleanly against single-box bodies.
    let key = cache_key(spec, 1);
    let lookup = trace.map(|(sink, root)| sink.open("cache_lookup", Some(root)));
    let cached = shared.cache.get(&key);
    if let (Some((sink, _)), Some(span)) = (trace, lookup) {
        sink.close(span);
    }
    if let Some(body) = cached {
        return Response::json(200, body.as_str()).with_header("X-Swope-Cache", "hit");
    }
    let exec = if spec.threads <= 1 { Executor::sequential() } else { shared.exec.clone() };
    let result = match trace {
        None => run_query_cluster(
            cluster,
            &shared.cluster_stats,
            spec,
            &exec,
            &mut &shared.metrics.registry,
        ),
        Some((sink, root)) => {
            let exec = exec.with_trace(Arc::clone(sink), root);
            let mut obs = ComposedObserver::new(
                TraceObserver::new(Arc::clone(sink), Some(root)),
                &shared.metrics.registry,
            );
            run_query_cluster(cluster, &shared.cluster_stats, spec, &exec, &mut obs)
        }
    };
    match result {
        Ok(body) => {
            let body = Arc::new(body);
            shared.cache.put(key, Arc::clone(&body));
            Response::json(200, body.as_str()).with_header("X-Swope-Cache", "miss")
        }
        Err((status, msg)) => {
            let resp = Response::error(status, &msg);
            if status == 503 {
                resp.with_header("Retry-After", "1")
            } else {
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::DatasetBuilder;

    fn shared_with_dataset() -> (Shared, QueueWatcher) {
        let shared = Shared {
            registry: DatasetRegistry::new(1000),
            cache: ResultCache::new(8),
            metrics: ServerMetrics::new(),
            exec: Executor::new(2),
            recorder: TraceRecorder::with_slow_ms(0),
            access_log: None,
            cluster_stats: Arc::new(ClusterStats::new()),
            cluster: None,
            quotas: None,
            pager: Arc::new(PageCache::unbounded()),
            mmap: false,
            debug_sleep: false,
            stop: AtomicBool::new(false),
        };
        let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
        for i in 0..200u32 {
            b.push_row(&[format!("v{}", i % 8), format!("w{}", i % 2)]).unwrap();
        }
        shared.registry.insert("t", b.finish());
        let pool = WorkerPool::new(1, 1);
        let watcher = pool.watcher();
        pool.shutdown();
        (shared, watcher)
    }

    fn ctx() -> RequestContext {
        RequestContext { accepted_at: Instant::now(), trace_default: false }
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_owned(), crate::http::parse_query(q)),
            None => (path.to_owned(), Vec::new()),
        };
        Request { method: "GET".into(), path, query, headers: Vec::new(), body: Vec::new() }
    }

    #[test]
    fn routes_cover_ops_endpoints() {
        let (shared, watcher) = shared_with_dataset();
        assert_eq!(route(&get("/healthz"), &shared, &watcher, &ctx()).status, 200);
        let metrics = route(&get("/metrics"), &shared, &watcher, &ctx());
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8(metrics.body.clone())
            .unwrap()
            .contains("swope_http_requests_total"));
        assert_eq!(route(&get("/datasets"), &shared, &watcher, &ctx()).status, 200);
        assert_eq!(route(&get("/nope"), &shared, &watcher, &ctx()).status, 404);
        let mut del = get("/healthz");
        del.method = "DELETE".into();
        assert_eq!(route(&del, &shared, &watcher, &ctx()).status, 405);
    }

    #[test]
    fn query_route_caches_and_errors() {
        let (shared, watcher) = shared_with_dataset();
        let req = get("/query/entropy-topk?dataset=t&k=1");
        let first = route(&req, &shared, &watcher, &ctx());
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.iter().any(|(_, v)| v == "miss"));
        let second = route(&req, &shared, &watcher, &ctx());
        assert!(second.extra_headers.iter().any(|(_, v)| v == "hit"));
        assert_eq!(first.body, second.body);
        assert_eq!(
            route(&get("/query/entropy-topk?dataset=t"), &shared, &watcher, &ctx()).status,
            400
        );
        assert_eq!(
            route(&get("/query/entropy-topk?dataset=gone&k=1"), &shared, &watcher, &ctx()).status,
            404
        );
        assert_eq!(route(&get("/query/bogus?dataset=t"), &shared, &watcher, &ctx()).status, 400);
    }

    #[test]
    fn post_datasets_round_trip() {
        let (shared, watcher) = shared_with_dataset();
        let dir = std::env::temp_dir().join("swope-server-route-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extra.swop");
        let mut b = DatasetBuilder::new(vec!["x".into()]);
        b.push_row(&["1".to_string()]).unwrap();
        swope_columnar::snapshot::write_file(&b.finish(), &path).unwrap();
        let body = format!("{{\"path\":{:?}}}", path.to_str().unwrap());
        let req = Request {
            method: "POST".into(),
            path: "/datasets".into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.into_bytes(),
        };
        assert_eq!(route(&req, &shared, &watcher, &ctx()).status, 201);
        assert!(shared.registry.get("extra").is_some());
        let bad = Request {
            method: "POST".into(),
            path: "/datasets".into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: b"{\"path\":\"/no/such.swop\"}".to_vec(),
        };
        assert_eq!(route(&bad, &shared, &watcher, &ctx()).status, 422);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_query_records_span_tree_and_echoes_id() {
        let (shared, watcher) = shared_with_dataset();
        let mut req = get("/query/entropy-topk?dataset=t&k=1");
        req.headers.push(("x-swope-trace".into(), "deadbeef".into()));
        let resp = route(&req, &shared, &watcher, &ctx());
        assert_eq!(resp.status, 200);
        assert!(
            resp.extra_headers.iter().any(|(k, v)| k == "X-Swope-Trace" && v == "00000000deadbeef"),
            "trace id not echoed canonically: {:?}",
            resp.extra_headers
        );
        assert_eq!(shared.recorder.recorded_total(), 1);
        let json = shared.recorder.recent_json();
        for name in [
            "request",
            "queue_wait",
            "cache_lookup",
            "query:entropy_top_k",
            "sample_grow",
            "ingest",
            "update_bounds",
            "decide",
        ] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "missing {name} in {json}");
        }
        assert!(json.contains("\"trace_id\":\"00000000deadbeef\""));
        assert!(json.contains("\"endpoint\":\"query_entropy_top_k\""));
        // Cache hits are traced too, tagged with the outcome.
        let hit = route(&req, &shared, &watcher, &ctx());
        assert!(hit.extra_headers.iter().any(|(_, v)| v == "hit"));
        assert_eq!(shared.recorder.recorded_total(), 2);
        assert!(shared.recorder.recent_json().contains("\"cache\":\"hit\""));
        // With slow_ms = 0 every traced request lands in the flight recorder.
        assert_eq!(shared.recorder.slow_total(), 2);
        assert!(shared.recorder.slow_json().contains("\"trace_id\":\"00000000deadbeef\""));
        // Untraced requests leave no record.
        let plain = route(&get("/query/entropy-topk?dataset=t&k=2"), &shared, &watcher, &ctx());
        assert_eq!(plain.status, 200);
        assert!(plain.extra_headers.iter().all(|(k, _)| k != "X-Swope-Trace"));
        assert_eq!(shared.recorder.recorded_total(), 2);
    }

    #[test]
    fn trace_default_traces_without_header() {
        let (shared, watcher) = shared_with_dataset();
        let req = get("/query/entropy-profile?dataset=t");
        let ctx = RequestContext { accepted_at: Instant::now(), trace_default: true };
        let resp = route(&req, &shared, &watcher, &ctx);
        assert_eq!(resp.status, 200);
        assert!(resp.extra_headers.iter().any(|(k, _)| k == "X-Swope-Trace"));
        assert_eq!(shared.recorder.recorded_total(), 1);
        assert!(shared.recorder.recent_json().contains("query:entropy_profile"));
    }

    #[test]
    fn debug_endpoints_serve_json_and_reject_writes() {
        let (shared, watcher) = shared_with_dataset();
        for path in ["/debug/traces", "/debug/slow"] {
            let resp = route(&get(path), &shared, &watcher, &ctx());
            assert_eq!(resp.status, 200);
            let body = String::from_utf8(resp.body).unwrap();
            let v = Json::parse(&body).unwrap();
            assert_eq!(v.get("recorded_total").unwrap().as_u64(), Some(0));
            let mut post = get(path);
            post.method = "POST".into();
            assert_eq!(route(&post, &shared, &watcher, &ctx()).status, 405);
        }
    }

    #[test]
    fn endpoint_labels_are_a_closed_vocabulary() {
        assert_eq!(endpoint_label("/healthz"), "healthz");
        assert_eq!(endpoint_label("/query/entropy-topk"), "query_entropy_top_k");
        assert_eq!(endpoint_label("/query/mi-profile"), "query_mi_profile");
        assert_eq!(endpoint_label("/query/../etc/passwd"), "query_other");
        assert_eq!(endpoint_label("/debug/slow"), "debug_slow");
        assert_eq!(endpoint_label("/anything-else"), "other");
    }
}
