//! The server proper: accept loop, admission control, routing, and
//! graceful shutdown.
//!
//! One thread accepts; a fixed [`WorkerPool`] serves. The accept loop is
//! the sole producer into the pool's bounded queue, so checking the queue
//! depth before submitting is an exact admission decision: when the queue
//! is full the connection is answered `503 + Retry-After` right on the
//! accept thread and never touches a worker. Accepted connections carry
//! their accept timestamp; a worker that dequeues one past its deadline
//! answers 503 without running the query. Shutdown (via
//! [`ServerHandle::shutdown`] or, when enabled, SIGINT/SIGTERM) stops the
//! accept loop and drains every queued connection before `run` returns.
//!
//! ## Request tracing
//!
//! Every `/query/*` request is traced when the server runs with
//! `trace: true` or when the client sends an `X-Swope-Trace` header
//! (any 1–16 hex digits; an unparseable value gets a fresh id). The
//! trace's clock is anchored at the *accept* timestamp, so `start_ns: 0`
//! is the moment the connection was accepted and the root `request`
//! span's children expose queue wait directly. Finished traces land in a
//! bounded [`TraceRecorder`] behind `GET /debug/traces`, with slow ones
//! (wall time ≥ `slow_ms`) retained preferentially behind
//! `GET /debug/slow`. The trace id is echoed back in the response's
//! `X-Swope-Trace` header in canonical 16-hex-digit form.

use std::fs::OpenOptions;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use swope_cluster::{probe, serve_connection, ClusterStats, PeerTimeouts, MAGIC};
use swope_columnar::Dataset;
use swope_core::{gather_stats, ComposedObserver, Executor};
use swope_obs::json::Json;
use swope_obs::trace::{SpanSink, TraceId, TraceObserver, TraceRecord, TraceRecorder};

use crate::cache::ResultCache;
use crate::http::{read_request, HttpError, Request, Response};
use crate::metrics::{ServerMetrics, TraceCounters};
use crate::pool::{QueueWatcher, WorkerPool};
use crate::query::{cache_key, parse_spec, run_query, run_query_cluster, ClusterTarget, QuerySpec};
use crate::registry::DatasetRegistry;
use crate::signal;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub threads: usize,
    /// Bounded queue of accepted-but-unserved connections; beyond this the
    /// server sheds with 503.
    pub queue_capacity: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Maximum time a request may wait in the queue before a worker picks
    /// it up; older requests are answered 503 without running.
    pub deadline: Duration,
    /// Per-connection read timeout while parsing the request.
    pub read_timeout: Duration,
    /// Maximum accepted request-body size.
    pub max_body_bytes: usize,
    /// Support cap applied to datasets at load (the CLI's default 1000).
    pub max_support: u32,
    /// Install SIGINT/SIGTERM handlers and honour them in the accept loop.
    pub handle_signals: bool,
    /// Threads in the process-wide execution pool that queries asking for
    /// `threads > 1` share (`<= 1` disables the pool entirely). The pool
    /// is built once at bind time and reused by every query, so no query
    /// pays thread-spawn latency. Defaults to the machine's available
    /// parallelism.
    pub exec_threads: usize,
    /// Trace every query request (otherwise only requests carrying an
    /// `X-Swope-Trace` header are traced). Also enables the storage
    /// layer's gather timing, so traces include `store_gather` spans.
    pub trace: bool,
    /// Wall-time threshold above which a traced request is retained in
    /// the slow-query flight recorder (`GET /debug/slow`).
    pub slow_ms: u64,
    /// Append one logfmt line per served request to this file.
    pub access_log: Option<String>,
    /// Peer shard-servers (`--peer host:port`, repeatable). When
    /// non-empty this server is a cluster *coordinator*: every `/query/*`
    /// is fanned out over the exact count-merge protocol and answered
    /// from the union of the peers' datasets, laid end to end in this
    /// order. Empty means single-box operation (the default). Any server
    /// — coordinator or not — also answers the binary shard protocol on
    /// its HTTP port (connections are sniffed by the `SWPC` magic).
    pub peers: Vec<String>,
    /// TCP connect deadline per peer (coordinator side).
    pub peer_connect_timeout: Duration,
    /// Read/write deadline per protocol frame (coordinator side). Bounds
    /// every wait on a peer, so a killed peer degrades to a one-line 503
    /// instead of a hung worker.
    pub peer_io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            deadline: Duration::from_secs(10),
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            max_support: 1000,
            handle_signals: false,
            exec_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            trace: false,
            slow_ms: 250,
            access_log: None,
            peers: Vec::new(),
            peer_connect_timeout: Duration::from_secs(2),
            peer_io_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-request context threaded from the accept loop into routing: when
/// the connection was accepted (the traced clock's zero point) and
/// whether tracing is on for everyone or only header-opt-in requests.
struct RequestContext {
    accepted_at: Instant,
    trace_default: bool,
}

/// State shared by the accept loop, the workers, and [`ServerHandle`]s.
struct Shared {
    registry: DatasetRegistry,
    cache: ResultCache,
    metrics: ServerMetrics,
    /// Process-wide execution pool handle; queries with `threads > 1`
    /// clone this (sharing the parked workers), `threads <= 1` runs
    /// inline on the HTTP worker.
    exec: Executor,
    /// Flight recorder of finished traces behind `/debug/traces` and
    /// `/debug/slow`.
    recorder: TraceRecorder,
    /// Open access-log writer; one logfmt line per parsed request,
    /// flushed per line so `tail -f` works.
    access_log: Option<Mutex<BufWriter<std::fs::File>>>,
    /// Wire/merge counters shared by the coordinator path and incoming
    /// peer sessions, exported as `swope_cluster_*` families.
    cluster_stats: Arc<ClusterStats>,
    /// Coordinator fan-out target; `None` when serving single-box.
    cluster: Option<ClusterTarget>,
    stop: AtomicBool,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: Arc<ServerConfig>,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the accept loop to stop; `run` drains queued work and returns.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }
}

impl Server {
    /// Binds the listen socket (nonblocking, so the accept loop can poll
    /// shutdown flags), opens the access log if configured, and builds
    /// the shared state.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let access_log = match &config.access_log {
            Some(path) => {
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                Some(Mutex::new(BufWriter::new(file)))
            }
            None => None,
        };
        if config.trace {
            // Gather timing is process-global (it runs on exec workers far
            // below any request context); flip it on once at startup.
            gather_stats::set_enabled(true);
        }
        let cluster_stats = Arc::new(ClusterStats::new());
        let cluster = if config.peers.is_empty() {
            None
        } else {
            // A coordinator must not come up pointing at a dead fleet:
            // dial every peer once and learn the union size.
            let timeouts =
                PeerTimeouts { connect: config.peer_connect_timeout, io: config.peer_io_timeout };
            let probed = probe(&config.peers, &timeouts, &cluster_stats)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            Some(ClusterTarget {
                addrs: config.peers.clone(),
                timeouts,
                union_rows: probed.union_rows,
            })
        };
        let shared = Arc::new(Shared {
            registry: DatasetRegistry::new(config.max_support),
            cache: ResultCache::new(config.cache_capacity),
            metrics: ServerMetrics::new(),
            exec: Executor::new(config.exec_threads),
            recorder: TraceRecorder::with_slow_ms(config.slow_ms),
            access_log,
            cluster_stats,
            cluster,
            stop: AtomicBool::new(false),
        });
        Ok(Self { listener, config: Arc::new(config), shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The dataset registry, for preloading datasets before `run`.
    pub fn registry(&self) -> &DatasetRegistry {
        &self.shared.registry
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shut down, then drains queued connections and returns.
    pub fn run(self) {
        if self.config.handle_signals {
            signal::install();
        }
        let pool = WorkerPool::new(self.config.threads, self.config.queue_capacity);
        let watcher = pool.watcher();
        loop {
            if self.shared.stop.load(Ordering::Acquire)
                || (self.config.handle_signals && signal::signalled())
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.metrics.record_request();
                    // Sole producer: depth() vs capacity is an exact
                    // admission check, and shedding here keeps the stream
                    // out of the (move-only) job closure.
                    if watcher.depth() >= self.config.queue_capacity {
                        shed(stream, &self.shared.metrics);
                        continue;
                    }
                    let shared = Arc::clone(&self.shared);
                    let config = Arc::clone(&self.config);
                    let watcher = watcher.clone();
                    let accepted_at = Instant::now();
                    let _ = pool.try_execute(move || {
                        handle_connection(stream, accepted_at, &shared, &watcher, &config);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        pool.shutdown();
    }
}

/// Answers an over-capacity connection 503 on the accept thread.
fn shed(stream: TcpStream, metrics: &ServerMetrics) {
    metrics.record_rejected();
    let resp =
        Response::error(503, "server overloaded, retry shortly").with_header("Retry-After", "1");
    write_and_close(stream, &resp);
    metrics.record_response(503, 0);
}

/// Writes `resp`, half-closes the write side, and drains unread request
/// bytes. Closing with unread data in the receive queue makes the kernel
/// send RST and discard the in-flight response, so endpoints that answer
/// without reading the request (shedding, expired deadlines, parse
/// errors) must drain before dropping the stream.
fn write_and_close(mut stream: TcpStream, resp: &Response) {
    let _ = stream.set_nonblocking(false);
    let _ = resp.write_to(&mut stream);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Nonblocking: empty what has already arrived without waiting for the
    // peer's FIN (a worker must not stall on a lingering client).
    let _ = stream.set_nonblocking(true);
    let mut scratch = [0u8; 4096];
    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {}
}

/// One dequeued connection: deadline check, parse, route, respond.
fn handle_connection(
    stream: TcpStream,
    accepted_at: Instant,
    shared: &Shared,
    watcher: &QueueWatcher,
    config: &ServerConfig,
) {
    if accepted_at.elapsed() > config.deadline {
        shared.metrics.record_deadline_expired();
        let resp = Response::error(503, "request deadline expired while queued")
            .with_header("Retry-After", "1");
        write_and_close(stream, &resp);
        shared.metrics.record_response(503, accepted_at.elapsed().as_micros() as u64);
        return;
    }
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // One port speaks both protocols: shard-protocol connections open
    // with the `SWPC` frame magic, which no HTTP method line can start
    // with, so peeking four bytes cleanly splits the two.
    if peeks_cluster_magic(&stream) {
        serve_peer_session(stream, shared, config);
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader, config.max_body_bytes) {
        Ok(req) => {
            let ctx = RequestContext { accepted_at, trace_default: config.trace };
            let resp = route(&req, shared, watcher, &ctx);
            let micros = accepted_at.elapsed().as_micros() as u64;
            let dataset = req.param("dataset").unwrap_or("-");
            shared.metrics.record_labelled(endpoint_label(&req.path), dataset, micros);
            log_access(shared, &req, &resp, micros);
            resp
        }
        Err(HttpError::ConnectionClosed) => return,
        Err(HttpError::Io(_)) => return,
        Err(e @ HttpError::BodyTooLarge { .. }) => Response::error(413, &e.to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    };
    write_and_close(stream, &response);
    shared.metrics.record_response(response.status, accepted_at.elapsed().as_micros() as u64);
}

/// Whether the connection's first bytes are the shard-protocol magic.
/// `peek` never consumes, so an HTTP request continues to parse normally
/// after a `false`. Short reads (the client sent fewer than four bytes so
/// far) retry until the prefix diverges, four bytes arrive, or the read
/// timeout trips.
fn peeks_cluster_magic(stream: &TcpStream) -> bool {
    let mut buf = [0u8; 4];
    loop {
        match stream.peek(&mut buf) {
            Ok(0) => return false,
            Ok(n) if buf[..n] != MAGIC[..n] => return false,
            Ok(n) if n >= 4 => return true,
            Ok(_) => std::thread::sleep(Duration::from_millis(1)),
            Err(_) => return false,
        }
    }
}

/// Answers one shard-protocol session on the HTTP port: this server acts
/// as a *peer*, counting over its registered datasets for a remote
/// coordinator. The empty dataset name resolves to the sole registered
/// dataset (the common one-dataset peer), names resolve through the
/// registry.
fn serve_peer_session(mut stream: TcpStream, shared: &Shared, config: &ServerConfig) {
    // Peer counting can far outlast an HTTP parse; give the session the
    // coordinator-facing I/O deadline instead of the HTTP read timeout.
    let _ = stream.set_read_timeout(Some(config.peer_io_timeout));
    let _ = stream.set_write_timeout(Some(config.peer_io_timeout));
    let _ = stream.set_nodelay(true);
    let resolve = |name: &str| {
        if name.is_empty() {
            let all = shared.registry.list();
            return match all.as_slice() {
                [only] => Some(Arc::clone(&only.dataset)),
                _ => None,
            };
        }
        shared.registry.get(name).map(|entry| Arc::clone(&entry.dataset))
    };
    serve_connection(&mut stream, &resolve, &shared.cluster_stats);
}

/// The fixed label vocabulary for per-endpoint latency families — a
/// closed set so an attacker probing random paths cannot mint metric
/// label values (those all collapse into `other`/`query_other`).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/datasets" => "datasets",
        "/debug/traces" => "debug_traces",
        "/debug/slow" => "debug_slow",
        _ if path.starts_with("/query/") => match &path["/query/".len()..] {
            "entropy-topk" => "query_entropy_top_k",
            "entropy-filter" => "query_entropy_filter",
            "mi-topk" => "query_mi_top_k",
            "mi-filter" => "query_mi_filter",
            "entropy-profile" => "query_entropy_profile",
            "mi-profile" => "query_mi_profile",
            _ => "query_other",
        },
        _ => "other",
    }
}

/// Appends one logfmt line for a served request and flushes it.
fn log_access(shared: &Shared, req: &Request, resp: &Response, micros: u64) {
    let Some(log) = &shared.access_log else { return };
    let ts = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let header = |name: &str| {
        resp.extra_headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str()).unwrap_or("-")
    };
    let line = format!(
        "ts={ts} method={} path={} status={} bytes={} dur_us={micros} trace={} cache={}\n",
        req.method,
        req.path,
        resp.status,
        resp.body.len(),
        header("X-Swope-Trace"),
        header("X-Swope-Cache"),
    );
    if let Ok(mut w) = log.lock() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Dispatches a parsed request to an endpoint.
fn route(req: &Request, shared: &Shared, watcher: &QueueWatcher, ctx: &RequestContext) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared, watcher),
        ("GET", "/metrics") => Response::text(
            200,
            shared.metrics.render_prometheus(
                &shared.cache,
                watcher.depth(),
                shared.registry.len(),
                shared.exec.stats(),
                shared.registry.store_stats(),
                shared.registry.sketch_stats(),
                TraceCounters {
                    recorded: shared.recorder.recorded_total(),
                    slow: shared.recorder.slow_total(),
                },
                shared.cluster.as_ref().map(|c| (c.addrs.len() as u64, c.union_rows)),
                shared.cluster_stats.snapshot(),
            ),
        ),
        ("GET", "/datasets") => list_datasets(shared),
        ("POST", "/datasets") => load_dataset(req, shared),
        ("GET", "/debug/traces") => debug_listing(req, shared, false),
        ("GET", "/debug/slow") => debug_listing(req, shared, true),
        ("GET", path) if path.starts_with("/query/") => {
            serve_query(&path["/query/".len()..], req, shared, ctx)
        }
        (_, "/healthz" | "/metrics" | "/datasets" | "/debug/traces" | "/debug/slow") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) if path.starts_with("/query/") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => Response::error(404, &format!("no such endpoint {path:?}")),
    }
}

/// `GET /debug/traces` / `GET /debug/slow`: the retained ring, newest
/// `?n=` traces only when given, always under the recorder's byte cap.
fn debug_listing(req: &Request, shared: &Shared, slow: bool) -> Response {
    let n = match req.param("n") {
        None => usize::MAX,
        Some(raw) => match raw.parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                return Response::error(
                    400,
                    &format!("malformed value {raw:?} for parameter \"n\""),
                )
            }
        },
    };
    let body = if slow { shared.recorder.slow_json_n(n) } else { shared.recorder.recent_json_n(n) };
    Response::json(200, body)
}

fn healthz(shared: &Shared, watcher: &QueueWatcher) -> Response {
    let body = format!(
        "{{\"status\":\"ok\",\"datasets\":{},\"queue_depth\":{}}}",
        shared.registry.len(),
        watcher.depth()
    );
    Response::json(200, body)
}

fn list_datasets(shared: &Shared) -> Response {
    let mut body = String::from("{\"datasets\":[");
    for (i, entry) in shared.registry.list().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&entry.describe_json());
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `POST /datasets` with body `{"path": "...", "name": "..."}` (`name`
/// optional — defaults to the file stem).
fn load_dataset(req: &Request, shared: &Shared) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "request body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("request body is not JSON: {e}")),
    };
    let Some(path) = parsed.get("path").and_then(|v| v.as_str().map(str::to_owned)) else {
        return Response::error(400, "body must contain a string \"path\" field");
    };
    let name = parsed.get("name").and_then(|v| v.as_str().map(str::to_owned));
    let entry = match name {
        Some(name) => match Dataset::from_path(&path) {
            Ok(ds) => Ok(shared.registry.insert(&name, ds)),
            Err(e) => Err(format!("loading {path}: {e}")),
        },
        None => shared.registry.load_path(&path),
    };
    match entry {
        Ok(entry) => Response::json(201, entry.describe_json()),
        Err(msg) => Response::error(422, &msg),
    }
}

/// `GET /query/<shape>`: cache lookup, then the adaptive loop on a miss.
/// Traced when the server traces by default or the request carries an
/// `X-Swope-Trace` header.
fn serve_query(segment: &str, req: &Request, shared: &Shared, ctx: &RequestContext) -> Response {
    let spec = match parse_spec(segment, req) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    let header = req.header("x-swope-trace");
    if !(ctx.trace_default || header.is_some()) {
        return execute_query(&spec, shared, None);
    }
    // A malformed header value still gets a trace — just under a fresh id.
    let trace_id = header.and_then(TraceId::parse).unwrap_or_else(TraceId::next_seeded);
    let sink = SpanSink::anchored(trace_id, ctx.accepted_at);
    let root = sink.open_at("request", None, 0);
    sink.set_items(root, req.body.len() as u64);
    // Everything between accept and this point: queue wait + parsing.
    sink.record("queue_wait", Some(root), 0, sink.now_ns(), 0, 0);
    let response = execute_query(&spec, shared, Some((&sink, root)));
    sink.close(root);
    let wall_ns = sink.now_ns();
    let (spans, dropped_spans) = sink.drain();
    let cache = response
        .extra_headers
        .iter()
        .find(|(k, _)| k == "X-Swope-Cache")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "-".into());
    shared.recorder.record(TraceRecord {
        trace_id: sink.trace_id().to_string(),
        endpoint: endpoint_label(&req.path).to_owned(),
        dataset: spec.dataset.clone(),
        status: response.status,
        cache,
        wall_ns,
        dropped_spans,
        spans,
    });
    response.with_header("X-Swope-Trace", &sink.trace_id().to_string())
}

/// Runs a parsed query spec: registry lookup, cache, then the adaptive
/// loop. With a trace attached, records `cache_lookup`, the query's span
/// tree (via [`TraceObserver`]), `exec_dispatch` spans from the pooled
/// executor, and an aggregate `store_gather` span from the storage
/// layer's global gather counters (exact when one query runs at a time;
/// approximate under concurrent traced queries).
fn execute_query(
    spec: &QuerySpec,
    shared: &Shared,
    trace: Option<(&Arc<SpanSink>, u32)>,
) -> Response {
    if shared.cluster.is_some() {
        return execute_query_cluster(spec, shared, trace);
    }
    let Some(entry) = shared.registry.get(&spec.dataset) else {
        return Response::error(404, &format!("no dataset named {:?} is loaded", spec.dataset));
    };
    let key = cache_key(spec, entry.generation);
    let lookup = trace.map(|(sink, root)| sink.open("cache_lookup", Some(root)));
    let cached = shared.cache.get(&key);
    if let (Some((sink, _)), Some(span)) = (trace, lookup) {
        sink.close(span);
    }
    if let Some(body) = cached {
        return Response::json(200, body.as_str()).with_header("X-Swope-Cache", "hit");
    }
    // Single-threaded queries run inline on the HTTP worker; anything
    // else shares the process-wide pool. Either way the answer bytes are
    // identical (the loops are executor-invariant), so cached bodies stay
    // valid across the choice — and so does tracing, which is purely
    // observational (enforced by `core/tests/trace_invariance.rs`).
    let exec = if spec.threads <= 1 { Executor::sequential() } else { shared.exec.clone() };
    let result = match trace {
        None => run_query(&entry, spec, &exec, &mut &shared.metrics.registry),
        Some((sink, root)) => {
            let exec = exec.with_trace(Arc::clone(sink), root);
            let mut obs = ComposedObserver::new(
                TraceObserver::new(Arc::clone(sink), Some(root)),
                &shared.metrics.registry,
            );
            let start_ns = sink.now_ns();
            let before = gather_stats::snapshot();
            let result = run_query(&entry, spec, &exec, &mut obs);
            let delta = gather_stats::snapshot().since(before);
            if delta.calls > 0 {
                sink.record(
                    "store_gather",
                    Some(root),
                    start_ns,
                    start_ns + delta.nanos,
                    0,
                    delta.rows,
                );
            }
            result
        }
    };
    match result {
        Ok(body) => {
            let body = Arc::new(body);
            shared.cache.put(key, Arc::clone(&body));
            Response::json(200, body.as_str()).with_header("X-Swope-Cache", "miss")
        }
        Err((status, msg)) => Response::error(status, &msg),
    }
}

/// The coordinator flavour of [`execute_query`]: same cache and tracing
/// plumbing, but the answer comes from fanning the query over the peer
/// fleet. Cluster datasets live on the (static) peers, so bodies cache
/// under the pinned cluster generation; a dead or hung peer maps onto a
/// retryable 503, never a hang (every wire wait is deadline-bounded).
fn execute_query_cluster(
    spec: &QuerySpec,
    shared: &Shared,
    trace: Option<(&Arc<SpanSink>, u32)>,
) -> Response {
    let cluster = shared.cluster.as_ref().expect("cluster target configured");
    // The union is immutable for the process lifetime; generation 1
    // matches a fresh single box's first insert, so coordinator bodies
    // diff cleanly against single-box bodies.
    let key = cache_key(spec, 1);
    let lookup = trace.map(|(sink, root)| sink.open("cache_lookup", Some(root)));
    let cached = shared.cache.get(&key);
    if let (Some((sink, _)), Some(span)) = (trace, lookup) {
        sink.close(span);
    }
    if let Some(body) = cached {
        return Response::json(200, body.as_str()).with_header("X-Swope-Cache", "hit");
    }
    let exec = if spec.threads <= 1 { Executor::sequential() } else { shared.exec.clone() };
    let result = match trace {
        None => run_query_cluster(
            cluster,
            &shared.cluster_stats,
            spec,
            &exec,
            &mut &shared.metrics.registry,
        ),
        Some((sink, root)) => {
            let exec = exec.with_trace(Arc::clone(sink), root);
            let mut obs = ComposedObserver::new(
                TraceObserver::new(Arc::clone(sink), Some(root)),
                &shared.metrics.registry,
            );
            run_query_cluster(cluster, &shared.cluster_stats, spec, &exec, &mut obs)
        }
    };
    match result {
        Ok(body) => {
            let body = Arc::new(body);
            shared.cache.put(key, Arc::clone(&body));
            Response::json(200, body.as_str()).with_header("X-Swope-Cache", "miss")
        }
        Err((status, msg)) => {
            let resp = Response::error(status, &msg);
            if status == 503 {
                resp.with_header("Retry-After", "1")
            } else {
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::DatasetBuilder;

    fn shared_with_dataset() -> (Shared, QueueWatcher) {
        let shared = Shared {
            registry: DatasetRegistry::new(1000),
            cache: ResultCache::new(8),
            metrics: ServerMetrics::new(),
            exec: Executor::new(2),
            recorder: TraceRecorder::with_slow_ms(0),
            access_log: None,
            cluster_stats: Arc::new(ClusterStats::new()),
            cluster: None,
            stop: AtomicBool::new(false),
        };
        let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
        for i in 0..200u32 {
            b.push_row(&[format!("v{}", i % 8), format!("w{}", i % 2)]).unwrap();
        }
        shared.registry.insert("t", b.finish());
        let pool = WorkerPool::new(1, 1);
        let watcher = pool.watcher();
        pool.shutdown();
        (shared, watcher)
    }

    fn ctx() -> RequestContext {
        RequestContext { accepted_at: Instant::now(), trace_default: false }
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_owned(), crate::http::parse_query(q)),
            None => (path.to_owned(), Vec::new()),
        };
        Request { method: "GET".into(), path, query, headers: Vec::new(), body: Vec::new() }
    }

    #[test]
    fn routes_cover_ops_endpoints() {
        let (shared, watcher) = shared_with_dataset();
        assert_eq!(route(&get("/healthz"), &shared, &watcher, &ctx()).status, 200);
        let metrics = route(&get("/metrics"), &shared, &watcher, &ctx());
        assert_eq!(metrics.status, 200);
        assert!(String::from_utf8(metrics.body.clone())
            .unwrap()
            .contains("swope_http_requests_total"));
        assert_eq!(route(&get("/datasets"), &shared, &watcher, &ctx()).status, 200);
        assert_eq!(route(&get("/nope"), &shared, &watcher, &ctx()).status, 404);
        let mut del = get("/healthz");
        del.method = "DELETE".into();
        assert_eq!(route(&del, &shared, &watcher, &ctx()).status, 405);
    }

    #[test]
    fn query_route_caches_and_errors() {
        let (shared, watcher) = shared_with_dataset();
        let req = get("/query/entropy-topk?dataset=t&k=1");
        let first = route(&req, &shared, &watcher, &ctx());
        assert_eq!(first.status, 200);
        assert!(first.extra_headers.iter().any(|(_, v)| v == "miss"));
        let second = route(&req, &shared, &watcher, &ctx());
        assert!(second.extra_headers.iter().any(|(_, v)| v == "hit"));
        assert_eq!(first.body, second.body);
        assert_eq!(
            route(&get("/query/entropy-topk?dataset=t"), &shared, &watcher, &ctx()).status,
            400
        );
        assert_eq!(
            route(&get("/query/entropy-topk?dataset=gone&k=1"), &shared, &watcher, &ctx()).status,
            404
        );
        assert_eq!(route(&get("/query/bogus?dataset=t"), &shared, &watcher, &ctx()).status, 400);
    }

    #[test]
    fn post_datasets_round_trip() {
        let (shared, watcher) = shared_with_dataset();
        let dir = std::env::temp_dir().join("swope-server-route-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extra.swop");
        let mut b = DatasetBuilder::new(vec!["x".into()]);
        b.push_row(&["1".to_string()]).unwrap();
        swope_columnar::snapshot::write_file(&b.finish(), &path).unwrap();
        let body = format!("{{\"path\":{:?}}}", path.to_str().unwrap());
        let req = Request {
            method: "POST".into(),
            path: "/datasets".into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.into_bytes(),
        };
        assert_eq!(route(&req, &shared, &watcher, &ctx()).status, 201);
        assert!(shared.registry.get("extra").is_some());
        let bad = Request {
            method: "POST".into(),
            path: "/datasets".into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: b"{\"path\":\"/no/such.swop\"}".to_vec(),
        };
        assert_eq!(route(&bad, &shared, &watcher, &ctx()).status, 422);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_query_records_span_tree_and_echoes_id() {
        let (shared, watcher) = shared_with_dataset();
        let mut req = get("/query/entropy-topk?dataset=t&k=1");
        req.headers.push(("x-swope-trace".into(), "deadbeef".into()));
        let resp = route(&req, &shared, &watcher, &ctx());
        assert_eq!(resp.status, 200);
        assert!(
            resp.extra_headers.iter().any(|(k, v)| k == "X-Swope-Trace" && v == "00000000deadbeef"),
            "trace id not echoed canonically: {:?}",
            resp.extra_headers
        );
        assert_eq!(shared.recorder.recorded_total(), 1);
        let json = shared.recorder.recent_json();
        for name in [
            "request",
            "queue_wait",
            "cache_lookup",
            "query:entropy_top_k",
            "sample_grow",
            "ingest",
            "update_bounds",
            "decide",
        ] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "missing {name} in {json}");
        }
        assert!(json.contains("\"trace_id\":\"00000000deadbeef\""));
        assert!(json.contains("\"endpoint\":\"query_entropy_top_k\""));
        // Cache hits are traced too, tagged with the outcome.
        let hit = route(&req, &shared, &watcher, &ctx());
        assert!(hit.extra_headers.iter().any(|(_, v)| v == "hit"));
        assert_eq!(shared.recorder.recorded_total(), 2);
        assert!(shared.recorder.recent_json().contains("\"cache\":\"hit\""));
        // With slow_ms = 0 every traced request lands in the flight recorder.
        assert_eq!(shared.recorder.slow_total(), 2);
        assert!(shared.recorder.slow_json().contains("\"trace_id\":\"00000000deadbeef\""));
        // Untraced requests leave no record.
        let plain = route(&get("/query/entropy-topk?dataset=t&k=2"), &shared, &watcher, &ctx());
        assert_eq!(plain.status, 200);
        assert!(plain.extra_headers.iter().all(|(k, _)| k != "X-Swope-Trace"));
        assert_eq!(shared.recorder.recorded_total(), 2);
    }

    #[test]
    fn trace_default_traces_without_header() {
        let (shared, watcher) = shared_with_dataset();
        let req = get("/query/entropy-profile?dataset=t");
        let ctx = RequestContext { accepted_at: Instant::now(), trace_default: true };
        let resp = route(&req, &shared, &watcher, &ctx);
        assert_eq!(resp.status, 200);
        assert!(resp.extra_headers.iter().any(|(k, _)| k == "X-Swope-Trace"));
        assert_eq!(shared.recorder.recorded_total(), 1);
        assert!(shared.recorder.recent_json().contains("query:entropy_profile"));
    }

    #[test]
    fn debug_endpoints_serve_json_and_reject_writes() {
        let (shared, watcher) = shared_with_dataset();
        for path in ["/debug/traces", "/debug/slow"] {
            let resp = route(&get(path), &shared, &watcher, &ctx());
            assert_eq!(resp.status, 200);
            let body = String::from_utf8(resp.body).unwrap();
            let v = Json::parse(&body).unwrap();
            assert_eq!(v.get("recorded_total").unwrap().as_u64(), Some(0));
            let mut post = get(path);
            post.method = "POST".into();
            assert_eq!(route(&post, &shared, &watcher, &ctx()).status, 405);
        }
    }

    #[test]
    fn endpoint_labels_are_a_closed_vocabulary() {
        assert_eq!(endpoint_label("/healthz"), "healthz");
        assert_eq!(endpoint_label("/query/entropy-topk"), "query_entropy_top_k");
        assert_eq!(endpoint_label("/query/mi-profile"), "query_mi_profile");
        assert_eq!(endpoint_label("/query/../etc/passwd"), "query_other");
        assert_eq!(endpoint_label("/debug/slow"), "debug_slow");
        assert_eq!(endpoint_label("/anything-else"), "other");
    }
}
