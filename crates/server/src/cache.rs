//! LRU cache of serialized query results.
//!
//! Keys encode `(dataset id + generation, query shape, params, seed)` —
//! see `query::cache_key` — so a hit is guaranteed to be byte-identical
//! to re-running the query: SWOPE queries are deterministic given the
//! dataset and the sampling seed, and replacing a dataset bumps its
//! generation, which changes every key that referenced it.
//!
//! Eviction is least-recently-used via a logical clock: each access
//! stamps the entry, and inserting past capacity removes the entry with
//! the oldest stamp (an `O(capacity)` scan — capacities are hundreds, not
//! millions). Hit/miss/eviction counters are atomic so the metrics
//! endpoint reads them without taking the map lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    body: Arc<String>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    clock: u64,
}

/// A bounded, thread-safe LRU map from cache key to response body.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries; `0` disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), clock: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting the least-recently-used entry
    /// if the cache is at capacity.
    pub fn put(&self, key: String, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.insert(key, Entry { body, last_used: clock });
        if inner.map.len() > self.capacity {
            if let Some(oldest) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn hit_after_put_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get("a").is_none());
        cache.put("a".into(), body("1"));
        assert_eq!(cache.get("a").unwrap().as_str(), "1");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.put("a".into(), body("1"));
        cache.put("b".into(), body("2"));
        assert!(cache.get("a").is_some()); // refresh "a"; "b" is now oldest
        cache.put("c".into(), body("3"));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.put("a".into(), body("1"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn replacing_a_key_keeps_len_bounded() {
        let cache = ResultCache::new(2);
        cache.put("a".into(), body("1"));
        cache.put("a".into(), body("2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap().as_str(), "2");
    }
}
