//! Server-level metrics: HTTP traffic counters layered on top of the
//! query-level [`MetricsRegistry`].
//!
//! The embedded registry is fed directly by the adaptive query loops (it
//! is all atomics, so workers observe through a shared reference), while
//! the HTTP counters here track what happened *around* those queries:
//! requests seen, responses by status class, load-shed rejections,
//! deadline expiries, and request latency. [`ServerMetrics::render_prometheus`]
//! concatenates both layers plus cache and registry gauges into one
//! exposition document for `GET /metrics`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use swope_cluster::ClusterSnapshot;
use swope_columnar::PagerSnapshot;
use swope_core::ExecStats;
use swope_obs::{names, Histogram, MetricsRegistry};

use crate::cache::ResultCache;
use crate::registry::{SketchStats, StoreStats};

/// Response status classes tracked by [`ServerMetrics`].
const CLASSES: [&str; 4] = ["2xx", "3xx", "4xx", "5xx"];

/// Cap on distinct `(endpoint, dataset)` latency families; past it new
/// pairs collapse into `("other", "other")` so a client inventing dataset
/// names cannot grow the scrape without bound.
const MAX_LABELLED: usize = 64;

/// Atomic HTTP-layer counters plus the shared query-metrics registry.
pub struct ServerMetrics {
    /// Query-level aggregates; the adaptive loops observe into this.
    pub registry: MetricsRegistry,
    requests: AtomicU64,
    responses: [AtomicU64; 4],
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    request_micros: Histogram,
    /// Per-`(endpoint, dataset)` latency histograms. A `Mutex` (not a
    /// lock-free map) is fine here: the critical section is one BTreeMap
    /// lookup, and the interesting work per request dwarfs it.
    labelled_micros: Mutex<BTreeMap<(String, String), Histogram>>,
    /// Connection-state gauges `[open, idle, reading, writing]`, set
    /// wholesale by the event loop once per tick.
    conn_states: [AtomicU64; 4],
    conn_accepted: AtomicU64,
    conn_keepalive_reuses: AtomicU64,
    conn_timeouts: AtomicU64,
    /// Per-tenant `(requests, throttled)` counters; tenant keys are user
    /// input, so they are sanitized and capped like the latency labels.
    tenants: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl ServerMetrics {
    /// Fresh metrics with all counters at zero.
    pub fn new() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            requests: AtomicU64::new(0),
            responses: std::array::from_fn(|_| AtomicU64::new(0)),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            // Latencies span cache hits (~tens of µs) to large adaptive
            // scans; powers of four from 64 µs to ~4.3 s.
            request_micros: Histogram::new((3..=16).map(|i| 1u64 << (2 * i)).collect()),
            labelled_micros: Mutex::new(BTreeMap::new()),
            conn_states: std::array::from_fn(|_| AtomicU64::new(0)),
            conn_accepted: AtomicU64::new(0),
            conn_keepalive_reuses: AtomicU64::new(0),
            conn_timeouts: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records an accepted request (before routing).
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed response with its status code and end-to-end
    /// duration in microseconds.
    pub fn record_response(&self, status: u16, micros: u64) {
        let idx = match status {
            200..=299 => 0,
            300..=399 => 1,
            400..=499 => 2,
            _ => 3,
        };
        self.responses[idx].fetch_add(1, Ordering::Relaxed);
        self.request_micros.observe(micros);
    }

    /// Records the same response duration under its `(endpoint, dataset)`
    /// labels. `endpoint` comes from the fixed route vocabulary and
    /// `dataset` from the query's `dataset` parameter (`-` elsewhere);
    /// both are sanitized to label-safe characters and the family count is
    /// capped at [`MAX_LABELLED`].
    pub fn record_labelled(&self, endpoint: &str, dataset: &str, micros: u64) {
        let key = (sanitize_label(endpoint), sanitize_label(dataset));
        let mut map = self.labelled_micros.lock().unwrap();
        let key = if map.contains_key(&key) || map.len() < MAX_LABELLED {
            key
        } else {
            ("other".into(), "other".into())
        };
        map.entry(key)
            .or_insert_with(|| Histogram::new((3..=16).map(|i| 1u64 << (2 * i)).collect()))
            .observe(micros);
    }

    /// Records a load-shed rejection (503 from the accept loop).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request whose deadline expired while queued.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the connection-state gauges wholesale (called once per event
    /// loop tick with the current census).
    pub fn set_conn_states(&self, open: u64, idle: u64, reading: u64, writing: u64) {
        for (slot, value) in self.conn_states.iter().zip([open, idle, reading, writing]) {
            slot.store(value, Ordering::Relaxed);
        }
    }

    /// Records one accepted connection.
    pub fn record_conn_accepted(&self) {
        self.conn_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request served on an already-used keep-alive socket.
    pub fn record_keepalive_reuse(&self) {
        self.conn_keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection killed by the read/write timeout.
    pub fn record_conn_timeout(&self) {
        self.conn_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admission decision for `tenant` (`throttled` when the
    /// request was answered 429). Tenant keys are user input: sanitized,
    /// and capped at [`MAX_LABELLED`] distinct values (`other` past it).
    pub fn record_tenant(&self, tenant: &str, throttled: bool) {
        let key = sanitize_label(tenant);
        let mut map = self.tenants.lock().unwrap();
        let key =
            if map.contains_key(&key) || map.len() < MAX_LABELLED { key } else { "other".into() };
        let entry = map.entry(key).or_insert((0, 0));
        entry.0 += 1;
        if throttled {
            entry.1 += 1;
        }
    }

    /// Connections accepted so far.
    pub fn conn_accepted_total(&self) -> u64 {
        self.conn_accepted.load(Ordering::Relaxed)
    }

    /// Keep-alive request reuses so far.
    pub fn keepalive_reuses_total(&self) -> u64 {
        self.conn_keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Read/write-timeout kills so far.
    pub fn conn_timeouts_total(&self) -> u64 {
        self.conn_timeouts.load(Ordering::Relaxed)
    }

    /// Requests accepted so far.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Load-shed rejections so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queued-past-deadline expiries so far.
    pub fn deadline_expired_total(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Renders the full `/metrics` document: HTTP counters, cache
    /// counters, live gauges, execution-pool, storage-layer, sketch,
    /// flight-recorder, and cluster stats, then the query-level registry.
    /// `cluster` carries the coordinator's `(peers, union_rows)` gauges
    /// (absent on a single-box server); the wire counters in `wire`
    /// render unconditionally — a peer-only server racks up frames too.
    #[allow(clippy::too_many_arguments)] // one snapshot arg per subsystem
    pub fn render_prometheus(
        &self,
        cache: &ResultCache,
        queue_depth: usize,
        datasets_loaded: usize,
        exec: ExecStats,
        store: StoreStats,
        sketch: SketchStats,
        traces: TraceCounters,
        cluster: Option<(u64, u64)>,
        wire: ClusterSnapshot,
        pager: PagerSnapshot,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE {} counter", names::HTTP_REQUESTS_TOTAL);
        let _ = writeln!(out, "{} {}", names::HTTP_REQUESTS_TOTAL, self.requests_total());
        let _ = writeln!(out, "# TYPE {} counter", names::HTTP_RESPONSES_TOTAL);
        for (i, class) in CLASSES.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}{{class=\"{class}\"}} {}",
                names::HTTP_RESPONSES_TOTAL,
                self.responses[i].load(Ordering::Relaxed)
            );
        }
        for (name, value) in [
            (names::HTTP_REJECTED_TOTAL, self.rejected_total()),
            (names::HTTP_DEADLINE_EXPIRED_TOTAL, self.deadline_expired_total()),
            (names::CACHE_HITS_TOTAL, cache.hits()),
            (names::CACHE_MISSES_TOTAL, cache.misses()),
            (names::CACHE_EVICTIONS_TOTAL, cache.evictions()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in [
            (names::QUEUE_DEPTH, queue_depth as u64),
            (names::DATASETS_LOADED, datasets_loaded as u64),
            (names::EXEC_POOL_WORKERS, exec.workers as u64),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in [
            (names::EXEC_DISPATCHES_TOTAL, exec.dispatches),
            (names::EXEC_CHUNKS_TOTAL, exec.chunks),
            (names::EXEC_ITEMS_TOTAL, exec.items),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in [
            (names::STORE_BYTES_IN_MEMORY, store.bytes_in_memory),
            (names::STORE_BYTES_SAVED, store.bytes_saved()),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE {} gauge", names::STORE_COLUMNS);
        for (width, value) in
            [("u8", store.columns_u8), ("u16", store.columns_u16), ("u32", store.columns_u32)]
        {
            let _ = writeln!(out, "{}{{width=\"{width}\"}} {value}", names::STORE_COLUMNS);
        }
        for (name, value) in
            [(names::SKETCH_BYTES, sketch.bytes), (names::SKETCH_PAGES, sketch.pages)]
        {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE {} gauge", names::SKETCH_COVERAGE);
        let _ = writeln!(out, "{} {:.6}", names::SKETCH_COVERAGE, sketch.coverage());
        for (name, value) in [
            (names::TRACES_RECORDED_TOTAL, traces.recorded),
            (names::SLOW_QUERIES_TOTAL, traces.slow),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        if let Some((peers, union_rows)) = cluster {
            for (name, value) in
                [(names::CLUSTER_PEERS, peers), (names::CLUSTER_UNION_ROWS, union_rows)]
            {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
            }
        }
        for (name, value) in [
            (names::CONN_OPEN, &self.conn_states[0]),
            (names::CONN_IDLE, &self.conn_states[1]),
            (names::CONN_READING, &self.conn_states[2]),
            (names::CONN_WRITING, &self.conn_states[3]),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        }
        for (name, value) in [
            (names::CONN_ACCEPTED_TOTAL, self.conn_accepted_total()),
            (names::CONN_KEEPALIVE_REUSES_TOTAL, self.keepalive_reuses_total()),
            (names::CONN_TIMEOUTS_TOTAL, self.conn_timeouts_total()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        {
            let tenants = self.tenants.lock().unwrap();
            if !tenants.is_empty() {
                let _ = writeln!(out, "# TYPE {} counter", names::TENANT_REQUESTS_TOTAL);
                for (tenant, (requests, _)) in tenants.iter() {
                    let _ = writeln!(
                        out,
                        "{}{{tenant=\"{tenant}\"}} {requests}",
                        names::TENANT_REQUESTS_TOTAL
                    );
                }
                let _ = writeln!(out, "# TYPE {} counter", names::TENANT_THROTTLED_TOTAL);
                for (tenant, (_, throttled)) in tenants.iter() {
                    let _ = writeln!(
                        out,
                        "{}{{tenant=\"{tenant}\"}} {throttled}",
                        names::TENANT_THROTTLED_TOTAL
                    );
                }
            }
        }
        for (name, value) in [
            (names::CLUSTER_QUERIES_TOTAL, wire.queries),
            (names::CLUSTER_MERGES_TOTAL, wire.merges),
            (names::CLUSTER_FRAMES_SENT_TOTAL, wire.frames_sent),
            (names::CLUSTER_FRAMES_RECEIVED_TOTAL, wire.frames_received),
            (names::CLUSTER_BYTES_SENT_TOTAL, wire.bytes_sent),
            (names::CLUSTER_BYTES_RECEIVED_TOTAL, wire.bytes_received),
            (names::CLUSTER_PEER_ERRORS_TOTAL, wire.peer_errors),
            (names::CLUSTER_CONNS_OPENED_TOTAL, wire.conns_opened),
            (names::CLUSTER_CONN_REUSES_TOTAL, wire.conn_reuses),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in [
            (names::PAGER_FAULTS_TOTAL, pager.faults),
            (names::PAGER_EVICTIONS_TOTAL, pager.evictions),
            (names::PAGER_CRC_VALIDATIONS_TOTAL, pager.crc_validations),
            (names::PAGER_DECOMPRESSIONS_TOTAL, pager.decompressions),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE {} counter", names::PAGER_FAULT_SECONDS_TOTAL);
        let _ = writeln!(
            out,
            "{} {:.9}",
            names::PAGER_FAULT_SECONDS_TOTAL,
            pager.fault_nanos as f64 / 1e9
        );
        for (name, value) in [
            (names::PAGER_RESIDENT_BYTES, pager.resident_bytes),
            (names::PAGER_PEAK_RESIDENT_BYTES, pager.peak_resident_bytes),
            (names::PAGER_BUDGET_BYTES, pager.budget_bytes.unwrap_or(0)),
            (names::PAGER_COMPRESSED_PAGES, pager.compressed_pages),
            (names::PAGER_COMPRESSED_BYTES, pager.compressed_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        self.request_micros.render_prometheus(names::HTTP_REQUEST_MICROS, &mut out);
        let _ = writeln!(out, "# TYPE {}_approx_quantile gauge", names::HTTP_REQUEST_MICROS);
        self.request_micros.render_quantiles(names::HTTP_REQUEST_MICROS, "", &mut out);
        {
            let map = self.labelled_micros.lock().unwrap();
            if !map.is_empty() {
                let _ = writeln!(out, "# TYPE {} histogram", names::HTTP_ENDPOINT_MICROS);
                for ((endpoint, dataset), hist) in map.iter() {
                    let labels = format!("endpoint=\"{endpoint}\",dataset=\"{dataset}\"");
                    hist.render_prometheus_labelled(names::HTTP_ENDPOINT_MICROS, &labels, &mut out);
                }
                let _ =
                    writeln!(out, "# TYPE {}_approx_quantile gauge", names::HTTP_ENDPOINT_MICROS);
                for ((endpoint, dataset), hist) in map.iter() {
                    let labels = format!("endpoint=\"{endpoint}\",dataset=\"{dataset}\"");
                    hist.render_quantiles(names::HTTP_ENDPOINT_MICROS, &labels, &mut out);
                }
            }
        }
        out.push_str(&self.registry.render_prometheus());
        out
    }
}

/// Flight-recorder totals passed into the `/metrics` render (the recorder
/// lives beside — not inside — the metrics, so the server snapshots it).
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCounters {
    /// Traces recorded since startup.
    pub recorded: u64,
    /// Traces that crossed the slow threshold since startup.
    pub slow: u64,
}

/// Restricts a label value to Prometheus-safe characters. Endpoint names
/// are a fixed vocabulary already; dataset names are user input and get
/// mapped onto `[A-Za-z0-9_:.-]` (at most 64 chars) so a hostile name
/// cannot break exposition syntax.
fn sanitize_label(value: &str) -> String {
    value
        .chars()
        .take(64)
        .map(
            |c| {
                if c.is_ascii_alphanumeric() || matches!(c, '_' | ':' | '.' | '-') {
                    c
                } else {
                    '_'
                }
            },
        )
        .collect()
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_classes() {
        let m = ServerMetrics::new();
        m.record_request();
        m.record_request();
        m.record_response(200, 120);
        m.record_response(404, 15);
        m.record_rejected();
        m.record_deadline_expired();
        assert_eq!(m.requests_total(), 2);
        assert_eq!(m.rejected_total(), 1);
        assert_eq!(m.deadline_expired_total(), 1);
        let cache = ResultCache::new(4);
        let exec = ExecStats { workers: 2, dispatches: 5, chunks: 9, items: 40 };
        let store = StoreStats {
            bytes_in_memory: 100,
            bytes_unpacked: 400,
            columns_u8: 6,
            columns_u16: 1,
            columns_u32: 0,
        };
        let sketch =
            SketchStats { bytes: 2048, pages: 7, rows_covered: 131072, rows_total: 200000 };
        let text = m.render_prometheus(
            &cache,
            3,
            2,
            exec,
            store,
            sketch,
            TraceCounters { recorded: 4, slow: 1 },
            Some((2, 131072)),
            ClusterSnapshot { queries: 3, ..Default::default() },
            PagerSnapshot {
                faults: 11,
                fault_nanos: 2_500_000_000,
                evictions: 5,
                resident_bytes: 4096,
                budget_bytes: Some(8192),
                ..Default::default()
            },
        );
        assert!(text.contains(&format!("{} 2\n", names::HTTP_REQUESTS_TOTAL)));
        assert!(text.contains(&format!("{}{{class=\"2xx\"}} 1", names::HTTP_RESPONSES_TOTAL)));
        assert!(text.contains(&format!("{}{{class=\"4xx\"}} 1", names::HTTP_RESPONSES_TOTAL)));
        assert!(text.contains(&format!("{} 1\n", names::HTTP_REJECTED_TOTAL)));
        assert!(text.contains(&format!("{} 3\n", names::QUEUE_DEPTH)));
        assert!(text.contains(&format!("{} 2\n", names::DATASETS_LOADED)));
        assert!(text.contains(&format!("{} 2\n", names::EXEC_POOL_WORKERS)));
        assert!(text.contains(&format!("{} 5\n", names::EXEC_DISPATCHES_TOTAL)));
        assert!(text.contains(&format!("{} 9\n", names::EXEC_CHUNKS_TOTAL)));
        assert!(text.contains(&format!("{} 40\n", names::EXEC_ITEMS_TOTAL)));
        assert!(text.contains(&format!("{} 100\n", names::STORE_BYTES_IN_MEMORY)));
        assert!(text.contains(&format!("{} 300\n", names::STORE_BYTES_SAVED)));
        assert!(text.contains(&format!("{}{{width=\"u8\"}} 6", names::STORE_COLUMNS)));
        assert!(text.contains(&format!("{}{{width=\"u16\"}} 1", names::STORE_COLUMNS)));
        assert!(text.contains(&format!("{}{{width=\"u32\"}} 0", names::STORE_COLUMNS)));
        assert!(text.contains(&format!("{} 2048\n", names::SKETCH_BYTES)));
        assert!(text.contains(&format!("{} 7\n", names::SKETCH_PAGES)));
        assert!(text.contains(&format!("{} 0.655360\n", names::SKETCH_COVERAGE)));
        assert!(text.contains(&format!("{}_count 2", names::HTTP_REQUEST_MICROS)));
        assert!(text.contains(&format!("{} 4\n", names::TRACES_RECORDED_TOTAL)));
        assert!(text.contains(&format!("{} 1\n", names::SLOW_QUERIES_TOTAL)));
        assert!(text.contains(&format!("{} 2\n", names::CLUSTER_PEERS)));
        assert!(text.contains(&format!("{} 131072\n", names::CLUSTER_UNION_ROWS)));
        assert!(text.contains(&format!("{} 3\n", names::CLUSTER_QUERIES_TOTAL)));
        assert!(text.contains(&format!("{} 0\n", names::CLUSTER_PEER_ERRORS_TOTAL)));
        // Latency quantile gauges ride along with the histogram.
        assert!(text.contains(&format!(
            "{}_approx_quantile{{quantile=\"0.99\"}}",
            names::HTTP_REQUEST_MICROS
        )));
        // The query-level registry rides along in the same document.
        assert!(text.contains("swope_queries_total"));
    }

    #[test]
    fn conn_and_tenant_families_render() {
        let m = ServerMetrics::new();
        m.set_conn_states(12, 9, 2, 1);
        m.record_conn_accepted();
        m.record_conn_accepted();
        m.record_keepalive_reuse();
        m.record_conn_timeout();
        m.record_tenant("alice", false);
        m.record_tenant("alice", true);
        m.record_tenant("we\"ird", false);
        let text = m.render_prometheus(
            &ResultCache::new(4),
            0,
            0,
            ExecStats::default(),
            StoreStats::default(),
            SketchStats::default(),
            TraceCounters::default(),
            None,
            ClusterSnapshot::default(),
            PagerSnapshot::default(),
        );
        assert!(text.contains(&format!("{} 12\n", names::CONN_OPEN)));
        assert!(text.contains(&format!("{} 9\n", names::CONN_IDLE)));
        assert!(text.contains(&format!("{} 2\n", names::CONN_READING)));
        assert!(text.contains(&format!("{} 1\n", names::CONN_WRITING)));
        assert!(text.contains(&format!("{} 2\n", names::CONN_ACCEPTED_TOTAL)));
        assert!(text.contains(&format!("{} 1\n", names::CONN_KEEPALIVE_REUSES_TOTAL)));
        assert!(text.contains(&format!("{} 1\n", names::CONN_TIMEOUTS_TOTAL)));
        assert!(text.contains(&format!("{}{{tenant=\"alice\"}} 2", names::TENANT_REQUESTS_TOTAL)));
        assert!(text.contains(&format!("{}{{tenant=\"alice\"}} 1", names::TENANT_THROTTLED_TOTAL)));
        // Hostile tenant keys cannot break exposition syntax.
        assert!(
            text.contains(&format!("{}{{tenant=\"we_ird\"}} 1", names::TENANT_REQUESTS_TOTAL)),
            "{text}"
        );
        // Cluster conn-pool counters render with the wire family.
        assert!(text.contains(&format!("{} 0\n", names::CLUSTER_CONNS_OPENED_TOTAL)));
        assert!(text.contains(&format!("{} 0\n", names::CLUSTER_CONN_REUSES_TOTAL)));
    }

    #[test]
    fn tenant_cardinality_is_capped() {
        let m = ServerMetrics::new();
        for i in 0..(MAX_LABELLED + 20) {
            m.record_tenant(&format!("tenant-{i}"), false);
        }
        let text = m.render_prometheus(
            &ResultCache::new(4),
            0,
            0,
            ExecStats::default(),
            StoreStats::default(),
            SketchStats::default(),
            TraceCounters::default(),
            None,
            ClusterSnapshot::default(),
            PagerSnapshot::default(),
        );
        assert!(text.contains(&format!("{}{{tenant=\"other\"}}", names::TENANT_REQUESTS_TOTAL)));
        let families = text.matches(&format!("{}{{", names::TENANT_REQUESTS_TOTAL)).count();
        assert!(families <= MAX_LABELLED + 1, "tenant cardinality exploded: {families}");
    }

    #[test]
    fn labelled_latency_families_render_and_cap() {
        let m = ServerMetrics::new();
        m.record_labelled("query_entropy_top_k", "households", 120);
        m.record_labelled("query_entropy_top_k", "households", 90_000);
        m.record_labelled("healthz", "-", 10);
        // A hostile dataset name cannot break exposition syntax.
        m.record_labelled("query_mi_top_k", "we\"ird{} name", 50);
        let text = m.render_prometheus(
            &ResultCache::new(4),
            0,
            0,
            ExecStats::default(),
            StoreStats::default(),
            SketchStats::default(),
            TraceCounters::default(),
            None,
            ClusterSnapshot::default(),
            PagerSnapshot::default(),
        );
        let fam = names::HTTP_ENDPOINT_MICROS;
        assert!(text.contains(&format!("# TYPE {fam} histogram")));
        assert!(text.contains(&format!(
            "{fam}_count{{endpoint=\"query_entropy_top_k\",dataset=\"households\"}} 2"
        )));
        assert!(text.contains(&format!("{fam}_count{{endpoint=\"healthz\",dataset=\"-\"}} 1")));
        assert!(
            text.contains(&format!(
                "{fam}_sum{{endpoint=\"query_mi_top_k\",dataset=\"we_ird___name\"}} 50"
            )),
            "{text}"
        );
        assert!(text.contains(&format!(
            "{fam}_approx_quantile{{endpoint=\"healthz\",dataset=\"-\",quantile=\"0.5\"}}"
        )));
        // Past the cardinality cap, new pairs collapse into other/other.
        for i in 0..(MAX_LABELLED + 10) {
            m.record_labelled("query_mi_top_k", &format!("ds{i}"), 10);
        }
        let text = m.render_prometheus(
            &ResultCache::new(4),
            0,
            0,
            ExecStats::default(),
            StoreStats::default(),
            SketchStats::default(),
            TraceCounters::default(),
            None,
            ClusterSnapshot::default(),
            PagerSnapshot::default(),
        );
        assert!(text.contains(&format!("{fam}_count{{endpoint=\"other\",dataset=\"other\"}}")));
        let families = text.matches(&format!("{fam}_count{{")).count();
        assert!(families <= MAX_LABELLED + 1, "cardinality exploded: {families}");
    }
}
