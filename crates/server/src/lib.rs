//! # swope-server
//!
//! A long-running, dependency-free query server for SWOPE's adaptive
//! entropy/mutual-information queries, hand-rolled over
//! `std::net::TcpListener` (the workspace builds without crates.io
//! access).
//!
//! The pieces compose like this:
//!
//! * [`event`] — a dependency-free readiness layer: raw-syscall epoll on
//!   Linux, portable `poll(2)` elsewhere, behind one `Poller` trait,
//!   plus the self-pipe workers use to wake the event thread.
//! * [`conn`] — the per-connection state machine (reading → dispatched →
//!   writing → keep-alive idle) with incremental HTTP/1.1 parsing and
//!   pipelining out of one buffer; one thread multiplexes every
//!   connection, so an idle client costs a file descriptor, not a
//!   thread.
//! * [`quota`] — per-tenant token-bucket admission keyed by
//!   `X-Swope-Api-Key` (`429 + Retry-After`), run on the event thread
//!   before a request can occupy a worker or queue slot.
//! * [`registry::DatasetRegistry`] — named, immutable `Arc<Dataset>`
//!   handles loaded at startup or via `POST /datasets`, with a generation
//!   counter so replacement can never serve stale cache entries.
//! * [`pool::WorkerPool`] — a fixed thread count over a bounded queue;
//!   the event thread sheds load with `503 + Retry-After` when the queue
//!   is full, and requests that outlive their queueing deadline are
//!   answered 503 without running.
//! * [`cache::ResultCache`] — an LRU of serialized response bodies keyed
//!   by `(dataset@generation, shape, params, seed)`. Queries are
//!   deterministic, so a hit is byte-identical to re-execution and skips
//!   the adaptive loop entirely.
//! * [`metrics::ServerMetrics`] — HTTP-layer counters stacked on the
//!   query-level [`swope_obs::MetricsRegistry`], all rendered as one
//!   Prometheus document at `GET /metrics`.
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + dataset/queue gauges |
//! | `GET /metrics` | Prometheus exposition text |
//! | `GET /datasets` | registered datasets with per-column stats |
//! | `POST /datasets` | load `{"path": ..., "name"?: ...}` |
//! | `GET /query/entropy-topk` | Algorithm 1 (`dataset`, `k`) |
//! | `GET /query/entropy-filter` | Algorithm 2 (`dataset`, `eta`) |
//! | `GET /query/mi-topk` | Algorithm 3 (`dataset`, `target`, `k`) |
//! | `GET /query/mi-filter` | Algorithm 4 (`dataset`, `target`, `eta`) |
//! | `GET /query/entropy-profile` | all-attribute entropy (`dataset`) |
//! | `GET /query/mi-profile` | all-attribute MI (`dataset`, `target`) |
//! | `GET /debug/traces` | recent request traces (span trees, JSON) |
//! | `GET /debug/slow` | slow-query flight recorder (wall ≥ `slow_ms`) |
//!
//! Query endpoints share optional `epsilon`, `pf`, `seed`, and `threads`
//! parameters with the same defaults as the CLI, so the server is a
//! transport around the exact same computation.
//!
//! Any query request carrying an `X-Swope-Trace` header (or every query,
//! when serving with tracing on) is recorded as a span tree — queue
//! wait, cache lookup, the adaptive loop's phases, pooled exec
//! dispatches, and aggregate store-gather time — retrievable from the
//! `/debug` endpoints; the trace id is echoed back in the response's
//! `X-Swope-Trace` header. See `docs/observability.md` for the span
//! schema and curl recipes.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod conn;
pub mod event;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod query;
pub mod quota;
pub mod registry;
pub mod server;
pub mod signal;

pub use cache::ResultCache;
pub use metrics::ServerMetrics;
pub use pool::WorkerPool;
pub use quota::TenantQuotas;
pub use registry::{DatasetEntry, DatasetRegistry, StoreStats};
pub use server::{Server, ServerConfig, ServerHandle};
