//! Query-endpoint plumbing: parse a `/query/<shape>` request into a
//! [`QuerySpec`], derive its cache key, execute it against a dataset, and
//! serialize the result as JSON.
//!
//! Parameter semantics deliberately mirror the CLI so the server is a
//! drop-in transport: per-shape ε defaults (0.1 entropy top-k, 0.05
//! entropy filter, 0.5 for MI), `p_f` defaulting to the paper's `1/N`,
//! one worker thread, and the library's fixed default seed unless `seed`
//! is given. Floats in responses use the same shortest-round-trip
//! formatting as the JSONL event stream ([`swope_obs::json::f64_into`]),
//! so a served score parses back to the exact bits the query computed —
//! which is what lets integration tests assert bitwise identity with the
//! direct library path.

use std::fmt::Write as _;
use std::sync::Arc;

use swope_cluster::{ClusterStats, PeerPool, PeerTimeouts, RemoteShardSource};
use swope_core::{
    entropy_filter_scoped_exec, entropy_filter_transport, entropy_profile_scoped_exec,
    entropy_profile_transport, entropy_top_k_scoped_exec, entropy_top_k_transport,
    mi_filter_scoped_exec, mi_filter_transport, mi_profile_scoped_exec, mi_profile_transport,
    mi_top_k_scoped_exec, mi_top_k_transport, AttrMeta, AttrScore, Executor, QueryObserver,
    QueryStats, SamplingStrategy, Scope, ShardTransport, SwopeConfig, SwopeError,
};
use swope_obs::json::{escape_into, f64_into};

use crate::http::Request;
use crate::registry::DatasetEntry;

/// The relative-error floor used by both profile endpoints (matches the
/// CLI's hardcoded profile floor).
const PROFILE_FLOOR: f64 = 0.05;

/// Which of the six adaptive queries a request names, with its
/// shape-specific parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryShape {
    /// `GET /query/entropy-topk?dataset=..&k=..`
    EntropyTopK {
        /// How many attributes to return.
        k: usize,
    },
    /// `GET /query/entropy-filter?dataset=..&eta=..`
    EntropyFilter {
        /// The entropy threshold η.
        eta: f64,
    },
    /// `GET /query/mi-topk?dataset=..&target=..&k=..`
    MiTopK {
        /// Target attribute (index or name, resolved at run time).
        target: String,
        /// How many attributes to return.
        k: usize,
    },
    /// `GET /query/mi-filter?dataset=..&target=..&eta=..`
    MiFilter {
        /// Target attribute (index or name).
        target: String,
        /// The MI threshold η.
        eta: f64,
    },
    /// `GET /query/entropy-profile?dataset=..`
    EntropyProfile,
    /// `GET /query/mi-profile?dataset=..&target=..`
    MiProfile {
        /// Target attribute (index or name).
        target: String,
    },
}

impl QueryShape {
    /// Snake-case shape name used in cache keys and response bodies.
    pub fn name(&self) -> &'static str {
        match self {
            QueryShape::EntropyTopK { .. } => "entropy_top_k",
            QueryShape::EntropyFilter { .. } => "entropy_filter",
            QueryShape::MiTopK { .. } => "mi_top_k",
            QueryShape::MiFilter { .. } => "mi_filter",
            QueryShape::EntropyProfile => "entropy_profile",
            QueryShape::MiProfile { .. } => "mi_profile",
        }
    }

    /// The CLI-matching default ε for this shape.
    pub fn default_epsilon(&self) -> f64 {
        match self {
            QueryShape::EntropyTopK { .. } | QueryShape::EntropyProfile => 0.1,
            QueryShape::EntropyFilter { .. } => 0.05,
            QueryShape::MiTopK { .. }
            | QueryShape::MiFilter { .. }
            | QueryShape::MiProfile { .. } => 0.5,
        }
    }
}

/// A fully-parsed query request: dataset name, shape, and the shared
/// sampling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Registry name of the dataset to query.
    pub dataset: String,
    /// The query shape with its parameters.
    pub shape: QueryShape,
    /// Approximation parameter ε (shape default applied).
    pub epsilon: f64,
    /// Failure probability override, `None` for the paper's `1/N`.
    pub pf: Option<f64>,
    /// Sampling-seed override, `None` for the library default.
    pub seed: Option<u64>,
    /// Worker threads (default 1, matching the CLI).
    pub threads: usize,
    /// First row of the query scope (`row_start` parameter).
    pub row_start: Option<usize>,
    /// One past the last row of the scope (`row_end`; clamped to N).
    pub row_end: Option<usize>,
    /// Scope predicate from the `where` parameter, as `attr=value` with
    /// the attribute given by index or name and the value by code or
    /// dictionary label — resolved against the dataset at run time.
    pub where_clause: Option<String>,
}

impl QuerySpec {
    /// Whether this request restricts the scope at all. Unscoped requests
    /// take exactly the pre-scope code path.
    pub fn is_scoped(&self) -> bool {
        self.row_start.is_some() || self.row_end.is_some() || self.where_clause.is_some()
    }
}

fn parse_param<T: std::str::FromStr>(req: &Request, name: &str) -> Result<Option<T>, String> {
    match req.param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("malformed value {raw:?} for parameter {name:?}")),
    }
}

fn require_param<T: std::str::FromStr>(req: &Request, name: &str) -> Result<T, String> {
    parse_param(req, name)?.ok_or_else(|| format!("missing required parameter {name:?}"))
}

/// Parses the `/query/<segment>` path segment plus the request's query
/// parameters into a [`QuerySpec`]. Errors are user-facing 400 messages.
pub fn parse_spec(segment: &str, req: &Request) -> Result<QuerySpec, String> {
    let shape = match segment {
        "entropy-topk" => QueryShape::EntropyTopK { k: require_param(req, "k")? },
        "entropy-filter" => QueryShape::EntropyFilter { eta: require_param(req, "eta")? },
        "mi-topk" => QueryShape::MiTopK {
            target: require_param(req, "target")?,
            k: require_param(req, "k")?,
        },
        "mi-filter" => QueryShape::MiFilter {
            target: require_param(req, "target")?,
            eta: require_param(req, "eta")?,
        },
        "entropy-profile" => QueryShape::EntropyProfile,
        "mi-profile" => QueryShape::MiProfile { target: require_param(req, "target")? },
        other => return Err(format!("unknown query shape {other:?}")),
    };
    let spec = QuerySpec {
        dataset: require_param(req, "dataset")?,
        epsilon: parse_param(req, "epsilon")?.unwrap_or_else(|| shape.default_epsilon()),
        pf: parse_param(req, "pf")?,
        seed: parse_param(req, "seed")?,
        threads: parse_param(req, "threads")?.unwrap_or(1),
        row_start: parse_param(req, "row_start")?,
        row_end: parse_param(req, "row_end")?,
        where_clause: req.param("where").map(str::to_owned),
        shape,
    };
    if let QueryShape::EntropyTopK { k } | QueryShape::MiTopK { k, .. } = spec.shape {
        if k == 0 {
            return Err("k must be at least 1".into());
        }
    }
    if let (Some(s), Some(e)) = (spec.row_start, spec.row_end) {
        if s > e {
            return Err(format!("row range starts at {s} but ends at {e}"));
        }
    }
    if let Some(w) = &spec.where_clause {
        if !w.contains('=') {
            return Err(format!("malformed where clause {w:?}: expected attr=value"));
        }
    }
    Ok(spec)
}

/// The result-cache key for `spec` against dataset generation
/// `generation`. Every parameter that can influence the answer bytes is
/// folded in, including the generation so replaced datasets never serve
/// stale bodies.
pub fn cache_key(spec: &QuerySpec, generation: u64) -> String {
    let mut key = format!("{}@{generation}|{}", spec.dataset, spec.shape.name());
    match &spec.shape {
        QueryShape::EntropyTopK { k } => {
            let _ = write!(key, "|k={k}");
        }
        QueryShape::EntropyFilter { eta } => {
            let _ = write!(key, "|eta={eta}");
        }
        QueryShape::MiTopK { target, k } => {
            let _ = write!(key, "|target={target}|k={k}");
        }
        QueryShape::MiFilter { target, eta } => {
            let _ = write!(key, "|target={target}|eta={eta}");
        }
        QueryShape::EntropyProfile => {}
        QueryShape::MiProfile { target } => {
            let _ = write!(key, "|target={target}");
        }
    }
    let _ = write!(key, "|eps={}", spec.epsilon);
    if let Some(pf) = spec.pf {
        let _ = write!(key, "|pf={pf}");
    }
    if let Some(seed) = spec.seed {
        let _ = write!(key, "|seed={seed}");
    }
    let _ = write!(key, "|threads={}", spec.threads);
    // Scope parameters change the answer, so they must split the cache:
    // two queries differing only in scope can never share an entry.
    if let Some(s) = spec.row_start {
        let _ = write!(key, "|row_start={s}");
    }
    if let Some(e) = spec.row_end {
        let _ = write!(key, "|row_end={e}");
    }
    if let Some(w) = &spec.where_clause {
        let _ = write!(key, "|where={w}");
    }
    key
}

fn config_for(spec: &QuerySpec) -> SwopeConfig {
    let mut cfg = SwopeConfig::with_epsilon(spec.epsilon);
    cfg.failure_probability = spec.pf;
    cfg = cfg.with_threads(spec.threads);
    if let Some(seed) = spec.seed {
        cfg = cfg.with_seed(seed);
    }
    cfg
}

/// Resolves a target given as index or name — the CLI's rule.
fn resolve_target(entry: &DatasetEntry, raw: &str) -> Result<usize, String> {
    if let Ok(idx) = raw.parse::<usize>() {
        if idx < entry.dataset.num_attrs() {
            return Ok(idx);
        }
        return Err(format!("target index {idx} out of range"));
    }
    entry.dataset.attr_index(raw).map_err(|e| e.to_string())
}

/// Resolves a `where` clause `attr=value` into a predicate: the attribute
/// by index or name (the target rule), the value by numeric code or, when
/// the column carries a dictionary, by label.
fn resolve_where(entry: &DatasetEntry, clause: &str) -> Result<(usize, u32), String> {
    let (attr_raw, value_raw) = clause
        .split_once('=')
        .ok_or_else(|| format!("malformed where clause {clause:?}: expected attr=value"))?;
    let attr = resolve_target(entry, attr_raw)?;
    if let Ok(code) = value_raw.parse::<u32>() {
        return Ok((attr, code));
    }
    let dict =
        entry.dataset.schema().field(attr).and_then(|f| f.dictionary()).ok_or_else(|| {
            format!("attribute {attr_raw:?} has no dictionary; use a numeric code")
        })?;
    let code = dict
        .lookup(value_raw)
        .ok_or_else(|| format!("value {value_raw:?} not found in attribute {attr_raw:?}"))?;
    Ok((attr, code))
}

/// Builds the [`Scope`] a spec names against a concrete dataset.
fn resolve_spec_scope(entry: &DatasetEntry, spec: &QuerySpec) -> Result<Scope, String> {
    let mut scope = Scope { row_start: spec.row_start, row_end: spec.row_end, predicate: None };
    if let Some(clause) = &spec.where_clause {
        let (attr, code) = resolve_where(entry, clause)?;
        scope.predicate = Some((attr, code));
    }
    Ok(scope)
}

/// Executes `spec` against `entry` on `exec` and returns the serialized
/// JSON body, or `(status, message)` for client errors (422 for semantic
/// problems the query layer rejects).
///
/// `exec` only affects *how* the adaptive loop is scheduled, never the
/// answer: the loops guarantee bitwise-identical results for any
/// executor, so the response bytes (and therefore the result cache) are
/// executor-independent.
pub fn run_query<O: QueryObserver>(
    entry: &DatasetEntry,
    spec: &QuerySpec,
    exec: &Executor,
    obs: &mut O,
) -> Result<String, (u16, String)> {
    let cfg = config_for(spec);
    let ds = &*entry.dataset;
    let fail = |e: swope_core::SwopeError| (422, e.to_string());
    // Every shape dispatches through its scoped entry point; a full scope
    // (the common unscoped request) delegates inside swope-core to the
    // exact pre-scope code path, bitwise identically.
    let scope = resolve_spec_scope(entry, spec).map_err(|m| (422, m))?;
    let sk = Some(&*entry.sketch);
    let (scores, stats, target) = match &spec.shape {
        QueryShape::EntropyTopK { k } => {
            let r = entropy_top_k_scoped_exec(ds, *k, &scope, sk, &cfg, obs, exec).map_err(fail)?;
            (r.top, r.stats, None)
        }
        QueryShape::EntropyFilter { eta } => {
            let r =
                entropy_filter_scoped_exec(ds, *eta, &scope, sk, &cfg, obs, exec).map_err(fail)?;
            (r.accepted, r.stats, None)
        }
        QueryShape::MiTopK { target, k } => {
            let t = resolve_target(entry, target).map_err(|m| (422, m))?;
            let r = mi_top_k_scoped_exec(ds, t, *k, &scope, sk, &cfg, obs, exec).map_err(fail)?;
            (r.top, r.stats, Some(t))
        }
        QueryShape::MiFilter { target, eta } => {
            let t = resolve_target(entry, target).map_err(|m| (422, m))?;
            let r =
                mi_filter_scoped_exec(ds, t, *eta, &scope, sk, &cfg, obs, exec).map_err(fail)?;
            (r.accepted, r.stats, Some(t))
        }
        QueryShape::EntropyProfile => {
            let r = entropy_profile_scoped_exec(ds, PROFILE_FLOOR, &scope, sk, &cfg, obs, exec)
                .map_err(fail)?;
            (r.scores, r.stats, None)
        }
        QueryShape::MiProfile { target } => {
            let t = resolve_target(entry, target).map_err(|m| (422, m))?;
            let r = mi_profile_scoped_exec(ds, t, PROFILE_FLOOR, &scope, sk, &cfg, obs, exec)
                .map_err(fail)?;
            (r.scores, r.stats, Some(t))
        }
    };
    let target = target
        .map(|t| (t, entry.dataset.schema().field(t).map(|f| f.name()).unwrap_or("?").to_owned()));
    Ok(serialize(entry.generation, spec, target, &scores, &stats))
}

/// Connection parameters for the coordinator query path: the peer fleet
/// (in `--peer` flag order — the order defines the union) and its wire
/// deadlines. `union_rows` comes from the startup probe and is only used
/// to clamp `row_end`, mirroring the single-box scope rule.
#[derive(Debug, Clone)]
pub struct ClusterTarget {
    /// Peer addresses in configuration order.
    pub addrs: Vec<String>,
    /// Connect/IO deadlines applied to every peer interaction.
    pub timeouts: PeerTimeouts,
    /// Union rows reported by the startup probe.
    pub union_rows: u64,
    /// Idle peer sessions kept alive across queries; every fan-out
    /// checks sessions out of (and back into) this pool.
    pub pool: Arc<PeerPool>,
}

/// Resolves a target given as index or name against the fleet's schema.
fn resolve_target_meta(attrs: &[AttrMeta], raw: &str) -> Result<usize, String> {
    if let Ok(idx) = raw.parse::<usize>() {
        if idx < attrs.len() {
            return Ok(idx);
        }
        return Err(format!("target index {idx} out of range"));
    }
    attrs.iter().position(|a| a.name == raw).ok_or_else(|| format!("no attribute named {raw:?}"))
}

/// Maps a cluster-path error onto an HTTP status: transport failures are
/// retryable server trouble (503), everything else is a semantic 422.
fn cluster_fail(e: SwopeError) -> (u16, String) {
    match &e {
        SwopeError::Transport(_) => (503, e.to_string()),
        _ => (422, e.to_string()),
    }
}

/// The coordinator version of [`run_query`]: fans the query out to the
/// peer fleet over the exact count-merge protocol and serializes the
/// merged answer. The response body is byte-for-byte what a single box
/// holding the concatenated dataset would serve (generation is pinned to
/// 1, a fresh box's first insert), which is what the CI cluster smoke
/// test diffs.
///
/// Predicate (`where`) scopes need a row-set scan the wire protocol does
/// not carry and are rejected with 422; row ranges are routed to the
/// peers whose slices intersect them.
pub fn run_query_cluster<O: QueryObserver>(
    cluster: &ClusterTarget,
    stats: &Arc<ClusterStats>,
    spec: &QuerySpec,
    exec: &Executor,
    obs: &mut O,
) -> Result<String, (u16, String)> {
    if spec.where_clause.is_some() {
        return Err((
            422,
            "predicate scopes (where=) are not supported on a cluster coordinator; \
             use row_start/row_end"
                .into(),
        ));
    }
    let cfg = config_for(spec);
    let SamplingStrategy::Row { seed } = cfg.sampling else {
        return Err((422, "cluster queries support row sampling only".into()));
    };
    let scope = if spec.row_start.is_some() || spec.row_end.is_some() {
        // Mirror the single-box rule: row_end clamps to N (the union),
        // emptiness is rejected by the connect below.
        let start = spec.row_start.unwrap_or(0) as u64;
        let end = spec.row_end.map(|e| e as u64).unwrap_or(u64::MAX);
        Some(start..end)
    } else {
        None
    };
    let mut src = RemoteShardSource::connect(
        &cluster.addrs,
        &spec.dataset,
        seed,
        scope,
        &cluster.timeouts,
        Arc::clone(stats),
        Some(Arc::clone(&cluster.pool)),
    )
    .map_err(cluster_fail)?;
    let resolve = |src: &RemoteShardSource, raw: &str| {
        resolve_target_meta(src.attrs(), raw).map_err(|m| (422, m))
    };
    let (scores, stats, target) = match &spec.shape {
        QueryShape::EntropyTopK { k } => {
            let r = entropy_top_k_transport(&mut src, *k, &cfg, obs, exec).map_err(cluster_fail)?;
            (r.top, r.stats, None)
        }
        QueryShape::EntropyFilter { eta } => {
            let r =
                entropy_filter_transport(&mut src, *eta, &cfg, obs, exec).map_err(cluster_fail)?;
            (r.accepted, r.stats, None)
        }
        QueryShape::MiTopK { target, k } => {
            let t = resolve(&src, target)?;
            let r = mi_top_k_transport(&mut src, t, *k, &cfg, obs, exec).map_err(cluster_fail)?;
            (r.top, r.stats, Some(t))
        }
        QueryShape::MiFilter { target, eta } => {
            let t = resolve(&src, target)?;
            let r =
                mi_filter_transport(&mut src, t, *eta, &cfg, obs, exec).map_err(cluster_fail)?;
            (r.accepted, r.stats, Some(t))
        }
        QueryShape::EntropyProfile => {
            let r = entropy_profile_transport(&mut src, PROFILE_FLOOR, &cfg, obs, exec)
                .map_err(cluster_fail)?;
            (r.scores, r.stats, None)
        }
        QueryShape::MiProfile { target } => {
            let t = resolve(&src, target)?;
            let r = mi_profile_transport(&mut src, t, PROFILE_FLOOR, &cfg, obs, exec)
                .map_err(cluster_fail)?;
            (r.scores, r.stats, Some(t))
        }
    };
    let target = target
        .map(|t| (t, src.attrs().get(t).map(|a| a.name.clone()).unwrap_or_else(|| "?".into())));
    src.finish();
    // Generation 1 matches a fresh single box's first insert, keeping the
    // coordinator's bytes diffable against a single-box run.
    Ok(serialize(1, spec, target, &scores, &stats))
}

fn serialize(
    generation: u64,
    spec: &QuerySpec,
    target: Option<(usize, String)>,
    scores: &[AttrScore],
    stats: &QueryStats,
) -> String {
    let mut out = String::from("{\"query\":");
    escape_into(&mut out, spec.shape.name());
    out.push_str(",\"dataset\":");
    escape_into(&mut out, &spec.dataset);
    let _ = write!(out, ",\"generation\":{generation}");
    match &spec.shape {
        QueryShape::EntropyTopK { k } | QueryShape::MiTopK { k, .. } => {
            let _ = write!(out, ",\"k\":{k}");
        }
        QueryShape::EntropyFilter { eta } | QueryShape::MiFilter { eta, .. } => {
            out.push_str(",\"eta\":");
            f64_into(&mut out, *eta);
        }
        QueryShape::EntropyProfile | QueryShape::MiProfile { .. } => {}
    }
    if let Some((t, name)) = target {
        let _ = write!(out, ",\"target\":{{\"attr\":{t},\"name\":");
        escape_into(&mut out, &name);
        out.push('}');
    }
    out.push_str(",\"epsilon\":");
    f64_into(&mut out, spec.epsilon);
    if spec.is_scoped() {
        out.push_str(",\"scope\":{");
        let mut first = true;
        if let Some(s) = spec.row_start {
            let _ = write!(out, "\"row_start\":{s}");
            first = false;
        }
        if let Some(e) = spec.row_end {
            let _ = write!(out, "{}\"row_end\":{e}", if first { "" } else { "," });
            first = false;
        }
        if let Some(w) = &spec.where_clause {
            out.push_str(if first { "\"where\":" } else { ",\"where\":" });
            escape_into(&mut out, w);
        }
        out.push('}');
    }
    out.push_str(",\"scores\":[");
    for (i, s) in scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"attr\":{},\"name\":", s.attr);
        escape_into(&mut out, &s.name);
        out.push_str(",\"estimate\":");
        f64_into(&mut out, s.estimate);
        out.push_str(",\"lower\":");
        f64_into(&mut out, s.lower);
        out.push_str(",\"upper\":");
        f64_into(&mut out, s.upper);
        let _ = write!(out, ",\"retired_iteration\":{}}}", s.retired_iteration);
    }
    let _ = write!(
        out,
        "],\"stats\":{{\"sample_size\":{},\"iterations\":{},\"rows_scanned\":{},\
         \"converged_early\":{}}}}}",
        stats.sample_size, stats.iterations, stats.rows_scanned, stats.converged_early
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DatasetRegistry;
    use swope_core::NoopObserver;
    use swope_obs::json::Json;

    fn req(params: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: "/query/x".into(),
            query: params.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn entry() -> std::sync::Arc<DatasetEntry> {
        let mut b = swope_columnar::DatasetBuilder::new(vec!["uniform".into(), "skewed".into()]);
        for i in 0..400u32 {
            let skewed = if i % 20 == 0 { "rare" } else { "common" };
            b.push_row(&[format!("v{}", i % 16), skewed.to_string()]).unwrap();
        }
        DatasetRegistry::new(1000).insert("t", b.finish())
    }

    #[test]
    fn parse_applies_shape_defaults() {
        let spec = parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "2")])).unwrap();
        assert_eq!(spec.shape, QueryShape::EntropyTopK { k: 2 });
        assert_eq!(spec.epsilon, 0.1);
        assert_eq!(spec.threads, 1);
        assert_eq!((spec.pf, spec.seed), (None, None));
        let spec = parse_spec("entropy-filter", &req(&[("dataset", "t"), ("eta", "0.5")])).unwrap();
        assert_eq!(spec.epsilon, 0.05);
        let spec =
            parse_spec("mi-topk", &req(&[("dataset", "t"), ("target", "0"), ("k", "1")])).unwrap();
        assert_eq!(spec.epsilon, 0.5);
        let spec = parse_spec("entropy-profile", &req(&[("dataset", "t")])).unwrap();
        assert_eq!(spec.shape, QueryShape::EntropyProfile);
    }

    #[test]
    fn parse_rejects_missing_and_malformed() {
        assert!(parse_spec("entropy-topk", &req(&[("dataset", "t")]))
            .unwrap_err()
            .contains("\"k\""));
        assert!(parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "abc")]))
            .unwrap_err()
            .contains("malformed"));
        assert!(parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "0")]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_spec("mi-topk", &req(&[("dataset", "t"), ("k", "1")]))
            .unwrap_err()
            .contains("target"));
        assert!(parse_spec("nope", &req(&[("dataset", "t")])).unwrap_err().contains("shape"));
        assert!(parse_spec("entropy-profile", &req(&[])).unwrap_err().contains("dataset"));
    }

    #[test]
    fn cache_keys_separate_params_and_generations() {
        let base = parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "2")])).unwrap();
        let other_k = parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "3")])).unwrap();
        let seeded =
            parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "2"), ("seed", "7")]))
                .unwrap();
        let keys = [
            cache_key(&base, 1),
            cache_key(&base, 2),
            cache_key(&other_k, 1),
            cache_key(&seeded, 1),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    /// Satellite audit: every scope parameter must split the cache for
    /// every query shape — two specs differing only in scope can never
    /// share an entry — and a dataset reload (generation bump) must
    /// invalidate scoped entries just like unscoped ones.
    #[test]
    fn cache_keys_split_on_every_scope_parameter() {
        let shapes: &[(&str, &[(&str, &str)])] = &[
            ("entropy-topk", &[("dataset", "t"), ("k", "2")]),
            ("entropy-filter", &[("dataset", "t"), ("eta", "0.5")]),
            ("mi-topk", &[("dataset", "t"), ("target", "0"), ("k", "1")]),
            ("mi-filter", &[("dataset", "t"), ("target", "0"), ("eta", "0.1")]),
            ("entropy-profile", &[("dataset", "t")]),
            ("mi-profile", &[("dataset", "t"), ("target", "0")]),
        ];
        let scope_variants: &[&[(&str, &str)]] = &[
            &[],
            &[("row_start", "100")],
            &[("row_start", "200")],
            &[("row_end", "300")],
            &[("row_start", "100"), ("row_end", "300")],
            &[("where", "skewed=rare")],
            &[("where", "skewed=common")],
            &[("row_start", "100"), ("row_end", "300"), ("where", "skewed=rare")],
        ];
        for (segment, base_params) in shapes {
            let keys: Vec<String> = scope_variants
                .iter()
                .map(|extra| {
                    let mut params = base_params.to_vec();
                    params.extend_from_slice(extra);
                    cache_key(&parse_spec(segment, &req(&params)).unwrap(), 1)
                })
                .collect();
            for (i, a) in keys.iter().enumerate() {
                for b in &keys[i + 1..] {
                    assert_ne!(a, b, "{segment}: scoped specs must never share a cache entry");
                }
            }
            let mut params = base_params.to_vec();
            params.push(("row_start", "100"));
            let scoped = parse_spec(segment, &req(&params)).unwrap();
            assert_ne!(cache_key(&scoped, 1), cache_key(&scoped, 2));
        }
    }

    #[test]
    fn parse_rejects_malformed_scopes() {
        let base = &[("dataset", "t"), ("k", "2")];
        let inverted = [base[0], base[1], ("row_start", "300"), ("row_end", "100")];
        assert!(parse_spec("entropy-topk", &req(&inverted)).unwrap_err().contains("row range"));
        let bad_where = [base[0], base[1], ("where", "noequals")];
        assert!(parse_spec("entropy-topk", &req(&bad_where)).unwrap_err().contains("attr=value"));
    }

    #[test]
    fn run_query_scoped_range_and_predicate() {
        let entry = entry();
        let exec = Executor::sequential();
        // A full-range scope answers identically to the unscoped query
        // (same scores, same stats), plus an echoed scope block.
        let base = &[("dataset", "t"), ("k", "2"), ("seed", "3")];
        let unscoped = parse_spec("entropy-topk", &req(base)).unwrap();
        let full =
            parse_spec("entropy-topk", &req(&[base[0], base[1], base[2], ("row_start", "0")]))
                .unwrap();
        let a =
            Json::parse(&run_query(&entry, &unscoped, &exec, &mut NoopObserver).unwrap()).unwrap();
        let b = Json::parse(&run_query(&entry, &full, &exec, &mut NoopObserver).unwrap()).unwrap();
        assert_eq!(a.get("scores"), b.get("scores"));
        assert_eq!(a.get("stats"), b.get("stats"));
        assert!(a.get("scope").is_none());
        assert_eq!(b.get("scope").unwrap().get("row_start").unwrap().as_u64(), Some(0));
        // A predicate scope runs over just the matching rows and echoes
        // the clause back.
        let pred = parse_spec(
            "entropy-topk",
            &req(&[base[0], base[1], base[2], ("where", "skewed=rare")]),
        )
        .unwrap();
        let v = Json::parse(&run_query(&entry, &pred, &exec, &mut NoopObserver).unwrap()).unwrap();
        assert_eq!(v.get("scope").unwrap().get("where").unwrap().as_str(), Some("skewed=rare"));
        // 400 rows, every 20th is "rare": the scoped population is 20.
        assert_eq!(v.get("stats").unwrap().get("sample_size").unwrap().as_u64(), Some(20));
        // An unresolvable predicate value is a semantic (422) error.
        let bad = parse_spec(
            "entropy-topk",
            &req(&[base[0], base[1], base[2], ("where", "skewed=unheard-of")]),
        )
        .unwrap();
        assert_eq!(run_query(&entry, &bad, &exec, &mut NoopObserver).unwrap_err().0, 422);
    }

    #[test]
    fn run_query_returns_parseable_deterministic_json() {
        let entry = entry();
        let spec = parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "1")])).unwrap();
        let body = run_query(&entry, &spec, &Executor::sequential(), &mut NoopObserver).unwrap();
        // A pooled executor must serve the exact same bytes.
        let again = run_query(&entry, &spec, &Executor::new(2), &mut NoopObserver).unwrap();
        assert_eq!(body, again, "same spec must serve identical bytes for any executor");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("query").unwrap().as_str(), Some("entropy_top_k"));
        let Json::Arr(scores) = v.get("scores").unwrap() else { panic!("scores not an array") };
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].get("name").unwrap().as_str(), Some("uniform"));
        assert!(v.get("stats").unwrap().get("rows_scanned").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn run_query_reports_target_and_semantic_errors() {
        let entry = entry();
        let exec = Executor::sequential();
        let spec =
            parse_spec("mi-profile", &req(&[("dataset", "t"), ("target", "skewed")])).unwrap();
        let body = run_query(&entry, &spec, &exec, &mut NoopObserver).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("target").unwrap().get("name").unwrap().as_str(), Some("skewed"));
        let bad =
            parse_spec("mi-profile", &req(&[("dataset", "t"), ("target", "missing")])).unwrap();
        let (status, msg) = run_query(&entry, &bad, &exec, &mut NoopObserver).unwrap_err();
        assert_eq!(status, 422);
        assert!(!msg.is_empty());
        let huge_k = parse_spec("entropy-topk", &req(&[("dataset", "t"), ("k", "99")])).unwrap();
        assert_eq!(run_query(&entry, &huge_k, &exec, &mut NoopObserver).unwrap_err().0, 422);
    }
}
