//! Fixed-size worker pool over a bounded job queue.
//!
//! This is the server's admission-control point: the accept loop is the
//! only producer, `try_execute` refuses work once the queue holds
//! `queue_capacity` jobs, and the caller turns that refusal into a `503 +
//! Retry-After` instead of letting latency grow without bound. Shutdown
//! is graceful by construction — workers drain every queued job before
//! exiting, so accepted queries always get an answer.
//!
//! Admission is **batched**: a woken worker pops up to
//! [`ADMIT_BATCH`] queued jobs in one lock acquisition and runs them
//! back-to-back, so a burst of cheap queries (cache hits, tiny
//! datasets) costs one lock round-trip per batch rather than per job.
//! Rejection semantics are unchanged — capacity still bounds *queued*
//! jobs, and a batch already claimed by a worker is no longer queued.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Maximum jobs a worker claims per condvar wakeup. Small enough that a
/// batch can't starve sibling workers of a deep queue (each wakeup
/// leaves the remainder claimable), large enough to amortize the lock
/// for bursts of cheap jobs.
pub const ADMIT_BATCH: usize = 4;

/// `try_execute` refused a job because the queue was at capacity (or the
/// pool is shutting down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutting_down: AtomicBool,
}

/// A fixed set of worker threads consuming a bounded queue.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

/// A cheap read-only view of the queue for metrics/gauges.
#[derive(Clone)]
pub struct QueueWatcher {
    inner: Arc<PoolInner>,
}

impl QueueWatcher {
    /// Jobs currently waiting (not counting jobs being run).
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().expect("pool lock poisoned").len()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers sharing a queue of at most
    /// `queue_capacity` waiting jobs. Both are clamped to at least 1.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: queue_capacity.max(1),
            shutting_down: AtomicBool::new(false),
        });
        let handles = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("swope-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning worker thread")
            })
            .collect();
        Self { inner, handles }
    }

    /// Enqueues `job` unless the queue is full or the pool is stopping.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Rejected> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(Rejected);
        }
        let mut queue = self.inner.queue.lock().expect("pool lock poisoned");
        if queue.len() >= self.inner.capacity {
            return Err(Rejected);
        }
        queue.push_back(Box::new(job));
        drop(queue);
        self.inner.available.notify_one();
        Ok(())
    }

    /// A watcher for the queue depth gauge.
    pub fn watcher(&self) -> QueueWatcher {
        QueueWatcher { inner: Arc::clone(&self.inner) }
    }

    /// Stops accepting work, lets the workers drain every queued job, and
    /// joins them.
    pub fn shutdown(mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    let mut batch: Vec<Job> = Vec::with_capacity(ADMIT_BATCH);
    loop {
        {
            let mut queue = inner.queue.lock().expect("pool lock poisoned");
            loop {
                if !queue.is_empty() {
                    let claim = ADMIT_BATCH.min(queue.len());
                    batch.extend(queue.drain(..claim));
                    break;
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.available.wait(queue).expect("pool lock poisoned");
            }
        }
        // If the batch left jobs behind, hand them to a sibling before
        // running (a single notify_one at push time only woke us).
        inner.available.notify_one();
        for job in batch.drain(..) {
            job();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            loop {
                let c = Arc::clone(&counter);
                let submitted = pool.try_execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
                if submitted.is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn rejects_when_queue_full_and_drains_on_shutdown() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker until we say otherwise.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = gate_rx.recv();
        })
        .unwrap();
        // Give the worker a moment to pick the blocker up, then fill the
        // queue to capacity.
        std::thread::sleep(Duration::from_millis(20));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let d = Arc::clone(&done);
            pool.try_execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        assert_eq!(pool.watcher().depth(), 2);
        // Capacity reached: further work is refused, not queued.
        assert_eq!(pool.try_execute(|| {}), Err(Rejected));
        // Release the worker; shutdown must still run the queued jobs.
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn batched_wakeup_runs_every_queued_job_in_order() {
        // Queue a burst deeper than ADMIT_BATCH behind a blocked worker;
        // the batched drain must run all of them, FIFO, none dropped.
        let pool = WorkerPool::new(1, 16);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            let _ = gate_rx.recv();
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let o = Arc::clone(&order);
            pool.try_execute(move || o.lock().unwrap().push(i)).unwrap();
        }
        assert_eq!(pool.watcher().depth(), 10);
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_after_shutdown_began() {
        let pool = WorkerPool::new(1, 4);
        let watcher = pool.watcher();
        pool.shutdown();
        assert_eq!(watcher.depth(), 0);
    }
}
