//! Readiness polling over raw syscalls: the dependency-free substrate of
//! the event-driven connection layer.
//!
//! The workspace builds without crates.io access, so this module binds
//! the two readiness facilities directly (the same way `signal.rs` binds
//! `signal(2)`): **epoll** on Linux — O(ready) wakeups, the production
//! path — and **`poll(2)`** everywhere else Unix, behind the same
//! [`Poller`] trait. The fallback is selected automatically off Linux and
//! can be forced with `SWOPE_FORCE_POLL=1` for testing; both
//! implementations are driven by the same event loop and must be
//! behaviorally identical (level-triggered readiness, one [`Event`] per
//! ready fd per wait).
//!
//! The module also owns the [`WakePipe`]: a nonblocking self-pipe the
//! worker pool writes one byte into when a completed response is ready
//! for the event thread. Registering its read end with the poller turns
//! "a worker finished" into an ordinary readiness event, so the event
//! thread never polls a mutex on a timer.

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// A file descriptor, as the syscalls see it.
pub type Fd = i32;

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// No readiness interest (the fd stays registered; errors/hangups are
    /// still reported, which is how a dispatched connection's death is
    /// noticed without reading from it).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One ready registration out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is dead either
    /// way and should be torn down after a final read attempt.
    pub hangup: bool,
}

/// Level-triggered readiness polling. Implementations report an [`Event`]
/// for every registered fd that is ready at wait time; unconsumed
/// readiness is reported again on the next wait.
pub trait Poller: Send {
    /// Registers `fd` under `token` with the given interest.
    fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()>;
    /// Replaces the interest (and token) of an already registered fd.
    fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()>;
    /// Removes a registration. Must be called before the fd is closed.
    fn remove(&mut self, fd: Fd) -> io::Result<()>;
    /// Blocks until at least one registration is ready or `timeout`
    /// elapses, appending ready registrations into `events` (cleared
    /// first).
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()>;
    /// The facility's name, for logs and docs (`"epoll"` / `"poll"`).
    fn name(&self) -> &'static str;
}

/// Builds the best poller for this platform: epoll on Linux (unless
/// `SWOPE_FORCE_POLL=1`), `poll(2)` on other Unixes.
pub fn new_poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        if std::env::var_os("SWOPE_FORCE_POLL").map_or(true, |v| v != *"1") {
            return Ok(Box::new(linux::Epoll::new()?));
        }
    }
    #[cfg(unix)]
    {
        Ok(Box::new(unix::PollFallback::new()))
    }
    #[cfg(not(unix))]
    {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the event-driven server requires a unix poll/epoll facility",
        ))
    }
}

#[cfg(unix)]
mod sys {
    //! The raw syscall surface shared by both pollers and the wake pipe.
    use super::Fd;

    extern "C" {
        pub fn close(fd: Fd) -> i32;
        pub fn read(fd: Fd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: Fd, buf: *const u8, count: usize) -> isize;
        pub fn pipe(fds: *mut Fd) -> i32;
        pub fn fcntl(fd: Fd, cmd: i32, arg: i32) -> i32;
    }

    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x0004;

    /// Marks an fd nonblocking via `fcntl`.
    pub fn set_nonblocking(fd: Fd) -> std::io::Result<()> {
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(std::io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Fd, Interest, Poller};
    use std::io;
    use std::time::Duration;

    // x86-64 is the one Linux ABI where epoll_event is packed.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> Fd;
        fn epoll_ctl(epfd: Fd, op: i32, fd: Fd, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: Fd, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The Linux implementation: one epoll instance, fds carried in
    /// `epoll_event.data` as their registration token.
    pub struct Epoll {
        epfd: Fd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn ctl(&self, op: i32, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            let mut flags = EPOLLRDHUP;
            if interest.readable {
                flags |= EPOLLIN;
            }
            if interest.writable {
                flags |= EPOLLOUT;
            }
            let mut ev = EpollEvent { events: flags, data: token as u64 };
            let ptr = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Poller for Epoll {
        fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn remove(&mut self, fd: Fd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n =
                unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal (SIGINT/SIGTERM during drain) interrupts the
                // wait; the loop re-checks its flags and waits again.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full buffer means more fds may be ready; grow so the next
            // wait drains them in one call.
            if n as usize == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "epoll"
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                super::sys::close(self.epfd);
            }
        }
    }
}

#[cfg(unix)]
mod unix {
    use super::{Event, Fd, Interest, Poller};
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: Fd,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout_ms: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// The portable fallback: registrations kept in a dense vec, the
    /// whole set handed to `poll(2)` per wait. O(n) per wait instead of
    /// O(ready) — correct everywhere Unix, fine into the thousands of
    /// connections, and exercised in CI via `SWOPE_FORCE_POLL=1`.
    pub struct PollFallback {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
    }

    impl PollFallback {
        pub fn new() -> Self {
            Self { fds: Vec::new(), tokens: Vec::new() }
        }

        fn index_of(&self, fd: Fd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        fn events_for(interest: Interest) -> i16 {
            let mut ev = 0;
            if interest.readable {
                ev |= POLLIN;
            }
            if interest.writable {
                ev |= POLLOUT;
            }
            ev
        }
    }

    impl Poller for PollFallback {
        fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            if self.index_of(fd).is_some() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
            }
            self.fds.push(PollFd { fd, events: Self::events_for(interest), revents: 0 });
            self.tokens.push(token);
            Ok(())
        }

        fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            let i = self
                .index_of(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = Self::events_for(interest);
            self.tokens[i] = token;
            Ok(())
        }

        fn remove(&mut self, fd: Fd) -> io::Result<()> {
            let i = self
                .index_of(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len(), ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, &token) in self.fds.iter().zip(&self.tokens) {
                if p.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: p.revents & POLLIN != 0,
                    writable: p.revents & POLLOUT != 0,
                    hangup: p.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "poll"
        }
    }
}

/// Shared write end of the wake pipe; closes the fd when the last clone
/// (worker-held notifier or the event loop's pipe) drops.
#[cfg(unix)]
#[derive(Debug)]
struct WriteEnd(Fd);

#[cfg(unix)]
impl Drop for WriteEnd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.0);
        }
    }
}

/// The event thread's half of the self-pipe: the read end registers with
/// the poller, [`WakePipe::drain`] consumes pending wake bytes.
#[cfg(unix)]
#[derive(Debug)]
pub struct WakePipe {
    read_fd: Fd,
    write: Arc<WriteEnd>,
}

/// A cheap, cloneable "kick the event thread" handle handed to workers.
#[cfg(unix)]
#[derive(Debug, Clone)]
pub struct WakeNotifier {
    write: Arc<WriteEnd>,
}

#[cfg(unix)]
impl WakePipe {
    /// Opens the pipe with both ends nonblocking.
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as Fd; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        sys::set_nonblocking(fds[0])?;
        sys::set_nonblocking(fds[1])?;
        Ok(Self { read_fd: fds[0], write: Arc::new(WriteEnd(fds[1])) })
    }

    /// The fd to register with the poller under the wake token.
    pub fn read_fd(&self) -> Fd {
        self.read_fd
    }

    /// A handle workers use to signal "a completion is queued".
    pub fn notifier(&self) -> WakeNotifier {
        WakeNotifier { write: Arc::clone(&self.write) }
    }

    /// Consumes every pending wake byte (one readiness event can stand
    /// for many completions; the completion queue is drained separately).
    pub fn drain(&self) {
        let mut scratch = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, scratch.as_mut_ptr(), scratch.len()) };
            if n <= 0 || (n as usize) < scratch.len() {
                return;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
        }
    }
}

#[cfg(unix)]
impl WakeNotifier {
    /// Writes one wake byte; a full pipe already guarantees a pending
    /// wakeup, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            sys::write(self.write.0, &byte, 1);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pollers() -> Vec<Box<dyn Poller>> {
        let mut out: Vec<Box<dyn Poller>> = vec![Box::new(unix::PollFallback::new())];
        #[cfg(target_os = "linux")]
        out.push(Box::new(linux::Epoll::new().unwrap()));
        out
    }

    #[test]
    fn readiness_round_trip_on_both_pollers() {
        for mut poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing pending: the wait times out empty.
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: spurious event", poller.name());

            client.write_all(b"ping").unwrap();
            poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
            assert_eq!(events.len(), 1, "{}", poller.name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: unread bytes surface again on the next wait.
            poller.wait(&mut events, Duration::from_millis(100)).unwrap();
            assert_eq!(events.len(), 1, "{}: not level-triggered", poller.name());

            let mut buf = [0u8; 16];
            let n = (&server).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: stale readiness", poller.name());

            // Write interest on an idle socket is immediately ready.
            poller.modify(server.as_raw_fd(), 9, Interest::WRITE).unwrap();
            poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 9);
            assert!(events[0].writable);

            poller.remove(server.as_raw_fd()).unwrap();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: events after remove", poller.name());
        }
    }

    #[test]
    fn hangup_is_reported() {
        for mut poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            poller.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(client);
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(1000)).unwrap();
            assert_eq!(events.len(), 1, "{}", poller.name());
            // A clean FIN surfaces as readable (read returns 0) and/or
            // hangup, depending on the facility; either drives teardown.
            assert!(events[0].readable || events[0].hangup, "{}", poller.name());
            poller.remove(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn wake_pipe_turns_worker_signals_into_events() {
        for mut poller in pollers() {
            let pipe = WakePipe::new().unwrap();
            poller.add(pipe.read_fd(), 42, Interest::READ).unwrap();
            let notifier = pipe.notifier();
            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty());

            let t = std::thread::spawn(move || notifier.wake());
            let start = Instant::now();
            poller.wait(&mut events, Duration::from_millis(2000)).unwrap();
            t.join().unwrap();
            assert_eq!(events.len(), 1, "{}", poller.name());
            assert_eq!(events[0].token, 42);
            assert!(start.elapsed() < Duration::from_millis(1900));

            pipe.drain();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: wake byte not drained", poller.name());
            poller.remove(pipe.read_fd()).unwrap();
        }
    }

    #[test]
    fn wake_is_safe_when_pipe_is_full() {
        let pipe = WakePipe::new().unwrap();
        let notifier = pipe.notifier();
        // Far past any pipe buffer: every wake past the first 64k is
        // EAGAIN and must not error or block.
        for _ in 0..100_000 {
            notifier.wake();
        }
        pipe.drain();
    }
}
