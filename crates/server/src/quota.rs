//! Per-tenant admission quotas: a token bucket per `X-Swope-Api-Key`.
//!
//! Tenancy is advisory, not authenticated — the key header is an opaque
//! label that buys each analyst their own bucket. A request with no key
//! draws from the shared `"anonymous"` bucket. Buckets refill at
//! `rps` tokens/second up to `burst`; a request that finds less than one
//! token is throttled with a computed `Retry-After`.
//!
//! Admission runs on the event thread *before* dispatch, so a throttled
//! tenant never occupies a worker or a queue slot. Key cardinality is
//! capped: past [`MAX_TENANTS`] distinct keys, new keys share one
//! overflow bucket rather than growing the map without bound (the same
//! defensive posture as the labelled-metrics cap in `metrics.rs`).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Maximum distinct tenant buckets before new keys share the overflow
/// bucket.
pub const MAX_TENANTS: usize = 1024;

/// Bucket key used when the client sends no `X-Swope-Api-Key`.
pub const ANONYMOUS_TENANT: &str = "anonymous";

const OVERFLOW_TENANT: &str = "overflow";

/// Verdict for one admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Under quota; a token was consumed.
    Allow,
    /// Over quota. `retry_after_secs` is the whole-second wait (≥ 1)
    /// until a token will be available, for the `Retry-After` header.
    Throttle {
        /// Seconds until the tenant should retry.
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token-bucket admission control keyed by tenant.
pub struct TenantQuotas {
    rps: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// Creates quotas refilling at `rps` tokens/second with capacity
    /// `burst`. Both are clamped to a small positive floor so a
    /// misconfigured zero can't divide by zero or admit nothing forever.
    pub fn new(rps: f64, burst: f64) -> Self {
        Self { rps: rps.max(1e-6), burst: burst.max(1.0), buckets: Mutex::new(HashMap::new()) }
    }

    /// Attempts to admit one request for `tenant` at time `now`.
    pub fn admit(&self, tenant: &str, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock().expect("quota lock");
        let key = if buckets.contains_key(tenant) || buckets.len() < MAX_TENANTS {
            tenant
        } else {
            OVERFLOW_TENANT
        };
        let bucket =
            buckets.entry(key.to_owned()).or_insert(Bucket { tokens: self.burst, last: now });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rps).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Allow
        } else {
            let wait = (1.0 - bucket.tokens) / self.rps;
            Admission::Throttle { retry_after_secs: (wait.ceil() as u64).max(1) }
        }
    }

    /// Number of distinct tenant buckets currently tracked.
    pub fn tenant_count(&self) -> usize {
        self.buckets.lock().expect("quota lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_admits_then_throttles() {
        let q = TenantQuotas::new(1.0, 3.0);
        let t0 = Instant::now();
        for i in 0..3 {
            assert_eq!(q.admit("alice", t0), Admission::Allow, "burst admit {i}");
        }
        match q.admit("alice", t0) {
            Admission::Throttle { retry_after_secs } => assert_eq!(retry_after_secs, 1),
            a => panic!("expected throttle, got {a:?}"),
        }
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let q = TenantQuotas::new(1.0, 1.0);
        let t0 = Instant::now();
        assert_eq!(q.admit("alice", t0), Admission::Allow);
        assert!(matches!(q.admit("alice", t0), Admission::Throttle { .. }));
        assert_eq!(q.admit("bob", t0), Admission::Allow, "bob has his own bucket");
        assert_eq!(q.admit(ANONYMOUS_TENANT, t0), Admission::Allow);
    }

    #[test]
    fn tokens_refill_over_time() {
        let q = TenantQuotas::new(2.0, 2.0); // 2 rps
        let t0 = Instant::now();
        assert_eq!(q.admit("a", t0), Admission::Allow);
        assert_eq!(q.admit("a", t0), Admission::Allow);
        assert!(matches!(q.admit("a", t0), Admission::Throttle { .. }));
        // 600ms later: 1.2 tokens refilled — one admit succeeds, next fails.
        let t1 = t0 + Duration::from_millis(600);
        assert_eq!(q.admit("a", t1), Admission::Allow);
        assert!(matches!(q.admit("a", t1), Admission::Throttle { .. }));
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = TenantQuotas::new(100.0, 2.0);
        let t0 = Instant::now();
        assert_eq!(q.admit("a", t0), Admission::Allow);
        // An hour of refill still yields only `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert_eq!(q.admit("a", t1), Admission::Allow);
        assert_eq!(q.admit("a", t1), Admission::Allow);
        assert!(matches!(q.admit("a", t1), Admission::Throttle { .. }));
    }

    #[test]
    fn retry_after_scales_with_deficit() {
        let q = TenantQuotas::new(0.25, 1.0); // one token per 4s
        let t0 = Instant::now();
        assert_eq!(q.admit("slow", t0), Admission::Allow);
        match q.admit("slow", t0) {
            Admission::Throttle { retry_after_secs } => assert_eq!(retry_after_secs, 4),
            a => panic!("expected throttle, got {a:?}"),
        }
    }

    #[test]
    fn key_cardinality_is_capped() {
        let q = TenantQuotas::new(1.0, 1.0);
        let t0 = Instant::now();
        for i in 0..MAX_TENANTS {
            q.admit(&format!("tenant-{i}"), t0);
        }
        assert_eq!(q.tenant_count(), MAX_TENANTS);
        // A brand-new key lands in the shared overflow bucket...
        assert_eq!(q.admit("fresh-key-a", t0), Admission::Allow);
        // ...which "fresh-key-b" finds already drained.
        assert!(matches!(q.admit("fresh-key-b", t0), Admission::Throttle { .. }));
        assert_eq!(q.tenant_count(), MAX_TENANTS + 1);
        // Existing tenants keep their own buckets past the cap.
        assert_eq!(q.admit("tenant-0", t0 + Duration::from_secs(2)), Admission::Allow);
    }
}
