//! Minimal HTTP/1.1 support: incremental request parsing and response
//! writing.
//!
//! The workspace builds without crates.io access, so this implements
//! exactly the subset the query server needs: requests parsed
//! *incrementally* out of a connection's accumulation buffer (so the
//! nonblocking event loop can feed partial reads and pipelined requests
//! through the same entry point), bodies sized by `Content-Length`,
//! percent-decoded query strings, and keep-alive-aware response
//! serialization. No chunked transfer, no TLS.
//!
//! [`parse_request`] is the one parsing entry point: given every byte
//! received so far it either asks for more ([`ParseStatus::Incomplete`]),
//! yields a request plus how many bytes it consumed (the remainder is the
//! next pipelined request), or rejects the bytes as not-HTTP. Limits are
//! enforced *during* accumulation — an over-long header line or header
//! section fails fast, long before a slow-loris client could balloon the
//! buffer.

use std::fmt;
use std::io::{self, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;
/// Upper bound on the whole header section (request line through the
/// blank line), enforced while the bytes accumulate.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parse-level failure (distinct from transport I/O errors).
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (timeout, reset, ...).
    Io(io::Error),
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// The bytes received do not form an HTTP/1.x request.
    Malformed(String),
    /// The declared `Content-Length` exceeds the configured cap.
    BodyTooLarge {
        /// Bytes the request declared.
        declared: usize,
        /// The server's configured cap.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed before request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive; pass lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Outcome of one [`parse_request`] attempt over an accumulation buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer holds a prefix of a valid request; read more bytes.
    Incomplete,
    /// A complete request was parsed.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied; everything past
        /// `consumed` belongs to the next pipelined request.
        consumed: usize,
        /// Whether the client's HTTP version + `Connection` header ask
        /// for the connection to stay open after the response (HTTP/1.1
        /// defaults to keep-alive, HTTP/1.0 to close).
        keep_alive: bool,
    },
}

/// Parses one request from the front of `buf`, incrementally: call again
/// with a longer buffer on [`ParseStatus::Incomplete`]. Leading blank
/// lines (a robustness allowance for sloppy pipelining clients) are
/// skipped and counted into `consumed`.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<ParseStatus, HttpError> {
    // Skip leading CRLFs so "request CRLF body CRLF CRLF request" still
    // pipelines cleanly.
    let mut start = 0;
    while start < buf.len() && (buf[start] == b'\r' || buf[start] == b'\n') {
        start += 1;
    }
    let head = &buf[start..];

    // Walk the header section line by line; `head_end` is the offset just
    // past the blank line terminating it.
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut pos = 0;
    let head_end = loop {
        let Some(nl) = head[pos..].iter().position(|&b| b == b'\n') else {
            if head.len() > MAX_HEAD_BYTES {
                return Err(HttpError::Malformed("header section too long".into()));
            }
            if head.len() - pos > MAX_LINE_BYTES {
                return Err(HttpError::Malformed("header line too long".into()));
            }
            return Ok(ParseStatus::Incomplete);
        };
        let mut line = &head[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::Malformed("header line too long".into()));
        }
        pos += nl + 1;
        if pos > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("header section too long".into()));
        }
        if line.is_empty() {
            break pos;
        }
        if lines.len() > MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        lines.push(line);
    };

    let mut it = lines.iter();
    let request_line = std::str::from_utf8(it.next().expect("blank-line break implies a line"))
        .map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {request_line:?}"))),
    };
    let Some(minor) = version.strip_prefix("HTTP/1.") else {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    };
    let http10 = minor == "0";
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::with_capacity(lines.len() - 1);
    for raw in it {
        let line = std::str::from_utf8(raw)
            .map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    let body_start = start + head_end;
    if buf.len() < body_start + content_length {
        return Ok(ParseStatus::Incomplete);
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    // HTTP/1.1 keeps the connection alive unless told otherwise;
    // HTTP/1.0 closes unless the client opts in. `Connection` values are
    // comma-separated token lists.
    let keep_alive = {
        let tokens = headers.iter().find(|(k, _)| k == "connection").map(|(_, v)| v.as_str());
        let has = |tok: &str| {
            tokens.is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(tok)))
        };
        if has("close") {
            false
        } else if has("keep-alive") {
            true
        } else {
            !http10
        }
    };

    Ok(ParseStatus::Complete {
        request: Request {
            method: method.to_owned(),
            path: percent_decode(raw_path),
            query: parse_query(raw_query),
            headers,
            body,
        },
        consumed: body_start + content_length,
        keep_alive,
    })
}

/// Splits and percent-decodes an `a=1&b=two` query string.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim, invalid UTF-8 becomes replacement characters.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// One HTTP response; the `Connection` header is chosen at serialization
/// time, so the same response can close or keep the connection alive.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`, `X-Swope-Cache`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, content_type: "application/json", body: body.into(), extra_headers: vec![] }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: vec![],
        }
    }

    /// A JSON error response with a `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut w = swope_obs::json::ObjectWriter::new();
        w.str_field("error", message);
        Self::json(status, w.finish())
    }

    /// Returns `self` with an extra header appended.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes the response (status line, headers, body) into one byte
    /// vector, announcing `Connection: keep-alive` or `close` per
    /// `keep_alive` — the body bytes are identical either way (the
    /// byte-identity contract covers bodies, not transport framing).
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes with `Connection: close` into `w` (the one-shot path
    /// used by tests and inline error answers).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.serialize(false))?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        match parse_request(raw.as_bytes(), 1024)? {
            ParseStatus::Complete { request, .. } => Ok(request),
            ParseStatus::Incomplete => Err(HttpError::ConnectionClosed),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(
            "GET /query/entropy-topk?dataset=tiny&k=3&name=a%20b HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query/entropy-topk");
        assert_eq!(r.param("dataset"), Some("tiny"));
        assert_eq!(r.param("k"), Some("3"));
        assert_eq!(r.param("name"), Some("a b"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse("POST /datasets?name=d HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body_and_bad_lines() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge { declared: 9999, .. })
        ));
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/99\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn incremental_parse_waits_for_the_full_request() {
        let full = "POST /d HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // Every proper prefix is Incomplete, never an error.
        for cut in 0..full.len() {
            assert!(
                matches!(parse_request(&full.as_bytes()[..cut], 1024), Ok(ParseStatus::Incomplete)),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let ParseStatus::Complete { request, consumed, keep_alive } =
            parse_request(full.as_bytes(), 1024).unwrap()
        else {
            panic!("full request should parse");
        };
        assert_eq!(request.body, b"hello");
        assert_eq!(consumed, full.len());
        assert!(keep_alive);
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_request_each() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseStatus::Complete { request, consumed, keep_alive } =
            parse_request(two.as_bytes(), 1024).unwrap()
        else {
            panic!("first request should parse");
        };
        assert_eq!(request.path, "/a");
        assert!(keep_alive);
        let ParseStatus::Complete { request, consumed: c2, keep_alive } =
            parse_request(&two.as_bytes()[consumed..], 1024).unwrap()
        else {
            panic!("second request should parse");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(request.param("x"), Some("1"));
        assert!(!keep_alive, "Connection: close must be honored");
        assert_eq!(consumed + c2, two.len());
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let ka = |raw: &str| match parse_request(raw.as_bytes(), 1024).unwrap() {
            ParseStatus::Complete { keep_alive, .. } => keep_alive,
            ParseStatus::Incomplete => panic!("incomplete: {raw:?}"),
        };
        assert!(ka("GET / HTTP/1.1\r\n\r\n"));
        assert!(!ka("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(!ka("GET / HTTP/1.0\r\n\r\n"));
        assert!(ka("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!ka("GET / HTTP/1.0\r\nConnection: close, te\r\n\r\n"));
    }

    #[test]
    fn header_limits_trip_during_accumulation() {
        // A single over-long line fails before any terminator arrives.
        let long = format!("GET /{} HTTP", "a".repeat(MAX_LINE_BYTES + 10));
        assert!(matches!(
            parse_request(long.as_bytes(), 1024),
            Err(HttpError::Malformed(m)) if m.contains("too long")
        ));
        // An endless header section fails at the section cap.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        while many.len() <= MAX_HEAD_BYTES {
            many.push_str("a: b\r\n");
        }
        assert!(matches!(parse_request(many.as_bytes(), 1024), Err(HttpError::Malformed(_))));
        // Too many tiny headers fail on the count cap.
        let mut counted = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 2) {
            counted.push_str(&format!("h{i}: v\r\n"));
        }
        assert!(matches!(parse_request(counted.as_bytes(), 1024), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn percent_decoding_handles_escapes() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%"); // dangling escape passes through
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_writes_headers_and_body() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("X-Swope-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Swope-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn serialization_differs_only_in_the_connection_header() {
        let resp = Response::json(200, "{\"ok\":true}");
        let ka = String::from_utf8(resp.serialize(true)).unwrap();
        let cl = String::from_utf8(resp.serialize(false)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
        assert!(cl.contains("Connection: close\r\n"));
        assert_eq!(
            ka.replace("Connection: keep-alive", "Connection: close"),
            cl,
            "bodies and all other headers must be identical"
        );
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(404, "no such dataset");
        assert_eq!(r.status, 404);
        assert_eq!(r.body, b"{\"error\":\"no such dataset\"}");
        assert_eq!(status_text(429), "Too Many Requests");
        assert_eq!(status_text(408), "Request Timeout");
    }
}
