//! Minimal HTTP/1.1 support: request parsing and response writing.
//!
//! The workspace builds without crates.io access, so this implements
//! exactly the subset the query server needs: one request per connection
//! (`Connection: close` on every response), request bodies sized by
//! `Content-Length`, and percent-decoded query strings. No chunked
//! transfer, no keep-alive, no TLS.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;

/// A parse-level failure (distinct from transport I/O errors).
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (timeout, reset, ...).
    Io(io::Error),
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// The bytes received do not form an HTTP/1.x request.
    Malformed(String),
    /// The declared `Content-Length` exceeds the configured cap.
    BodyTooLarge {
        /// Bytes the request declared.
        declared: usize,
        /// The server's configured cap.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::ConnectionClosed => write!(f, "connection closed before request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path without the query string.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive; pass lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `reader`, rejecting bodies above `max_body`.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let line = read_line(reader)?;
    if line.is_empty() {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_owned(),
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
/// Returns an empty string at EOF-before-any-byte or on a blank line.
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            break; // EOF
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::Malformed("header line too long".into()));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 header".into()))
}

/// Splits and percent-decodes an `a=1&b=two` query string.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim, invalid UTF-8 becomes replacement characters.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// One HTTP response, written with `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`, `X-Swope-Cache`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, content_type: "application/json", body: body.into(), extra_headers: vec![] }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: vec![],
        }
    }

    /// A JSON error response with a `{"error": ...}` body.
    pub fn error(status: u16, message: &str) -> Self {
        let mut w = swope_obs::json::ObjectWriter::new();
        w.str_field("error", message);
        Self::json(status, w.finish())
    }

    /// Returns `self` with an extra header appended.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes the response (status line, headers, body) into `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(
            "GET /query/entropy-topk?dataset=tiny&k=3&name=a%20b HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query/entropy-topk");
        assert_eq!(r.param("dataset"), Some("tiny"));
        assert_eq!(r.param("k"), Some("3"));
        assert_eq!(r.param("name"), Some("a b"));
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse("POST /datasets?name=d HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body_and_bad_lines() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge { declared: 9999, .. })
        ));
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/99\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_handles_escapes() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%"); // dangling escape passes through
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn response_writes_headers_and_body() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("X-Swope-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Swope-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(404, "no such dataset");
        assert_eq!(r.status, 404);
        assert_eq!(r.body, b"{\"error\":\"no such dataset\"}");
    }
}
