//! Property tests for the distribution models and the alias sampler.

use proptest::prelude::*;
use swope_datagen::{AliasTable, Distribution};
use swope_sampling::rng::Xoshiro256pp;

fn distributions() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        (1u32..200).prop_map(|u| Distribution::Uniform { u }),
        (1u32..200, 0.0f64..3.0).prop_map(|(u, s)| Distribution::Zipf { u, s }),
        (1u32..200, 0.01f64..0.99).prop_map(|(u, p)| Distribution::Geometric { u, p }),
        (2u32..200, 0.05f64..0.95).prop_flat_map(|(u, head_mass)| {
            (1..=u).prop_map(move |head| Distribution::TwoTier { u, head, head_mass })
        }),
        (1u32..200).prop_map(|u| Distribution::Constant { u }),
    ]
}

proptest! {
    /// Every model yields a proper probability vector of the declared
    /// support size.
    #[test]
    fn probabilities_are_a_distribution(dist in distributions()) {
        let p = dist.probabilities();
        prop_assert_eq!(p.len(), dist.support() as usize);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    /// Model entropy is within [0, log2(u)].
    #[test]
    fn model_entropy_in_range(dist in distributions()) {
        let h = dist.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (dist.support().max(1) as f64).log2() + 1e-9);
    }

    /// The alias sampler only emits codes with nonzero probability and
    /// stays within the support.
    #[test]
    fn alias_sampler_respects_support(dist in distributions(), seed in 0u64..1000) {
        let table = dist.sampler();
        let p = dist.probabilities();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..200 {
            let code = table.sample(&mut rng) as usize;
            prop_assert!(code < p.len());
            prop_assert!(p[code] > 0.0, "sampled zero-probability code {code}");
        }
    }

    /// Alias tables built from arbitrary positive weight vectors sample
    /// every positive-weight index and no zero-weight index.
    #[test]
    fn alias_table_arbitrary_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..32),
        seed in 0u64..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..2000 {
            let code = table.sample(&mut rng) as usize;
            prop_assert!(weights[code] > 0.0, "zero-weight code {code}");
            seen[code] = true;
        }
        // Indices carrying at least ~5% of the mass must show up in 2000
        // draws (probability of missing is < 1e-44).
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            if w / total >= 0.05 {
                prop_assert!(seen[i], "heavy index {i} never sampled");
            }
        }
    }

    /// Empirical frequencies track model probabilities (loose statistical
    /// tolerance; deterministic seeds keep this stable).
    #[test]
    fn empirical_frequencies_track_model(
        u in 2u32..20,
        s in 0.0f64..2.0,
        seed in 0u64..20,
    ) {
        let dist = Distribution::Zipf { u, s };
        let table = dist.sampler();
        let p = dist.probabilities();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let draws = 30_000;
        let mut counts = vec![0u32; u as usize];
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / draws as f64;
            // 5-sigma binomial tolerance.
            let sigma = (p[i] * (1.0 - p[i]) / draws as f64).sqrt();
            prop_assert!(
                (observed - p[i]).abs() < 5.0 * sigma + 1e-3,
                "code {i}: observed {observed}, model {}",
                p[i]
            );
        }
    }
}
