//! Randomized tests for the distribution models and the alias sampler,
//! driven by fixed-seed loops over the workspace RNG.

use swope_datagen::{AliasTable, Distribution};
use swope_sampling::rng::Xoshiro256pp;

const CASES: usize = 128;

fn rng(label: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(0xD157 ^ label)
}

/// Draws one distribution model of a random family and shape.
fn random_distribution(r: &mut Xoshiro256pp) -> Distribution {
    match r.next_below(5) {
        0 => Distribution::Uniform { u: 1 + r.next_below(199) as u32 },
        1 => Distribution::Zipf { u: 1 + r.next_below(199) as u32, s: r.next_f64() * 3.0 },
        2 => Distribution::Geometric {
            u: 1 + r.next_below(199) as u32,
            p: 0.01 + 0.98 * r.next_f64(),
        },
        3 => {
            let u = 2 + r.next_below(198) as u32;
            Distribution::TwoTier {
                u,
                head: 1 + r.next_below(u as u64) as u32,
                head_mass: 0.05 + 0.9 * r.next_f64(),
            }
        }
        _ => Distribution::Constant { u: 1 + r.next_below(199) as u32 },
    }
}

/// Every model yields a proper probability vector of the declared support
/// size.
#[test]
fn probabilities_are_a_distribution() {
    let mut r = rng(1);
    for case in 0..CASES {
        let dist = random_distribution(&mut r);
        let p = dist.probabilities();
        assert_eq!(p.len(), dist.support() as usize, "case {case}: {dist:?}");
        assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)), "case {case}: {dist:?}");
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: sum {total} for {dist:?}");
    }
}

/// Model entropy is within [0, log2(u)].
#[test]
fn model_entropy_in_range() {
    let mut r = rng(2);
    for case in 0..CASES {
        let dist = random_distribution(&mut r);
        let h = dist.entropy();
        assert!(h >= -1e-12, "case {case}: {dist:?}");
        assert!(
            h <= (dist.support().max(1) as f64).log2() + 1e-9,
            "case {case}: h={h} for {dist:?}"
        );
    }
}

/// The alias sampler only emits codes with nonzero probability and stays
/// within the support.
#[test]
fn alias_sampler_respects_support() {
    let mut r = rng(3);
    for case in 0..CASES {
        let dist = random_distribution(&mut r);
        let table = dist.sampler();
        let p = dist.probabilities();
        let mut draw_rng = Xoshiro256pp::seed_from_u64(r.next_below(1000));
        for _ in 0..200 {
            let code = table.sample(&mut draw_rng) as usize;
            assert!(code < p.len(), "case {case}: {dist:?}");
            assert!(p[code] > 0.0, "case {case}: sampled zero-probability code {code}");
        }
    }
}

/// Alias tables built from arbitrary positive weight vectors sample every
/// heavy index and no zero-weight index.
#[test]
fn alias_table_arbitrary_weights() {
    let mut r = rng(4);
    for case in 0..CASES {
        let len = 1 + r.next_below(31) as usize;
        // Random weights in [0, 10) with random zero entries mixed in.
        let weights: Vec<f64> = (0..len)
            .map(|_| if r.next_below(4) == 0 { 0.0 } else { r.next_f64() * 10.0 })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let table = AliasTable::new(&weights);
        let mut draw_rng = Xoshiro256pp::seed_from_u64(r.next_below(100));
        let mut seen = vec![false; weights.len()];
        for _ in 0..2000 {
            let code = table.sample(&mut draw_rng) as usize;
            assert!(weights[code] > 0.0, "case {case}: zero-weight code {code}");
            seen[code] = true;
        }
        // Indices carrying at least ~5% of the mass must show up in 2000
        // draws (probability of missing is < 1e-44).
        for (i, &w) in weights.iter().enumerate() {
            if w / total >= 0.05 {
                assert!(seen[i], "case {case}: heavy index {i} never sampled");
            }
        }
    }
}

/// Empirical frequencies track model probabilities (loose statistical
/// tolerance; deterministic seeds keep this stable).
#[test]
fn empirical_frequencies_track_model() {
    let mut r = rng(5);
    for case in 0..24 {
        let u = 2 + r.next_below(18) as u32;
        let s = r.next_f64() * 2.0;
        let dist = Distribution::Zipf { u, s };
        let table = dist.sampler();
        let p = dist.probabilities();
        let mut draw_rng = Xoshiro256pp::seed_from_u64(r.next_below(20));
        let draws = 30_000;
        let mut counts = vec![0u32; u as usize];
        for _ in 0..draws {
            counts[table.sample(&mut draw_rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let observed = c as f64 / draws as f64;
            // 5-sigma binomial tolerance.
            let sigma = (p[i] * (1.0 - p[i]) / draws as f64).sqrt();
            assert!(
                (observed - p[i]).abs() < 5.0 * sigma + 1e-3,
                "case {case}, code {i}: observed {observed}, model {}",
                p[i]
            );
        }
    }
}
