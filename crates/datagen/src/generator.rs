//! Materializes a [`DatasetProfile`] into a columnar dataset.

use swope_columnar::{Column, Dataset, Field, Schema};
use swope_sampling::rng::Xoshiro256pp;

use crate::{DatasetProfile, Distribution};

/// Generates the dataset described by `profile`, deterministically in
/// `(profile, seed)`.
///
/// Columns are generated independently given the latent factor values, so
/// each column uses its own forked RNG stream — adding or reordering
/// columns does not perturb the others.
///
/// # Panics
/// Panics if `profile.validate()` fails (programming error in the
/// profile, not a data error).
pub fn generate(profile: &DatasetProfile, seed: u64) -> Dataset {
    generate_with_locality(profile, seed, 1)
}

/// Like [`generate`], but latent factor values persist in runs of
/// `run_len` consecutive rows instead of being drawn i.i.d. per row.
///
/// `run_len = 1` is i.i.d. (identical to [`generate`]). Larger runs
/// simulate *physically clustered* data — tables sorted or bulk-loaded
/// by household/region — where nearby rows are correlated. Each column's
/// **marginal** distribution is unchanged (entropy scores are the same in
/// expectation); only the row order carries structure. This is exactly
/// the hazard case for page-granular sampling (paper §6.1's cache
/// optimization): whole-page samples of clustered rows are far less
/// informative than their size suggests. The `ext-locality` harness
/// experiment quantifies the effect.
///
/// # Panics
/// Panics if `profile.validate()` fails or `run_len == 0`.
pub fn generate_with_locality(profile: &DatasetProfile, seed: u64, run_len: usize) -> Dataset {
    assert!(run_len > 0, "run_len must be positive");
    profile.validate().expect("invalid dataset profile");
    let n = profile.rows;
    let root = Xoshiro256pp::seed_from_u64(seed);

    // Latent factor values per row, each from its own stream; one fresh
    // draw per run of `run_len` rows.
    let latents: Vec<Vec<u32>> = profile
        .latent_supports
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let mut rng = root.fork(0x1a7e_0000 + i as u64);
            let mut current = 0u32;
            (0..n)
                .map(|r| {
                    if r % run_len == 0 {
                        current = rng.next_below(u as u64) as u32;
                    }
                    current
                })
                .collect()
        })
        .collect();

    let mut fields = Vec::with_capacity(profile.columns.len());
    let mut columns = Vec::with_capacity(profile.columns.len());
    for (ci, spec) in profile.columns.iter().enumerate() {
        let mut rng = root.fork(0xc01_0000 + ci as u64);
        let u = spec.distribution.support();
        let sampler = spec.distribution.sampler();
        let codes: Vec<u32> = match spec.dependence {
            None => (0..n).map(|_| sampler.sample(&mut rng)).collect(),
            Some(dep) => {
                let latent = &latents[dep.latent];
                let latent_u = profile.latent_supports[dep.latent] as u64;
                (0..n)
                    .map(|r| {
                        if rng.next_f64() < dep.strength {
                            spread_latent(latent[r], latent_u, u, ci as u64)
                        } else {
                            sampler.sample(&mut rng)
                        }
                    })
                    .collect()
            }
        };
        fields.push(Field::new(spec.name.clone(), u));
        columns.push(Column::new_unchecked(codes, u));
    }
    Dataset::new(Schema::new(fields), columns).expect("generator output is consistent")
}

/// Deterministically maps a latent value into a column's code space.
///
/// Each column gets its own mixing constant so two columns tied to the
/// same latent factor agree on the *grouping* of rows (hence share MI)
/// without being bitwise-identical copies.
#[inline]
fn spread_latent(z: u32, latent_u: u64, column_u: u32, column_salt: u64) -> u32 {
    if column_u as u64 >= latent_u {
        // Injective embedding: the latent value is fully recoverable.
        z % column_u
    } else {
        // Compress via a salted mix so different columns merge different
        // latent values together.
        let mixed = (z as u64).wrapping_add(column_salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 33) % column_u as u64) as u32
    }
}

/// Convenience: generates a single independent column of `n` rows.
pub fn generate_column(dist: &Distribution, n: usize, seed: u64) -> Column {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let sampler = dist.sampler();
    let codes: Vec<u32> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
    Column::new_unchecked(codes, dist.support())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnSpec;
    use swope_estimate::entropy::column_entropy;
    use swope_estimate::joint::mutual_information;

    fn profile() -> DatasetProfile {
        DatasetProfile {
            name: "test".into(),
            rows: 30_000,
            latent_supports: vec![8],
            columns: vec![
                ColumnSpec::independent("uniform", Distribution::Uniform { u: 16 }),
                ColumnSpec::independent("skew", Distribution::Zipf { u: 16, s: 1.5 }),
                ColumnSpec::dependent("dep_hi", Distribution::Uniform { u: 8 }, 0, 0.9),
                ColumnSpec::dependent("dep_lo", Distribution::Uniform { u: 8 }, 0, 0.3),
                ColumnSpec::independent("indep", Distribution::Uniform { u: 8 }),
            ],
        }
    }

    #[test]
    fn shape_matches_profile() {
        let ds = generate(&profile(), 1);
        assert_eq!(ds.num_rows(), 30_000);
        assert_eq!(ds.num_attrs(), 5);
        assert_eq!(ds.support(0), 16);
        assert_eq!(ds.attr_index("dep_hi").unwrap(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&profile(), 9);
        let b = generate(&profile(), 9);
        assert_eq!(a, b);
        let c = generate(&profile(), 10);
        assert_ne!(a.column(0).to_codes(), c.column(0).to_codes());
    }

    #[test]
    fn empirical_entropy_tracks_model_entropy() {
        let ds = generate(&profile(), 3);
        let uniform_h = column_entropy(ds.column(0));
        let skew_h = column_entropy(ds.column(1));
        assert!((uniform_h - 4.0).abs() < 0.05, "uniform entropy {uniform_h}");
        let model = Distribution::Zipf { u: 16, s: 1.5 }.entropy();
        assert!((skew_h - model).abs() < 0.1, "zipf entropy {skew_h} vs model {model}");
    }

    #[test]
    fn shared_latent_creates_mi_ordering() {
        let ds = generate(&profile(), 5);
        let hi = mutual_information(ds.column(2), ds.column(3));
        let indep = mutual_information(ds.column(2), ds.column(4));
        // dep_hi and dep_lo share latent 0 -> positive MI; indep does not.
        assert!(hi > 0.1, "dependent MI too low: {hi}");
        assert!(indep < 0.05, "independent MI too high: {indep}");
        // Strongly coupled columns beat weakly coupled ones against the
        // same partner.
        let strong_pairing = mutual_information(ds.column(2), ds.column(3));
        assert!(strong_pairing > indep);
    }

    #[test]
    fn dependence_strength_orders_mi() {
        // Two columns at strengths 0.9/0.3 against a third at 0.9.
        let p = DatasetProfile {
            name: "s".into(),
            rows: 40_000,
            latent_supports: vec![8],
            columns: vec![
                ColumnSpec::dependent("anchor", Distribution::Uniform { u: 8 }, 0, 0.9),
                ColumnSpec::dependent("strong", Distribution::Uniform { u: 8 }, 0, 0.8),
                ColumnSpec::dependent("weak", Distribution::Uniform { u: 8 }, 0, 0.3),
            ],
        };
        let ds = generate(&p, 7);
        let strong = mutual_information(ds.column(0), ds.column(1));
        let weak = mutual_information(ds.column(0), ds.column(2));
        assert!(strong > weak, "strong {strong} <= weak {weak}");
    }

    #[test]
    fn generate_column_shape() {
        let col = generate_column(&Distribution::Geometric { u: 10, p: 0.4 }, 5_000, 2);
        assert_eq!(col.len(), 5_000);
        assert_eq!(col.support(), 10);
        assert!(col.value_counts()[0] > col.value_counts()[5]);
    }

    #[test]
    fn locality_one_equals_generate() {
        let p = profile();
        assert_eq!(generate(&p, 4), generate_with_locality(&p, 4, 1));
    }

    #[test]
    fn locality_creates_runs_without_changing_marginals() {
        let p = DatasetProfile {
            name: "runs".into(),
            rows: 40_000,
            latent_supports: vec![8],
            columns: vec![ColumnSpec::dependent(
                "c",
                Distribution::Uniform { u: 8 },
                0,
                1.0, // pure copy of the latent: runs fully visible
            )],
        };
        let iid = generate_with_locality(&p, 9, 1);
        let clustered = generate_with_locality(&p, 9, 512);
        // Marginal entropy barely moves...
        let h_iid = column_entropy(iid.column(0));
        let h_clustered = column_entropy(clustered.column(0));
        assert!((h_iid - h_clustered).abs() < 0.05, "{h_iid} vs {h_clustered}");
        // ...but adjacent-row agreement skyrockets.
        let agree = |ds: &swope_columnar::Dataset| {
            let codes = ds.column(0).to_codes();
            codes.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (codes.len() - 1) as f64
        };
        assert!(agree(&iid) < 0.25);
        assert!(agree(&clustered) > 0.9);
    }

    #[test]
    #[should_panic(expected = "run_len must be positive")]
    fn zero_run_len_panics() {
        generate_with_locality(&profile(), 1, 0);
    }

    #[test]
    fn zero_rows_profile() {
        let p = DatasetProfile::new(
            "empty",
            0,
            vec![ColumnSpec::independent("a", Distribution::Uniform { u: 4 })],
        );
        let ds = generate(&p, 1);
        assert_eq!(ds.num_rows(), 0);
        assert_eq!(ds.num_attrs(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid dataset profile")]
    fn invalid_profile_panics() {
        let p = DatasetProfile {
            name: "bad".into(),
            rows: 10,
            latent_supports: vec![],
            columns: vec![ColumnSpec::dependent("c", Distribution::Uniform { u: 4 }, 0, 0.5)],
        };
        generate(&p, 1);
    }
}
