//! Dataset profiles: a declarative description of what to generate.

use crate::Distribution;

/// Dependence of a column on a shared latent factor.
///
/// With probability `strength` a row copies (a deterministic spread of)
/// the latent factor's value; otherwise it draws from the column's own
/// distribution. Columns attached to the *same* latent factor therefore
/// share mutual information, growing with both strengths — this is what
/// gives MI queries a realistic score spread without hand-crafting joint
/// tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dependence {
    /// Index of the latent factor (into [`DatasetProfile::latent_supports`]).
    pub latent: usize,
    /// Copy probability in `[0, 1]`.
    pub strength: f64,
}

/// One column to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Attribute name.
    pub name: String,
    /// Marginal distribution (also the noise distribution when dependent).
    pub distribution: Distribution,
    /// Optional dependence on a latent factor.
    pub dependence: Option<Dependence>,
}

impl ColumnSpec {
    /// An independent column.
    pub fn independent(name: impl Into<String>, distribution: Distribution) -> Self {
        Self { name: name.into(), distribution, dependence: None }
    }

    /// A column tied to latent factor `latent` with the given strength.
    pub fn dependent(
        name: impl Into<String>,
        distribution: Distribution,
        latent: usize,
        strength: f64,
    ) -> Self {
        Self { name: name.into(), distribution, dependence: Some(Dependence { latent, strength }) }
    }
}

/// A full dataset description: rows, latent factors, and columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Profile name (used in benchmark reports).
    pub name: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Support size of each latent factor (uniformly distributed).
    pub latent_supports: Vec<u32>,
    /// The columns.
    pub columns: Vec<ColumnSpec>,
}

impl DatasetProfile {
    /// Creates a profile with no latent factors.
    pub fn new(name: impl Into<String>, rows: usize, columns: Vec<ColumnSpec>) -> Self {
        Self { name: name.into(), rows, latent_supports: Vec::new(), columns }
    }

    /// Number of columns `h`.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Validates internal consistency (latent references in range,
    /// strengths in `[0,1]`, nonzero supports).
    pub fn validate(&self) -> Result<(), String> {
        for (i, col) in self.columns.iter().enumerate() {
            if col.distribution.support() == 0 {
                return Err(format!("column {i} ({}) has zero support", col.name));
            }
            if let Some(dep) = col.dependence {
                if dep.latent >= self.latent_supports.len() {
                    return Err(format!(
                        "column {i} ({}) references latent {} but only {} exist",
                        col.name,
                        dep.latent,
                        self.latent_supports.len()
                    ));
                }
                if !(0.0..=1.0).contains(&dep.strength) {
                    return Err(format!(
                        "column {i} ({}) has dependence strength {} outside [0,1]",
                        col.name, dep.strength
                    ));
                }
            }
        }
        if self.latent_supports.contains(&0) {
            return Err("latent factor with zero support".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_bad_latent_reference() {
        let p = DatasetProfile {
            name: "t".into(),
            rows: 10,
            latent_supports: vec![4],
            columns: vec![ColumnSpec::dependent("c", Distribution::Uniform { u: 4 }, 3, 0.5)],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_strength() {
        let p = DatasetProfile {
            name: "t".into(),
            rows: 10,
            latent_supports: vec![4],
            columns: vec![ColumnSpec::dependent("c", Distribution::Uniform { u: 4 }, 0, 1.5)],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_accepts_well_formed() {
        let p = DatasetProfile {
            name: "t".into(),
            rows: 10,
            latent_supports: vec![4, 8],
            columns: vec![
                ColumnSpec::independent("a", Distribution::Zipf { u: 6, s: 1.0 }),
                ColumnSpec::dependent("b", Distribution::Uniform { u: 4 }, 1, 0.9),
            ],
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.num_columns(), 2);
    }
}
