//! The four named census-like profiles of the paper's evaluation
//! (Table 2), plus small profiles for tests.
//!
//! | profile | paper rows | columns |
//! |---------|-----------:|--------:|
//! | cdc-behavioral-risk        |  3,753,802 | 100 |
//! | census-american-housing    | 14,768,919 | 107 |
//! | census-american-population | 31,290,943 | 179 |
//! | enem                       | 33,714,152 | 117 |
//!
//! Each profile mixes the column archetypes census-style microdata shows —
//! near-constant codes, skewed flags, Zipfian categorical answers,
//! wide-domain near-uniform fields — all with support ≤ 1000 (the paper
//! removes wider columns before querying), and ties a fraction of columns
//! to shared latent factors so mutual-information queries see a realistic
//! score spread. `scale` multiplies the row count: `scale = 1.0` is
//! paper-sized; benchmarks default to a laptop-friendly fraction.

use swope_sampling::rng::Xoshiro256pp;

use crate::{ColumnSpec, DatasetProfile, Distribution};

/// Row/column shape of one paper dataset.
#[derive(Debug, Clone, Copy)]
pub struct PaperShape {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Paper row count.
    pub rows: usize,
    /// Paper column count.
    pub columns: usize,
}

/// The paper's Table 2 shapes.
pub const PAPER_SHAPES: [PaperShape; 4] = [
    PaperShape { name: "cdc", rows: 3_753_802, columns: 100 },
    PaperShape { name: "hus", rows: 14_768_919, columns: 107 },
    PaperShape { name: "pus", rows: 31_290_943, columns: 179 },
    PaperShape { name: "enem", rows: 33_714_152, columns: 117 },
];

/// cdc-behavioral-risk lookalike at the given row scale.
pub fn cdc(scale: f64) -> DatasetProfile {
    census_like(PAPER_SHAPES[0], scale, 0xCDC0)
}

/// census-american-housing lookalike at the given row scale.
pub fn hus(scale: f64) -> DatasetProfile {
    census_like(PAPER_SHAPES[1], scale, 0x4053)
}

/// census-american-population lookalike at the given row scale.
pub fn pus(scale: f64) -> DatasetProfile {
    census_like(PAPER_SHAPES[2], scale, 0x9053)
}

/// enem lookalike at the given row scale.
pub fn enem(scale: f64) -> DatasetProfile {
    census_like(PAPER_SHAPES[3], scale, 0xE4E4)
}

/// All four profiles in paper order.
pub fn all(scale: f64) -> Vec<DatasetProfile> {
    vec![cdc(scale), hus(scale), pus(scale), enem(scale)]
}

/// A small mixed profile for tests and examples: `rows`×`columns`, same
/// archetype mix as the census profiles, 3 latent factors.
pub fn tiny(rows: usize, columns: usize) -> DatasetProfile {
    let shape = PaperShape { name: "tiny", rows, columns };
    census_like(shape, 1.0, 0x7142)
}

fn census_like(shape: PaperShape, scale: f64, mix_seed: u64) -> DatasetProfile {
    assert!(scale > 0.0, "scale must be positive");
    let rows = ((shape.rows as f64 * scale).round() as usize).max(64);
    let mut rng = Xoshiro256pp::seed_from_u64(mix_seed);

    // Latent factors: a handful of "household / person / region"-style
    // hidden variables that groups of columns reflect. Census microdata
    // is pervasively inter-correlated (the paper's MI filtering sweeps
    // η up to 0.5 and expects nontrivial answer sets), so the factors
    // are wide enough and the couplings strong enough that typical
    // attribute pairs sharing a factor carry ~0.3–2 bits of MI.
    let latent_supports: Vec<u32> = (0..6).map(|_| 8 + rng.next_below(25) as u32).collect();

    let mut columns = Vec::with_capacity(shape.columns);
    for i in 0..shape.columns {
        let archetype = rng.next_below(100);
        let distribution = match archetype {
            // ~10%: near-constant codes (a dominant "not applicable").
            0..=9 => Distribution::TwoTier {
                u: 2 + rng.next_below(4) as u32,
                head: 1,
                head_mass: 0.95 + rng.next_f64() * 0.045,
            },
            // ~20%: skewed flags and small enumerations.
            10..=29 => Distribution::Zipf {
                u: 2 + rng.next_below(7) as u32,
                s: 0.8 + rng.next_f64() * 0.8,
            },
            // ~30%: medium categorical answers.
            30..=59 => {
                Distribution::Zipf { u: 8 + rng.next_below(121) as u32, s: 0.5 + rng.next_f64() }
            }
            // ~20%: wide domains with mild skew.
            60..=79 => Distribution::Zipf {
                u: 128 + rng.next_below(873) as u32,
                s: 0.2 + rng.next_f64() * 0.6,
            },
            // ~10%: geometric count-like fields.
            80..=89 => Distribution::Geometric {
                u: 4 + rng.next_below(61) as u32,
                p: 0.15 + rng.next_f64() * 0.5,
            },
            // ~10%: near-uniform high-entropy fields.
            _ => Distribution::Uniform { u: 16 + rng.next_below(985) as u32 },
        };
        // ~65% of columns reflect one of the latent factors.
        let dependence = if rng.next_f64() < 0.65 {
            let latent = rng.next_below(latent_supports.len() as u64) as usize;
            let strength = 0.35 + rng.next_f64() * 0.6;
            Some(crate::Dependence { latent, strength })
        } else {
            None
        };
        columns.push(ColumnSpec {
            name: format!("{}_{i:03}", shape.name),
            distribution,
            dependence,
        });
    }

    DatasetProfile { name: shape.name.to_owned(), rows, latent_supports, columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use swope_estimate::entropy::column_entropy;

    #[test]
    fn shapes_match_table2_columns() {
        assert_eq!(cdc(0.001).num_columns(), 100);
        assert_eq!(hus(0.001).num_columns(), 107);
        assert_eq!(pus(0.001).num_columns(), 179);
        assert_eq!(enem(0.001).num_columns(), 117);
    }

    #[test]
    fn scale_controls_rows() {
        let full = cdc(1.0);
        assert_eq!(full.rows, 3_753_802);
        let hundredth = cdc(0.01);
        assert_eq!(hundredth.rows, 37_538);
        // Floor at 64 rows.
        assert_eq!(cdc(1e-9).rows, 64);
    }

    #[test]
    fn profiles_validate() {
        for p in all(0.001) {
            p.validate().unwrap();
        }
        tiny(100, 10).validate().unwrap();
    }

    #[test]
    fn support_capped_at_1000() {
        for p in all(0.001) {
            for c in &p.columns {
                assert!(c.distribution.support() <= 1000, "{} too wide", c.name);
                assert!(c.distribution.support() >= 2);
            }
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(cdc(0.01), cdc(0.01));
        // Different profiles produce different mixes.
        assert_ne!(cdc(0.01).columns[0], enem(0.01).columns[0]);
    }

    #[test]
    fn generated_corpus_spans_a_wide_entropy_range() {
        let ds = generate(&tiny(20_000, 60), 1);
        let entropies: Vec<f64> =
            (0..ds.num_attrs()).map(|a| column_entropy(ds.column(a))).collect();
        let min = entropies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = entropies.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 1.0, "expected some low-entropy column, min = {min}");
        assert!(max > 4.0, "expected some high-entropy column, max = {max}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        cdc(0.0);
    }
}
