//! # swope-datagen
//!
//! Synthetic categorical dataset generators for SWOPE workloads.
//!
//! ## Why synthetic data
//!
//! The paper evaluates on four public datasets — cdc-behavioral-risk
//! (3.75M×100), census-american-housing (14.77M×107),
//! census-american-population (31.29M×179), and enem (33.71M×117) — which
//! are not redistributable with this repository. The SWOPE algorithms'
//! behaviour depends only on the datasets' *shape*: row/column counts, the
//! per-column empirical distributions (which set the entropy scores the
//! k/η sweeps run against), and the pairwise dependence structure (which
//! sets the MI scores). This crate reproduces that shape:
//!
//! * [`Distribution`] — per-column categorical models (uniform, Zipf,
//!   geometric, two-tier head/tail, constant) sampled in O(1) via Walker's
//!   alias method.
//! * [`ColumnSpec`] / [`DatasetProfile`] — a column mix with optional
//!   dependence on shared latent factors, which creates the MI structure
//!   the §6.3 experiments need.
//! * [`generate`] — deterministic materialization into a
//!   [`swope_columnar::Dataset`].
//! * [`corpus`] — the four named census-like profiles with a `scale`
//!   parameter, plus small profiles for tests.
//!
//! Everything is seeded: equal `(profile, seed)` produces bit-identical
//! datasets on every platform.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod distribution;
mod generator;
mod profile;

pub mod corpus;

pub use distribution::{AliasTable, Distribution};
pub use generator::{generate, generate_column, generate_with_locality};
pub use profile::{ColumnSpec, DatasetProfile, Dependence};
