//! Categorical distribution models and O(1) sampling.

use swope_sampling::rng::Xoshiro256pp;

/// A categorical distribution over codes `0..support()`.
///
/// Models chosen to span the entropy range census-style microdata shows:
/// skewed flags, Zipfian categorical answers, geometric counts-like
/// fields, near-uniform identifiers, and constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Every code equally likely — entropy `log2(u)`.
    Uniform {
        /// Support size.
        u: u32,
    },
    /// `P(i) ∝ 1/(i+1)^s` — the classic skew of categorical survey data.
    Zipf {
        /// Support size.
        u: u32,
        /// Skew exponent `s ≥ 0` (0 degenerates to uniform).
        s: f64,
    },
    /// `P(i) ∝ (1−p)^i` — rapidly decaying count-like fields.
    Geometric {
        /// Support size.
        u: u32,
        /// Decay parameter in `(0, 1)`.
        p: f64,
    },
    /// `head` codes share `head_mass` of the probability; the rest is
    /// uniform over the tail. Models flag-plus-detail fields.
    TwoTier {
        /// Support size.
        u: u32,
        /// Number of head codes (`1 ≤ head ≤ u`).
        head: u32,
        /// Probability mass on the head, in `(0, 1)`.
        head_mass: f64,
    },
    /// Always code 0 — a constant column (entropy 0) with declared support.
    Constant {
        /// Declared support size (≥ 1).
        u: u32,
    },
}

impl Distribution {
    /// The support size `u`.
    pub fn support(&self) -> u32 {
        match *self {
            Self::Uniform { u }
            | Self::Zipf { u, .. }
            | Self::Geometric { u, .. }
            | Self::TwoTier { u, .. }
            | Self::Constant { u } => u,
        }
    }

    /// The probability vector `P(0), …, P(u−1)`.
    pub fn probabilities(&self) -> Vec<f64> {
        match *self {
            Self::Uniform { u } => {
                let u = u.max(1) as usize;
                vec![1.0 / u as f64; u]
            }
            Self::Zipf { u, s } => {
                let weights: Vec<f64> =
                    (0..u.max(1)).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
                normalize(weights)
            }
            Self::Geometric { u, p } => {
                let p = p.clamp(1e-9, 1.0 - 1e-9);
                let weights: Vec<f64> = (0..u.max(1)).map(|i| (1.0 - p).powi(i as i32)).collect();
                normalize(weights)
            }
            Self::TwoTier { u, head, head_mass } => {
                let u = u.max(1);
                let head = head.clamp(1, u);
                let head_mass = head_mass.clamp(0.0, 1.0);
                let tail = u - head;
                // Degenerate head == u: the whole distribution is "head",
                // so the head carries all the mass, not just head_mass.
                let head_p = if tail == 0 { 1.0 / head as f64 } else { head_mass / head as f64 };
                let tail_p = if tail == 0 { 0.0 } else { (1.0 - head_mass) / tail as f64 };
                (0..u).map(|i| if i < head { head_p } else { tail_p }).collect()
            }
            Self::Constant { u } => {
                let mut p = vec![0.0; u.max(1) as usize];
                p[0] = 1.0;
                p
            }
        }
    }

    /// The model's true (distributional) Shannon entropy in bits.
    ///
    /// Empirical entropy of a generated column converges to this value;
    /// useful for designing workloads with prescribed score spreads.
    pub fn entropy(&self) -> f64 {
        self.probabilities().iter().filter(|&&p| p > 0.0).map(|&p| -p * p.log2()).sum()
    }

    /// Compiles the model into an O(1) [`AliasTable`] sampler.
    pub fn sampler(&self) -> AliasTable {
        AliasTable::new(&self.probabilities())
    }
}

fn normalize(weights: Vec<f64>) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

/// Walker/Vose alias method: O(u) construction, O(1) sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from a probability vector (need not be perfectly
    /// normalized; it is re-normalized internally).
    ///
    /// # Panics
    /// Panics if `probabilities` is empty or sums to 0.
    pub fn new(probabilities: &[f64]) -> Self {
        assert!(!probabilities.is_empty(), "empty probability vector");
        let n = probabilities.len();
        let total: f64 = probabilities.iter().sum();
        assert!(total > 0.0, "probabilities sum to zero");
        let scaled: Vec<f64> = probabilities.iter().map(|&p| p * n as f64 / total).collect();

        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = work[s];
            alias[s] = l as u32;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one code.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> u32 {
        let i = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_histogram(dist: &Distribution, draws: usize, seed: u64) -> Vec<f64> {
        let table = dist.sampler();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut counts = vec![0u64; dist.support() as usize];
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    fn assert_close(observed: &[f64], expected: &[f64], tol: f64) {
        for (i, (&o, &e)) in observed.iter().zip(expected).enumerate() {
            assert!((o - e).abs() < tol, "code {i}: observed {o}, expected {e}");
        }
    }

    #[test]
    fn uniform_probabilities_and_entropy() {
        let d = Distribution::Uniform { u: 8 };
        assert_eq!(d.probabilities(), vec![0.125; 8]);
        assert!((d.entropy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_normalized_and_decreasing() {
        let d = Distribution::Zipf { u: 10, s: 1.0 };
        let p = d.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in p.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(d.entropy() < Distribution::Uniform { u: 10 }.entropy());
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let d = Distribution::Zipf { u: 5, s: 0.0 };
        assert_close(&d.probabilities(), &[0.2; 5], 1e-12);
    }

    #[test]
    fn geometric_decays() {
        let d = Distribution::Geometric { u: 6, p: 0.5 };
        let p = d.probabilities();
        for w in p.windows(2) {
            assert!((w[1] / w[0] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn two_tier_mass_split() {
        let d = Distribution::TwoTier { u: 10, head: 2, head_mass: 0.8 };
        let p = d.probabilities();
        assert!((p[0] - 0.4).abs() < 1e-12);
        assert!((p[5] - 0.025).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_has_zero_entropy() {
        let d = Distribution::Constant { u: 7 };
        assert_eq!(d.entropy(), 0.0);
        assert_eq!(d.probabilities()[0], 1.0);
    }

    #[test]
    fn alias_table_matches_target_distribution() {
        let d = Distribution::Zipf { u: 8, s: 1.2 };
        let observed = empirical_histogram(&d, 200_000, 42);
        assert_close(&observed, &d.probabilities(), 0.01);
    }

    #[test]
    fn alias_table_uniform_sanity() {
        let d = Distribution::Uniform { u: 4 };
        let observed = empirical_histogram(&d, 100_000, 7);
        assert_close(&observed, &[0.25; 4], 0.01);
    }

    #[test]
    fn alias_table_single_category() {
        let t = AliasTable::new(&[1.0]);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_handles_zero_entries() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..1000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-probability code {s}");
        }
    }

    #[test]
    #[should_panic(expected = "empty probability vector")]
    fn alias_table_rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    fn entropy_ordering_across_models() {
        let u = 64;
        let uniform = Distribution::Uniform { u }.entropy();
        let mild = Distribution::Zipf { u, s: 0.5 }.entropy();
        let heavy = Distribution::Zipf { u, s: 2.0 }.entropy();
        assert!(uniform > mild && mild > heavy && heavy > 0.0);
    }
}
