//! `swope` — command-line interface for approximate entropy and mutual
//! information queries over CSV files and SWOPE snapshots.
//!
//! ```text
//! swope stats data.csv
//! swope entropy-topk data.csv -k 5 --epsilon 0.1
//! swope entropy-filter data.csv --eta 2.0 --algo exact
//! swope mi-topk data.csv --target income -k 5
//! swope mi-filter data.swop --target income --eta 0.3
//! swope gen cdc --scale 0.01 --out cdc.swop
//! swope convert data.csv data.swop
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
