//! Hand-rolled argument parsing (no external CLI crates allowed).

/// Top-level usage text.
pub const USAGE: &str = "usage: swope <command> [options]

commands:
  stats <file>                         dataset summary and per-column statistics
  inspect <file>                       storage layout: per-column code width,
                                       bytes in memory, savings vs all-u32,
                                       and the partition sketch (if present)
  entropy-topk <file> -k <n>           top-k attributes by empirical entropy
  entropy-filter <file> --eta <t>      attributes with entropy >= eta
  mi-topk <file> --target <a> -k <n>   top-k attributes by mutual information
  mi-filter <file> --target <a> --eta <t>
  entropy-profile <file>               error-bounded entropy of every attribute
  mi-profile <file> --target <a>       error-bounded MI of every candidate
  compare <file> [-k <n>]              SWOPE vs exact: speedup and agreement
  drift <a> <b>                        per-attribute JS distance between snapshots
  gen <profile> --out <file>           generate a synthetic dataset
                                       (profiles: cdc hus pus enem tiny)
  convert <in> <out>                   convert between .csv and .swop
  split <in> <out-a> <out-b> --at <n>  split rows [0,n) and [n,end) into two
                                       files, preserving schema and supports
                                       (shard servers for `serve --peer`)
  serve [<file>...]                    HTTP query server over the given datasets

common options:
  --algo swope|rank|exact   query algorithm (default swope)
  --epsilon <f>             SWOPE error parameter (defaults per query type)
  --pf <f>                  failure probability (default 1/N)
  --threads <n>             worker threads (default 1)
  --seed <u64>              sampling / generation seed
  --max-support <n>         drop columns with support above this (default 1000)
  --scale <f>               row scale for `gen` (default 0.01)
  --rows <n> --cols <n>     shape for `gen tiny`

scoped queries (swope algo only):
  --row-start <n>           first row of the query scope (inclusive, default 0)
  --row-end <n>             one past the last row of the scope (default: all)
  --where <attr=value>      restrict to rows where the attribute equals the
                            value (name or index = raw value or code)

sharded queries (swope algo only):
  --shards <n>              split the dataset into n row shards, count on
                            each, and merge — answers are bitwise-identical
                            to the unsharded run (cannot combine with scopes)

observability (swope algo only):
  --events-out <path>       write per-query observer events as JSON lines
  --metrics                 print a metrics summary table after the query

serve options:
  --addr <host:port>        listen address (default 127.0.0.1:7878; port 0 = any)
  --queue-depth <n>         bounded request queue size (default 64)
  --cache-capacity <n>      result-cache entries, 0 disables (default 256)
  --deadline-ms <n>         max queueing time before answering 503 (default 10000)
  --exec-threads <n>        shared query execution-pool size (default: all cores)
  --trace                   trace every query (otherwise only requests sending
                            an X-Swope-Trace header); see GET /debug/traces
  --slow-ms <n>             flight-recorder threshold for GET /debug/slow
                            (default 250)
  --access-log <path>       append one logfmt line per served request
  --keep-alive-ms <n>       idle keep-alive window before a connection is
                            closed (default 30000)
  --max-conns <n>           open-connection cap; extra clients get 503
                            (default 4096)
  --tenant-rps <f>          per-tenant request rate (token bucket keyed by
                            X-Swope-Api-Key; over-rate gets 429, default off)
  --tenant-burst <f>        per-tenant burst size (default 2x --tenant-rps)
  --peer <host:port>        shard peer to fan queries out to (repeatable;
                            makes this server a cluster coordinator)
  --peer-timeout-ms <n>     per-peer connect/io timeout (default 2000/10000)

out-of-core storage (serve, and any query command reading a .swop file):
  --mmap                    serve snapshots out-of-core: map the file and
                            decode 65536-row pages on demand through the
                            page cache instead of loading columns eagerly
  --store-budget-bytes <n>  page-cache byte budget; past it cold pages are
                            re-compressed and evicted (default: unbounded;
                            implies --mmap)";

/// Which algorithm a query should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// SWOPE approximate query (the default).
    #[default]
    Swope,
    /// EntropyRank / EntropyFilter exact-by-sampling baseline.
    Rank,
    /// Full-scan exact baseline.
    Exact,
}

/// Parsed option bag shared by all commands.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `-k`.
    pub k: Option<usize>,
    /// `--eta`.
    pub eta: Option<f64>,
    /// `--target` (name or index).
    pub target: Option<String>,
    /// `--algo`.
    pub algo: Algo,
    /// `--epsilon`.
    pub epsilon: Option<f64>,
    /// `--pf`.
    pub pf: Option<f64>,
    /// `--threads`.
    pub threads: Option<usize>,
    /// `--seed`.
    pub seed: Option<u64>,
    /// `--max-support`.
    pub max_support: Option<u32>,
    /// `--scale` (gen).
    pub scale: Option<f64>,
    /// `--rows` (gen tiny).
    pub rows: Option<usize>,
    /// `--cols` (gen tiny).
    pub cols: Option<usize>,
    /// `--out` (gen).
    pub out: Option<String>,
    /// `--row-start`: first row of the query scope (inclusive).
    pub row_start: Option<usize>,
    /// `--row-end`: one past the last row of the query scope.
    pub row_end: Option<usize>,
    /// `--where`: `attr=value` equality predicate restricting the scope.
    pub where_clause: Option<String>,
    /// `--events-out`: JSONL observer event sink path.
    pub events_out: Option<String>,
    /// `--metrics`: print a metrics summary after the query.
    pub metrics: bool,
    /// `--addr` (serve): listen address.
    pub addr: Option<String>,
    /// `--queue-depth` (serve): bounded request queue size.
    pub queue_depth: Option<usize>,
    /// `--cache-capacity` (serve): result-cache entries.
    pub cache_capacity: Option<usize>,
    /// `--deadline-ms` (serve): max queueing milliseconds before 503.
    pub deadline_ms: Option<u64>,
    /// `--exec-threads` (serve): shared execution-pool size for queries
    /// asking for `threads > 1` (default: available parallelism).
    pub exec_threads: Option<usize>,
    /// `--trace` (serve): trace every query request.
    pub trace: bool,
    /// `--slow-ms` (serve): slow-query flight-recorder threshold.
    pub slow_ms: Option<u64>,
    /// `--access-log` (serve): per-request logfmt file path.
    pub access_log: Option<String>,
    /// `--keep-alive-ms` (serve): idle keep-alive window.
    pub keep_alive_ms: Option<u64>,
    /// `--max-conns` (serve): open-connection cap.
    pub max_conns: Option<usize>,
    /// `--tenant-rps` (serve): per-tenant token-bucket refill rate.
    pub tenant_rps: Option<f64>,
    /// `--tenant-burst` (serve): per-tenant token-bucket capacity.
    pub tenant_burst: Option<f64>,
    /// `--shards` (queries): shard-count for the count-merge path.
    pub shards: Option<usize>,
    /// `--at` (split): the row cut point.
    pub at: Option<usize>,
    /// `--peer` (serve, repeatable): shard peers to coordinate over.
    pub peers: Vec<String>,
    /// `--peer-timeout-ms` (serve): connect and io timeout per peer.
    pub peer_timeout_ms: Option<u64>,
    /// `--mmap`: open `.swop` files out-of-core through the page cache.
    pub mmap: bool,
    /// `--store-budget-bytes`: page-cache byte budget (implies `--mmap`).
    pub store_budget_bytes: Option<u64>,
}

impl Options {
    /// Whether out-of-core paging was requested: `--mmap`, or
    /// `--store-budget-bytes` (a budget without paging is meaningless,
    /// so it implies the mapping).
    pub fn paged(&self) -> bool {
        self.mmap || self.store_budget_bytes.is_some()
    }
}

/// Parses everything after the command word.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-k" => o.k = Some(value(args, &mut i, "-k")?),
            "--eta" => o.eta = Some(value(args, &mut i, "--eta")?),
            "--target" => o.target = Some(raw_value(args, &mut i, "--target")?),
            "--epsilon" => o.epsilon = Some(value(args, &mut i, "--epsilon")?),
            "--pf" => o.pf = Some(value(args, &mut i, "--pf")?),
            "--threads" => o.threads = Some(value(args, &mut i, "--threads")?),
            "--seed" => o.seed = Some(value(args, &mut i, "--seed")?),
            "--max-support" => o.max_support = Some(value(args, &mut i, "--max-support")?),
            "--scale" => o.scale = Some(value(args, &mut i, "--scale")?),
            "--rows" => o.rows = Some(value(args, &mut i, "--rows")?),
            "--cols" => o.cols = Some(value(args, &mut i, "--cols")?),
            "--out" => o.out = Some(raw_value(args, &mut i, "--out")?),
            "--row-start" => o.row_start = Some(value(args, &mut i, "--row-start")?),
            "--row-end" => o.row_end = Some(value(args, &mut i, "--row-end")?),
            "--where" => o.where_clause = Some(raw_value(args, &mut i, "--where")?),
            "--events-out" => o.events_out = Some(raw_value(args, &mut i, "--events-out")?),
            "--metrics" => o.metrics = true,
            "--addr" => o.addr = Some(raw_value(args, &mut i, "--addr")?),
            "--queue-depth" => o.queue_depth = Some(value(args, &mut i, "--queue-depth")?),
            "--cache-capacity" => o.cache_capacity = Some(value(args, &mut i, "--cache-capacity")?),
            "--deadline-ms" => o.deadline_ms = Some(value(args, &mut i, "--deadline-ms")?),
            "--exec-threads" => o.exec_threads = Some(value(args, &mut i, "--exec-threads")?),
            "--trace" => o.trace = true,
            "--slow-ms" => o.slow_ms = Some(value(args, &mut i, "--slow-ms")?),
            "--access-log" => o.access_log = Some(raw_value(args, &mut i, "--access-log")?),
            "--keep-alive-ms" => o.keep_alive_ms = Some(value(args, &mut i, "--keep-alive-ms")?),
            "--max-conns" => o.max_conns = Some(value(args, &mut i, "--max-conns")?),
            "--tenant-rps" => o.tenant_rps = Some(value(args, &mut i, "--tenant-rps")?),
            "--tenant-burst" => o.tenant_burst = Some(value(args, &mut i, "--tenant-burst")?),
            "--shards" => o.shards = Some(value(args, &mut i, "--shards")?),
            "--at" => o.at = Some(value(args, &mut i, "--at")?),
            "--peer" => o.peers.push(raw_value(args, &mut i, "--peer")?),
            "--peer-timeout-ms" => {
                o.peer_timeout_ms = Some(value(args, &mut i, "--peer-timeout-ms")?)
            }
            "--mmap" => o.mmap = true,
            "--store-budget-bytes" => {
                o.store_budget_bytes = Some(value(args, &mut i, "--store-budget-bytes")?)
            }
            "--algo" => {
                let v = raw_value(args, &mut i, "--algo")?;
                o.algo = match v.as_str() {
                    "swope" => Algo::Swope,
                    "rank" => Algo::Rank,
                    "exact" => Algo::Exact,
                    other => return Err(format!("unknown algorithm {other:?}")),
                };
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option {flag:?}"));
            }
            positional => o.positional.push(positional.to_owned()),
        }
        i += 1;
    }
    Ok(o)
}

fn raw_value(args: &[String], i: &mut usize, name: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{name} requires a value"))
}

fn value<T: std::str::FromStr>(args: &[String], i: &mut usize, name: &str) -> Result<T, String> {
    let raw = raw_value(args, i, name)?;
    raw.parse().map_err(|_| format!("invalid value {raw:?} for {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_options(&v)
    }

    #[test]
    fn parses_mixed_positional_and_flags() {
        let o = parse(&["data.csv", "-k", "5", "--epsilon", "0.2", "--algo", "rank"]).unwrap();
        assert_eq!(o.positional, vec!["data.csv"]);
        assert_eq!(o.k, Some(5));
        assert_eq!(o.epsilon, Some(0.2));
        assert_eq!(o.algo, Algo::Rank);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["-k", "notanumber"]).is_err());
        assert!(parse(&["-k"]).is_err());
        assert!(parse(&["--algo", "magic"]).is_err());
    }

    #[test]
    fn target_and_eta() {
        let o = parse(&["f.swop", "--target", "income", "--eta", "0.3"]).unwrap();
        assert_eq!(o.target.as_deref(), Some("income"));
        assert_eq!(o.eta, Some(0.3));
    }

    #[test]
    fn gen_options() {
        let o =
            parse(&["tiny", "--rows", "100", "--cols", "8", "--out", "t.swop", "--scale", "0.5"])
                .unwrap();
        assert_eq!(o.rows, Some(100));
        assert_eq!(o.cols, Some(8));
        assert_eq!(o.out.as_deref(), Some("t.swop"));
        assert_eq!(o.scale, Some(0.5));
    }

    #[test]
    fn scope_flags() {
        let o = parse(&[
            "d.swop",
            "-k",
            "2",
            "--row-start",
            "100",
            "--row-end",
            "900",
            "--where",
            "state=CA",
        ])
        .unwrap();
        assert_eq!(o.row_start, Some(100));
        assert_eq!(o.row_end, Some(900));
        assert_eq!(o.where_clause.as_deref(), Some("state=CA"));
        assert!(parse(&["--row-start", "early"]).is_err());
        assert!(parse(&["--where"]).is_err());
        let o = parse(&["d.swop"]).unwrap();
        assert_eq!((o.row_start, o.row_end), (None, None));
        assert!(o.where_clause.is_none());
    }

    #[test]
    fn observability_flags() {
        let o = parse(&["d.swop", "-k", "2", "--events-out", "ev.jsonl", "--metrics"]).unwrap();
        assert_eq!(o.events_out.as_deref(), Some("ev.jsonl"));
        assert!(o.metrics);
        assert!(parse(&["--events-out"]).is_err());
        let o = parse(&["d.swop"]).unwrap();
        assert!(o.events_out.is_none());
        assert!(!o.metrics);
    }

    #[test]
    fn serve_options() {
        let o = parse(&[
            "a.swop",
            "--addr",
            "127.0.0.1:0",
            "--queue-depth",
            "8",
            "--cache-capacity",
            "32",
            "--deadline-ms",
            "250",
            "--exec-threads",
            "3",
        ])
        .unwrap();
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.queue_depth, Some(8));
        assert_eq!(o.cache_capacity, Some(32));
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.exec_threads, Some(3));
        assert!(parse(&["--queue-depth", "lots"]).is_err());
        assert!(parse(&["--addr"]).is_err());
    }

    #[test]
    fn serve_tracing_options() {
        let o =
            parse(&["a.swop", "--trace", "--slow-ms", "50", "--access-log", "req.log"]).unwrap();
        assert!(o.trace);
        assert_eq!(o.slow_ms, Some(50));
        assert_eq!(o.access_log.as_deref(), Some("req.log"));
        assert!(parse(&["--slow-ms", "fast"]).is_err());
        assert!(parse(&["--access-log"]).is_err());
        let o = parse(&["a.swop"]).unwrap();
        assert!(!o.trace);
        assert_eq!((o.slow_ms, o.access_log), (None, None));
    }

    #[test]
    fn serve_connection_options() {
        let o = parse(&[
            "a.swop",
            "--keep-alive-ms",
            "5000",
            "--max-conns",
            "128",
            "--tenant-rps",
            "2.5",
            "--tenant-burst",
            "10",
        ])
        .unwrap();
        assert_eq!(o.keep_alive_ms, Some(5000));
        assert_eq!(o.max_conns, Some(128));
        assert_eq!(o.tenant_rps, Some(2.5));
        assert_eq!(o.tenant_burst, Some(10.0));
        assert!(parse(&["--keep-alive-ms", "forever"]).is_err());
        assert!(parse(&["--max-conns"]).is_err());
        assert!(parse(&["--tenant-rps", "fast"]).is_err());
        let o = parse(&["a.swop"]).unwrap();
        assert!(o.keep_alive_ms.is_none() && o.max_conns.is_none());
        assert!(o.tenant_rps.is_none() && o.tenant_burst.is_none());
    }

    #[test]
    fn shard_and_peer_flags() {
        let o = parse(&["d.swop", "-k", "2", "--shards", "4"]).unwrap();
        assert_eq!(o.shards, Some(4));
        assert!(parse(&["--shards", "many"]).is_err());
        let o = parse(&[
            "a.swop",
            "--peer",
            "10.0.0.1:7878",
            "--peer",
            "10.0.0.2:7878",
            "--peer-timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(o.peers, vec!["10.0.0.1:7878", "10.0.0.2:7878"]);
        assert_eq!(o.peer_timeout_ms, Some(500));
        assert!(parse(&["--peer"]).is_err());
        let o = parse(&["d.swop"]).unwrap();
        assert!(o.shards.is_none());
        assert!(o.peers.is_empty());
        assert!(o.peer_timeout_ms.is_none());
    }

    #[test]
    fn pager_flags() {
        let o = parse(&["a.swop", "--mmap"]).unwrap();
        assert!(o.mmap && o.paged());
        assert!(o.store_budget_bytes.is_none());
        let o = parse(&["a.swop", "--store-budget-bytes", "1048576"]).unwrap();
        assert!(!o.mmap);
        assert_eq!(o.store_budget_bytes, Some(1_048_576));
        assert!(o.paged(), "a byte budget implies paging");
        assert!(parse(&["--store-budget-bytes", "plenty"]).is_err());
        assert!(parse(&["--store-budget-bytes"]).is_err());
        let o = parse(&["a.swop"]).unwrap();
        assert!(!o.paged());
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.algo, Algo::Swope);
        assert!(o.positional.is_empty());
        assert!(o.k.is_none());
    }
}
