//! Command implementations.

use std::fs::File;
use std::io::BufWriter;
use swope_baselines::{
    entropy_filter_exact_sampling, entropy_rank_top_k, exact_entropy_filter, exact_entropy_top_k,
    exact_mi_filter, exact_mi_top_k, mi_filter_exact_sampling, mi_rank_top_k,
};

use swope_columnar::{csv, snapshot, stats, Dataset, DatasetSketch, PageCache, PAGE_ROWS};
use swope_core::{
    entropy_filter_observed, entropy_filter_scoped_exec, entropy_filter_sharded_exec,
    entropy_profile_observed, entropy_profile_scoped_exec, entropy_profile_sharded_exec,
    entropy_top_k, entropy_top_k_observed, entropy_top_k_scoped_exec, entropy_top_k_sharded_exec,
    mi_filter_observed, mi_filter_scoped_exec, mi_filter_sharded_exec, mi_profile_observed,
    mi_profile_scoped_exec, mi_profile_sharded_exec, mi_top_k_observed, mi_top_k_scoped_exec,
    mi_top_k_sharded_exec, AttrScore, ComposedObserver, Executor, FilterResult, JsonlSink,
    MetricsRegistry, ProfileResult, Scope, SwopeConfig, TopKResult,
};

use crate::args::{parse_options, Algo, Options};

/// Per-command observability wiring for `--events-out` / `--metrics`.
///
/// Both sinks are optional; with neither flag the composed observer
/// reports itself disabled and the query runs the zero-overhead path.
struct Observability {
    sink: Option<JsonlSink<BufWriter<File>>>,
    metrics: Option<MetricsRegistry>,
}

impl Observability {
    fn from_opts(opts: &Options) -> Result<Self, String> {
        let sink = match opts.events_out.as_deref() {
            Some(path) => {
                Some(JsonlSink::create(path).map_err(|e| format!("opening {path}: {e}"))?)
            }
            None => None,
        };
        let metrics = opts.metrics.then(MetricsRegistry::new);
        if (sink.is_some() || metrics.is_some()) && opts.algo != Algo::Swope {
            eprintln!("note: --events-out/--metrics only instrument the swope algorithm");
        }
        Ok(Self { sink, metrics })
    }

    /// A composed observer borrowing both sinks. The JSONL half is taken
    /// by `&mut` (it buffers a writer); the metrics half is all-atomic
    /// and observes through a shared reference.
    fn observer(
        &mut self,
    ) -> ComposedObserver<&mut Option<JsonlSink<BufWriter<File>>>, Option<&MetricsRegistry>> {
        ComposedObserver::new(&mut self.sink, self.metrics.as_ref())
    }

    /// Flushes the event sink (surfacing any sticky I/O error) and prints
    /// the metrics table.
    fn finish(self) -> Result<(), String> {
        if let Some(sink) = self.sink {
            sink.finish().map_err(|e| format!("writing events: {e}"))?;
        }
        if let Some(metrics) = self.metrics {
            println!(
                "
{}",
                metrics.render_table()
            );
        }
        Ok(())
    }
}

/// Dispatches a full argv (after the binary name).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (command, rest) = argv.split_first().ok_or("no command given")?;
    let opts = parse_options(rest)?;
    match command.as_str() {
        "stats" => cmd_stats(&opts),
        "inspect" => cmd_inspect(&opts),
        "entropy-topk" => cmd_entropy_topk(&opts),
        "entropy-filter" => cmd_entropy_filter(&opts),
        "mi-topk" => cmd_mi_topk(&opts),
        "mi-filter" => cmd_mi_filter(&opts),
        "entropy-profile" => cmd_entropy_profile(&opts),
        "mi-profile" => cmd_mi_profile(&opts),
        "compare" => cmd_compare(&opts),
        "drift" => cmd_drift(&opts),
        "gen" => cmd_gen(&opts),
        "convert" => cmd_convert(&opts),
        "split" => cmd_split(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", crate::args::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Loads a dataset by extension (`.swop` snapshot or CSV otherwise) and
/// applies the support cap.
fn load(opts: &Options) -> Result<Dataset, String> {
    Ok(load_with_sketch(opts)?.0)
}

/// [`load`] plus the snapshot-carried partition sketch, if any. The
/// sketch is dropped when the support cap removed columns — its column
/// set no longer matches the capped dataset.
fn load_with_sketch(opts: &Options) -> Result<(Dataset, Option<DatasetSketch>), String> {
    let path = opts.positional.first().ok_or("expected a dataset file argument")?;
    let (ds, sketch) = if opts.paged() {
        // Out-of-core: map the snapshot and decode pages on demand
        // through a command-scoped page cache. CSV inputs have no paged
        // form and load eagerly as before.
        let cache = std::sync::Arc::new(PageCache::new(opts.store_budget_bytes));
        Dataset::from_path_paged(path, cache).map_err(|e| format!("loading {path}: {e}"))?
    } else {
        Dataset::from_path_with_sketch(path).map_err(|e| format!("loading {path}: {e}"))?
    };
    let cap = opts.max_support.unwrap_or(1000);
    let (capped, kept) = ds.cap_support(cap);
    let dropped = ds.num_attrs() - kept.len();
    if dropped > 0 {
        eprintln!("note: dropped {dropped} column(s) with support > {cap}");
    }
    Ok((capped, sketch.filter(|_| dropped == 0)))
}

/// Builds the query scope from `--row-start`/`--row-end`/`--where`, or
/// `None` when no scope flag was given. Scopes only exist on the SWOPE
/// path — the rank/exact baselines always scan the whole dataset.
fn scope_from_opts(ds: &Dataset, opts: &Options) -> Result<Option<Scope>, String> {
    if opts.row_start.is_none() && opts.row_end.is_none() && opts.where_clause.is_none() {
        return Ok(None);
    }
    if opts.algo != Algo::Swope {
        return Err("scoped queries (--row-start/--row-end/--where) require --algo swope".into());
    }
    let mut scope =
        Scope::range(opts.row_start.unwrap_or(0), opts.row_end.unwrap_or(ds.num_rows()));
    if let Some(clause) = opts.where_clause.as_deref() {
        let (attr_raw, value_raw) = clause
            .split_once('=')
            .ok_or_else(|| format!("malformed --where clause {clause:?}: expected attr=value"))?;
        let attr = resolve_attr(ds, attr_raw)?;
        let code = match value_raw.parse::<u32>() {
            Ok(code) => code,
            Err(_) => ds
                .schema()
                .field(attr)
                .and_then(|f| f.dictionary())
                .ok_or_else(|| {
                    format!("attribute {attr_raw:?} has no dictionary; use a numeric code")
                })?
                .lookup(value_raw)
                .ok_or_else(|| {
                    format!("value {value_raw:?} not found in attribute {attr_raw:?}")
                })?,
        };
        scope = scope.with_predicate(attr, code);
    }
    Ok(Some(scope))
}

/// Validates `--shards`. The count-merge path answers whole-dataset
/// queries only (a scope would change which rows each shard may count),
/// and only the SWOPE algorithm has a sharded loop.
fn shards_from_opts(opts: &Options) -> Result<Option<usize>, String> {
    let Some(shards) = opts.shards else { return Ok(None) };
    if opts.algo != Algo::Swope {
        return Err("sharded queries (--shards) require --algo swope".into());
    }
    if opts.row_start.is_some() || opts.row_end.is_some() || opts.where_clause.is_some() {
        return Err("--shards cannot be combined with --row-start/--row-end/--where".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(Some(shards))
}

fn query_config(opts: &Options, default_epsilon: f64) -> SwopeConfig {
    let mut cfg = SwopeConfig::with_epsilon(opts.epsilon.unwrap_or(default_epsilon));
    cfg.failure_probability = opts.pf;
    if let Some(t) = opts.threads {
        cfg = cfg.with_threads(t);
    }
    if let Some(s) = opts.seed {
        cfg = cfg.with_seed(s);
    }
    cfg
}

fn resolve_target(ds: &Dataset, opts: &Options) -> Result<usize, String> {
    resolve_attr(ds, opts.target.as_deref().ok_or("--target is required")?)
}

/// Resolves an attribute named by index or by schema name.
fn resolve_attr(ds: &Dataset, raw: &str) -> Result<usize, String> {
    if let Ok(idx) = raw.parse::<usize>() {
        if idx < ds.num_attrs() {
            return Ok(idx);
        }
        return Err(format!("attribute index {idx} out of range"));
    }
    ds.attr_index(raw).map_err(|e| e.to_string())
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    let ds = load(opts)?;
    let summary = stats::summarize(&ds);
    println!(
        "rows: {}   columns: {}   max support: {}",
        summary.rows, summary.columns, summary.max_support
    );
    println!("{:<24} {:>8} {:>10} {:>10} {:>8}", "column", "support", "distinct", "mode", "mode%");
    for s in stats::dataset_stats(&ds) {
        println!(
            "{:<24} {:>8} {:>10} {:>10} {:>7.1}%",
            truncate(&s.name, 24),
            s.support,
            s.observed_distinct,
            s.mode.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
            s.mode_fraction * 100.0
        );
    }
    Ok(())
}

/// `swope inspect <file>`: physical storage layout — which code width
/// each column packed to, how many bytes it occupies, what the width
/// packing saves over a uniform u32 representation, and the partition
/// sketch a `.swop` v2 snapshot carries (per-column histogram layout
/// plus the whole-sketch footprint). A dataset without a sketch (CSV
/// input or a pre-sketch snapshot) degrades to `sketch: none`.
fn cmd_inspect(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let summary = stats::summarize(&ds);
    println!(
        "rows: {}   columns: {}   max support: {}",
        summary.rows, summary.columns, summary.max_support
    );
    println!("{:<24} {:>8} {:>6} {:>12} {:>8}", "column", "support", "width", "bytes", "sketch");
    for (attr, s) in stats::dataset_stats(&ds).iter().enumerate() {
        let kind =
            sketch.as_ref().and_then(|sk| sk.column(attr)).map(|c| c.kind().name()).unwrap_or("-");
        println!(
            "{:<24} {:>8} {:>5}b {:>12} {:>8}",
            truncate(&s.name, 24),
            s.support,
            s.code_width,
            s.bytes_in_memory,
            kind
        );
    }
    let packed = stats::bytes_in_memory(&ds);
    let unpacked = stats::bytes_unpacked(&ds);
    let saved = unpacked.saturating_sub(packed);
    let pct = if unpacked > 0 { saved as f64 / unpacked as f64 * 100.0 } else { 0.0 };
    println!("total: {packed} bytes packed ({unpacked} at u32; saves {saved} bytes, {pct:.1}%)");
    // Residency: with --mmap the columns above were scanned through the
    // page cache, so "resident" is what survived eviction, not the file.
    let paged_cols: Vec<_> = (0..ds.num_attrs()).filter_map(|a| ds.column(a).paged()).collect();
    if let Some(first) = paged_cols.first() {
        let resident: u64 = paged_cols.iter().map(|p| p.resident_bytes()).sum();
        let plain: u64 = paged_cols.iter().map(|p| p.plain_bytes()).sum();
        let budget = match opts.store_budget_bytes {
            Some(b) => format!("{b} byte budget"),
            None => "unbounded".into(),
        };
        println!(
            "paged: {} column(s) via {}, {resident} of {plain} bytes resident ({budget})",
            paged_cols.len(),
            first.mapping_kind()
        );
    }
    match &sketch {
        Some(sk) => {
            let covered = ds.num_rows() - ds.num_rows() % PAGE_ROWS;
            let cov_pct =
                if ds.num_rows() > 0 { covered as f64 / ds.num_rows() as f64 * 100.0 } else { 0.0 };
            println!(
                "sketch: {} page(s) x {} column(s), {} bytes encoded, \
                 {cov_pct:.1}% of rows in fully-covered pages",
                sk.num_pages(),
                sk.num_columns(),
                sk.encoded_len()
            );
        }
        None => println!("sketch: none (CSV input or snapshot without a sketch section)"),
    }
    Ok(())
}

fn cmd_entropy_topk(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let k = opts.k.ok_or("-k is required")?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.1);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        entropy_top_k_sharded_exec(
            &ds,
            k,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match (opts.algo, &scope) {
            (Algo::Swope, Some(scope)) => entropy_top_k_scoped_exec(
                &ds,
                k,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            (Algo::Swope, None) => entropy_top_k_observed(&ds, k, &cfg, &mut obs.observer()),
            (Algo::Rank, _) => entropy_rank_top_k(&ds, k, &cfg),
            (Algo::Exact, _) => exact_entropy_top_k(&ds, k),
        }
    }
    .map_err(|e| e.to_string())?;
    print_topk("entropy", &result);
    obs.finish()
}

fn cmd_entropy_filter(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let eta = opts.eta.ok_or("--eta is required")?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.05);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        entropy_filter_sharded_exec(
            &ds,
            eta,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match (opts.algo, &scope) {
            (Algo::Swope, Some(scope)) => entropy_filter_scoped_exec(
                &ds,
                eta,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            (Algo::Swope, None) => entropy_filter_observed(&ds, eta, &cfg, &mut obs.observer()),
            (Algo::Rank, _) => entropy_filter_exact_sampling(&ds, eta, &cfg),
            (Algo::Exact, _) => exact_entropy_filter(&ds, eta),
        }
    }
    .map_err(|e| e.to_string())?;
    print_filter("entropy", eta, &result);
    obs.finish()
}

fn cmd_mi_topk(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let k = opts.k.ok_or("-k is required")?;
    let target = resolve_target(&ds, opts)?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.5);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        mi_top_k_sharded_exec(
            &ds,
            target,
            k,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match (opts.algo, &scope) {
            (Algo::Swope, Some(scope)) => mi_top_k_scoped_exec(
                &ds,
                target,
                k,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            (Algo::Swope, None) => mi_top_k_observed(&ds, target, k, &cfg, &mut obs.observer()),
            (Algo::Rank, _) => mi_rank_top_k(&ds, target, k, &cfg),
            (Algo::Exact, _) => exact_mi_top_k(&ds, target, k),
        }
    }
    .map_err(|e| e.to_string())?;
    println!("target: {} ({})", ds.schema().field(target).map(|f| f.name()).unwrap_or("?"), target);
    print_topk("mutual information", &result);
    obs.finish()
}

fn cmd_mi_filter(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let eta = opts.eta.ok_or("--eta is required")?;
    let target = resolve_target(&ds, opts)?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.5);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        mi_filter_sharded_exec(
            &ds,
            target,
            eta,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match (opts.algo, &scope) {
            (Algo::Swope, Some(scope)) => mi_filter_scoped_exec(
                &ds,
                target,
                eta,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            (Algo::Swope, None) => mi_filter_observed(&ds, target, eta, &cfg, &mut obs.observer()),
            (Algo::Rank, _) => mi_filter_exact_sampling(&ds, target, eta, &cfg),
            (Algo::Exact, _) => exact_mi_filter(&ds, target, eta),
        }
    }
    .map_err(|e| e.to_string())?;
    print_filter("mutual information", eta, &result);
    obs.finish()
}

fn cmd_entropy_profile(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.1);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        entropy_profile_sharded_exec(
            &ds,
            0.05,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match &scope {
            Some(scope) => entropy_profile_scoped_exec(
                &ds,
                0.05,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            None => entropy_profile_observed(&ds, 0.05, &cfg, &mut obs.observer()),
        }
    }
    .map_err(|e| e.to_string())?;
    print_profile("entropy", &result);
    obs.finish()
}

fn cmd_mi_profile(opts: &Options) -> Result<(), String> {
    let (ds, sketch) = load_with_sketch(opts)?;
    let target = resolve_target(&ds, opts)?;
    let scope = scope_from_opts(&ds, opts)?;
    let mut obs = Observability::from_opts(opts)?;
    let cfg = query_config(opts, 0.5);
    let result = if let Some(shards) = shards_from_opts(opts)? {
        mi_profile_sharded_exec(
            &ds,
            target,
            0.05,
            shards,
            &cfg,
            &mut obs.observer(),
            &Executor::new(cfg.threads),
        )
    } else {
        match &scope {
            Some(scope) => mi_profile_scoped_exec(
                &ds,
                target,
                0.05,
                scope,
                sketch.as_ref(),
                &cfg,
                &mut obs.observer(),
                &Executor::new(cfg.threads),
            ),
            None => mi_profile_observed(&ds, target, 0.05, &cfg, &mut obs.observer()),
        }
    }
    .map_err(|e| e.to_string())?;
    println!("target: {} ({})", ds.schema().field(target).map(|f| f.name()).unwrap_or("?"), target);
    print_profile("mutual information", &result);
    obs.finish()
}

fn print_profile(kind: &str, result: &ProfileResult) {
    println!(
        "{} estimate per attribute (sampled {} rows in {} iteration(s)):",
        kind, result.stats.sample_size, result.stats.iterations
    );
    println!("{:<6} {:<24} {:>10} {:>10} {:>10}", "attr", "name", "estimate", "lower", "upper");
    for s in &result.scores {
        print_score(s);
    }
}

/// Runs SWOPE and the exact scan on the same top-k query and reports the
/// speed/agreement trade-off — a quick way to validate the approximation
/// on one's own data before trusting it in a pipeline.
fn cmd_compare(opts: &Options) -> Result<(), String> {
    let ds = load(opts)?;
    let k = opts.k.unwrap_or(5).min(ds.num_attrs());
    let cfg = query_config(opts, 0.1);

    let t0 = std::time::Instant::now();
    let swope = entropy_top_k(&ds, k, &cfg).map_err(|e| e.to_string())?;
    let swope_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = std::time::Instant::now();
    let exact = exact_entropy_top_k(&ds, k).map_err(|e| e.to_string())?;
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

    let exact_set: std::collections::HashSet<usize> = exact.attr_indices().into_iter().collect();
    let hits = swope.attr_indices().iter().filter(|a| exact_set.contains(a)).count();

    println!("entropy top-{k} comparison (epsilon = {}):", cfg.epsilon);
    println!(
        "  SWOPE: {swope_ms:.2} ms, sampled {} of {} rows",
        swope.stats.sample_size,
        ds.num_rows()
    );
    println!("  Exact: {exact_ms:.2} ms (full scan)");
    println!("  speedup: {:.1}x   agreement: {hits}/{k} attributes", exact_ms / swope_ms.max(1e-9));
    println!("\n{:<6} {:<24} {:>10} {:>10}", "attr", "name", "SWOPE est", "exact");
    for s in &swope.top {
        let exact_score = exact.top.iter().find(|e| e.attr == s.attr).map(|e| e.estimate);
        println!(
            "{:<6} {:<24} {:>10.4} {:>10}",
            s.attr,
            truncate(&s.name, 24),
            s.estimate,
            exact_score.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into())
        );
    }
    Ok(())
}

/// Per-attribute distribution drift between two snapshots of the same
/// table (Jensen–Shannon distance, 0 = identical, 1 = disjoint).
fn cmd_drift(opts: &Options) -> Result<(), String> {
    let [a_path, b_path] = opts.positional.as_slice() else {
        return Err("drift expects two dataset files".into());
    };
    let load_one = |path: &str| -> Result<swope_columnar::Dataset, String> {
        Dataset::from_path(path).map_err(|e| format!("loading {path}: {e}"))
    };
    let a = load_one(a_path)?;
    let b = load_one(b_path)?;
    if a.num_attrs() != b.num_attrs() {
        return Err(format!("attribute counts differ: {} vs {}", a.num_attrs(), b.num_attrs()));
    }
    println!("{:<24} {:>12} {:>10}", "attribute", "JS distance", "verdict");
    for attr in 0..a.num_attrs() {
        let name = a.schema().field(attr).map(|f| f.name()).unwrap_or("?");
        // Align code spaces: pad the narrower distribution with zeros.
        let mut pa = swope_estimate::divergence::empirical_distribution(a.column(attr));
        let mut pb = swope_estimate::divergence::empirical_distribution(b.column(attr));
        let width = pa.len().max(pb.len());
        pa.resize(width, 0.0);
        pb.resize(width, 0.0);
        let d = swope_estimate::divergence::jensen_shannon_distance(&pa, &pb);
        let verdict = if d < 0.05 {
            "stable"
        } else if d < 0.2 {
            "minor drift"
        } else {
            "DRIFTED"
        };
        println!("{:<24} {:>12.4} {:>10}", truncate(name, 24), d, verdict);
    }
    Ok(())
}

fn cmd_gen(opts: &Options) -> Result<(), String> {
    let profile_name =
        opts.positional.first().ok_or("expected a profile name (cdc hus pus enem tiny)")?;
    let scale = opts.scale.unwrap_or(0.01);
    let profile = match profile_name.as_str() {
        "cdc" => swope_datagen::corpus::cdc(scale),
        "hus" => swope_datagen::corpus::hus(scale),
        "pus" => swope_datagen::corpus::pus(scale),
        "enem" => swope_datagen::corpus::enem(scale),
        "tiny" => swope_datagen::corpus::tiny(opts.rows.unwrap_or(10_000), opts.cols.unwrap_or(20)),
        other => return Err(format!("unknown profile {other:?}")),
    };
    let out = opts.out.as_deref().ok_or("--out is required")?;
    let ds = swope_datagen::generate(&profile, opts.seed.unwrap_or(0x5170));
    write_dataset(&ds, out)?;
    println!("wrote {} ({} rows x {} columns)", out, ds.num_rows(), ds.num_attrs());
    Ok(())
}

fn cmd_convert(opts: &Options) -> Result<(), String> {
    let [input, output] = opts.positional.as_slice() else {
        return Err("convert expects <in> <out>".into());
    };
    let ds = Dataset::from_path(input).map_err(|e| e.to_string())?;
    write_dataset(&ds, output)?;
    println!("wrote {output}");
    Ok(())
}

/// `swope split <in> <out-a> <out-b> --at <n>`: cut a dataset row-wise
/// into `[0, n)` and `[n, end)`. Schema (dictionaries included) and
/// per-column supports carry over unchanged, so two shard servers
/// serving the halves form exactly the union a single box serving the
/// input would answer for — the property `serve --peer` relies on.
fn cmd_split(opts: &Options) -> Result<(), String> {
    let [input, out_a, out_b] = opts.positional.as_slice() else {
        return Err("split expects <in> <out-a> <out-b>".into());
    };
    let at = opts.at.ok_or("--at is required")?;
    let ds = Dataset::from_path(input).map_err(|e| format!("loading {input}: {e}"))?;
    if at == 0 || at >= ds.num_rows() {
        return Err(format!("--at {at} must fall inside the {} rows", ds.num_rows()));
    }
    let head: Vec<usize> = (0..at).collect();
    let tail: Vec<usize> = (at..ds.num_rows()).collect();
    write_dataset(&ds.take_rows(&head), out_a)?;
    write_dataset(&ds.take_rows(&tail), out_b)?;
    println!("wrote {out_a} ({at} rows) and {out_b} ({} rows)", ds.num_rows() - at);
    Ok(())
}

/// `swope serve [<file>...]`: load the given datasets, bind, and serve
/// until SIGINT/SIGTERM.
fn cmd_serve(opts: &Options) -> Result<(), String> {
    let config = swope_server::ServerConfig {
        addr: opts.addr.clone().unwrap_or_else(|| "127.0.0.1:7878".into()),
        threads: opts.threads.unwrap_or(4),
        queue_capacity: opts.queue_depth.unwrap_or(64),
        cache_capacity: opts.cache_capacity.unwrap_or(256),
        deadline: std::time::Duration::from_millis(opts.deadline_ms.unwrap_or(10_000)),
        max_support: opts.max_support.unwrap_or(1000),
        handle_signals: true,
        exec_threads: opts
            .exec_threads
            .unwrap_or_else(|| swope_server::ServerConfig::default().exec_threads),
        trace: opts.trace,
        slow_ms: opts.slow_ms.unwrap_or(250),
        access_log: opts.access_log.clone(),
        keep_alive: std::time::Duration::from_millis(opts.keep_alive_ms.unwrap_or(30_000)),
        max_conns: opts.max_conns.unwrap_or(4096),
        tenant_rps: opts.tenant_rps,
        tenant_burst: opts.tenant_burst,
        peers: opts.peers.clone(),
        peer_connect_timeout: opts
            .peer_timeout_ms
            .map(std::time::Duration::from_millis)
            .unwrap_or(swope_server::ServerConfig::default().peer_connect_timeout),
        peer_io_timeout: opts
            .peer_timeout_ms
            .map(std::time::Duration::from_millis)
            .unwrap_or(swope_server::ServerConfig::default().peer_io_timeout),
        mmap: opts.paged(),
        store_budget_bytes: opts.store_budget_bytes,
        ..swope_server::ServerConfig::default()
    };
    let server = swope_server::Server::bind(config).map_err(|e| format!("binding: {e}"))?;
    for path in &opts.positional {
        let entry = if opts.paged() {
            server.registry().load_path_paged(path, server.pager())?
        } else {
            server.registry().load_path(path)?
        };
        println!(
            "loaded {:?} as {:?} ({} rows x {} columns)",
            path,
            entry.name,
            entry.dataset.num_rows(),
            entry.dataset.num_attrs()
        );
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on http://{addr}");
    // Scripts (and the CI smoke test) wait for the line above before
    // sending requests; make sure it is visible before we block serving.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    println!("shut down cleanly");
    Ok(())
}

fn write_dataset(ds: &Dataset, path: &str) -> Result<(), String> {
    if path.ends_with(".swop") {
        snapshot::write_file(ds, path).map_err(|e| e.to_string())
    } else {
        let mut f =
            std::io::BufWriter::new(std::fs::File::create(path).map_err(|e| e.to_string())?);
        csv::write_csv(ds, &mut f).map_err(|e| e.to_string())
    }
}

fn print_topk(kind: &str, result: &TopKResult) {
    println!(
        "top-{} by empirical {kind} (sampled {} rows in {} iteration(s)):",
        result.top.len(),
        result.stats.sample_size,
        result.stats.iterations
    );
    println!("{:<6} {:<24} {:>10} {:>10} {:>10}", "attr", "name", "estimate", "lower", "upper");
    for s in &result.top {
        print_score(s);
    }
}

fn print_filter(kind: &str, eta: f64, result: &FilterResult) {
    println!(
        "{} attribute(s) with empirical {kind} >= {eta} (sampled {} rows in {} iteration(s)):",
        result.accepted.len(),
        result.stats.sample_size,
        result.stats.iterations
    );
    println!("{:<6} {:<24} {:>10} {:>10} {:>10}", "attr", "name", "estimate", "lower", "upper");
    for s in &result.accepted {
        print_score(s);
    }
}

fn print_score(s: &AttrScore) {
    println!(
        "{:<6} {:<24} {:>10.4} {:>10.4} {:>10.4}",
        s.attr,
        truncate(&s.name, 24),
        s.estimate,
        s.lower,
        s.upper
    );
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}
