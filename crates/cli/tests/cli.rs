//! End-to-end tests driving the `swope` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn swope(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_swope"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("swope-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let o = swope(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("entropy-topk"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let o = swope(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
    assert!(stderr(&o).contains("usage:"));
}

#[test]
fn gen_stats_and_queries_pipeline() {
    let path = tmp("pipeline.swop");
    let path_s = path.to_str().unwrap();

    let o = swope(&["gen", "tiny", "--rows", "4000", "--cols", "10", "--out", path_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("4000 rows x 10 columns"));

    let o = swope(&["stats", path_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("rows: 4000"));

    let o = swope(&["entropy-topk", path_s, "-k", "3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("top-3 by empirical entropy"));
    assert_eq!(out.lines().filter(|l| l.starts_with(char::is_numeric)).count(), 3);

    let o = swope(&["entropy-filter", path_s, "--eta", "1.0", "--algo", "exact"]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = swope(&["mi-topk", path_s, "--target", "0", "-k", "2"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("mutual information"));

    let o = swope(&["entropy-profile", path_s]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = swope(&["compare", path_s, "-k", "3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("agreement: 3/3"));
}

#[test]
fn convert_round_trips_csv_and_snapshot() {
    let csv_path = tmp("convert.csv");
    std::fs::write(&csv_path, "color,size\nred,s\nblue,m\nred,l\n").unwrap();
    let swop_path = tmp("convert.swop");
    let back_path = tmp("convert_back.csv");

    let o = swope(&["convert", csv_path.to_str().unwrap(), swop_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = swope(&["convert", swop_path.to_str().unwrap(), back_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));

    let original = std::fs::read_to_string(&csv_path).unwrap();
    let round_tripped = std::fs::read_to_string(&back_path).unwrap();
    assert_eq!(original, round_tripped);
}

#[test]
fn missing_required_options_error_cleanly() {
    let path = tmp("missing.swop");
    let o = swope(&["gen", "tiny", "--rows", "100", "--cols", "4", "--out", path.to_str().unwrap()]);
    assert!(o.status.success());
    let p = path.to_str().unwrap();

    let o = swope(&["entropy-topk", p]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("-k is required"));

    let o = swope(&["mi-topk", p, "-k", "2"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--target is required"));

    let o = swope(&["entropy-filter", p]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--eta is required"));
}

#[test]
fn target_by_name_resolves() {
    let path = tmp("byname.csv");
    std::fs::write(&path, "label,f1\n0,a\n1,b\n0,a\n1,b\n").unwrap();
    let o = swope(&["mi-topk", path.to_str().unwrap(), "--target", "label", "-k", "1"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("target: label"));
    let o = swope(&["mi-topk", path.to_str().unwrap(), "--target", "nope", "-k", "1"]);
    assert!(!o.status.success());
}

#[test]
fn drift_compares_snapshots() {
    let a = tmp("drift_a.csv");
    let b = tmp("drift_b.csv");
    std::fs::write(&a, "x\n0\n1\n0\n1\n").unwrap();
    std::fs::write(&b, "x\n0\n0\n0\n0\n").unwrap();
    let o = swope(&["drift", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("DRIFTED"));
    let o = swope(&["drift", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(stdout(&o).contains("stable"));
}

#[test]
fn nonexistent_file_errors() {
    let o = swope(&["stats", "/definitely/not/here.csv"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("error"));
}
