//! End-to-end tests driving the `swope` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn swope(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_swope")).args(args).output().expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("swope-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage() {
    let o = swope(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("entropy-topk"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let o = swope(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
    assert!(stderr(&o).contains("usage:"));
}

#[test]
fn gen_stats_and_queries_pipeline() {
    let path = tmp("pipeline.swop");
    let path_s = path.to_str().unwrap();

    let o = swope(&["gen", "tiny", "--rows", "4000", "--cols", "10", "--out", path_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("4000 rows x 10 columns"));

    let o = swope(&["stats", path_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("rows: 4000"));

    let o = swope(&["entropy-topk", path_s, "-k", "3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("top-3 by empirical entropy"));
    assert_eq!(out.lines().filter(|l| l.starts_with(char::is_numeric)).count(), 3);

    let o = swope(&["entropy-filter", path_s, "--eta", "1.0", "--algo", "exact"]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = swope(&["mi-topk", path_s, "--target", "0", "-k", "2"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("mutual information"));

    let o = swope(&["entropy-profile", path_s]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = swope(&["compare", path_s, "-k", "3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("agreement: 3/3"));
}

#[test]
fn inspect_reports_widths_and_savings() {
    let csv_path = tmp("inspect.csv");
    std::fs::write(&csv_path, "color,size\nred,s\nblue,m\nred,l\ngreen,s\n").unwrap();

    let o = swope(&["inspect", csv_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("rows: 4"), "{out}");
    assert!(out.contains("width"), "{out}");
    // Both columns have support <= 256, so they pack to 8-bit codes: 4
    // bytes each, and the footer reports the 75% saving vs all-u32.
    assert!(out.lines().filter(|l| l.contains(" 8b ")).count() == 2, "{out}");
    assert!(out.contains("total: 8 bytes packed (32 at u32; saves 24 bytes, 75.0%)"), "{out}");
}

#[test]
fn inspect_reports_sketch_and_degrades_without_one() {
    // CSV input has no snapshot to carry a sketch: inspect degrades to a
    // one-line "none" note instead of failing.
    let csv_path = tmp("sketchless.csv");
    std::fs::write(&csv_path, "color,size\nred,s\nblue,m\nred,l\n").unwrap();
    let o = swope(&["inspect", csv_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("sketch: none"), "{}", stdout(&o));

    // A v2 snapshot carries the sketch section: inspect reports its
    // footprint and each column's histogram layout.
    let swop = tmp("sketchful.swop");
    let p = swop.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "2000", "--cols", "4", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = swope(&["inspect", p]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("sketch: 1 page(s) x 4 column(s)"), "{out}");
    assert!(out.contains("bytes encoded"), "{out}");
    assert!(out.contains("compact") || out.contains("sparse"), "{out}");
}

#[test]
fn inspect_rejects_corrupt_sketch_section_with_one_line_error() {
    let swop = tmp("corrupt-sketch.swop");
    let p = swop.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "2000", "--cols", "4", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));
    // The sketch is the final section of a v2 snapshot and carries its
    // own trailing CRC; flipping a byte near the end of the file lands
    // inside it while every column section stays valid.
    let mut bytes = std::fs::read(&swop).unwrap();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x40;
    std::fs::write(&swop, &bytes).unwrap();
    let o = swope(&["inspect", p]);
    assert!(!o.status.success());
    let err = stderr(&o);
    let first = err.lines().next().unwrap();
    assert!(first.starts_with("error: "), "{err}");
    assert!(first.contains("sketch"), "{err}");
}

#[test]
fn scoped_queries_restrict_rows_and_validate_flags() {
    let swop = tmp("scoped.swop");
    let p = swop.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "4000", "--cols", "6", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));

    // A scope covering every row answers identically to the unscoped run.
    let a = swope(&["entropy-topk", p, "-k", "3", "--seed", "7"]);
    let b = swope(&[
        "entropy-topk",
        p,
        "-k",
        "3",
        "--seed",
        "7",
        "--row-start",
        "0",
        "--row-end",
        "4000",
    ]);
    assert!(a.status.success() && b.status.success(), "{}", stderr(&b));
    assert_eq!(stdout(&a), stdout(&b), "full-range scope must match the unscoped query");

    // A sub-range samples from just the scoped rows.
    let o = swope(&["entropy-topk", p, "-k", "3", "--row-start", "1000", "--row-end", "1500"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    let sampled: usize =
        out.split("sampled ").nth(1).unwrap().split(' ').next().unwrap().parse().unwrap();
    assert!(sampled <= 500, "scope of 500 rows sampled {sampled}: {out}");

    // Predicate scopes accept numeric codes for dictionary-less columns.
    let o = swope(&["entropy-topk", p, "-k", "2", "--where", "0=1"]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Scope flags are swope-only; the exact baseline rejects them.
    let o = swope(&["entropy-topk", p, "-k", "2", "--row-start", "10", "--algo", "exact"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("require --algo swope"), "{}", stderr(&o));

    // An inverted range is a one-line error from the core, not a panic.
    let o = swope(&["entropy-topk", p, "-k", "2", "--row-start", "300", "--row-end", "100"]);
    assert!(!o.status.success());
    assert!(stderr(&o).starts_with("error: "), "{}", stderr(&o));
}

#[test]
fn sharded_queries_match_unsharded_output_and_validate_flags() {
    let swop = tmp("sharded.swop");
    let p = swop.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "4000", "--cols", "6", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Every shard count prints byte-identical output — the count-merge
    // protocol is exact, not approximate.
    let baseline = swope(&["entropy-topk", p, "-k", "3", "--seed", "7"]);
    assert!(baseline.status.success(), "{}", stderr(&baseline));
    for shards in ["1", "2", "3", "7"] {
        let o = swope(&["entropy-topk", p, "-k", "3", "--seed", "7", "--shards", shards]);
        assert!(o.status.success(), "{}", stderr(&o));
        assert_eq!(stdout(&o), stdout(&baseline), "--shards {shards} diverged");
    }
    let baseline = swope(&["mi-topk", p, "--target", "0", "-k", "2", "--seed", "7"]);
    let o = swope(&["mi-topk", p, "--target", "0", "-k", "2", "--seed", "7", "--shards", "3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert_eq!(stdout(&o), stdout(&baseline));

    // Sharding is swope-only and cannot combine with scopes.
    let o = swope(&["entropy-topk", p, "-k", "2", "--shards", "2", "--algo", "exact"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("require --algo swope"), "{}", stderr(&o));
    let o = swope(&["entropy-topk", p, "-k", "2", "--shards", "2", "--row-start", "5"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot be combined"), "{}", stderr(&o));
    let o = swope(&["entropy-topk", p, "-k", "2", "--shards", "0"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("at least 1"), "{}", stderr(&o));
}

#[test]
fn split_cuts_rows_and_preserves_supports() {
    let u = tmp("split_u.swop");
    let a = tmp("split_a.swop");
    let b = tmp("split_b.swop");
    let (u_s, a_s, b_s) = (u.to_str().unwrap(), a.to_str().unwrap(), b.to_str().unwrap());
    let o = swope(&["gen", "tiny", "--rows", "3000", "--cols", "5", "--out", u_s]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = swope(&["split", u_s, a_s, b_s, "--at", "1234"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("1234 rows"), "{}", stdout(&o));
    assert!(stdout(&o).contains("1766 rows"), "{}", stdout(&o));

    // Each half keeps the union's per-column (name, support) pairs even
    // when a half observes fewer distinct values — the invariant that
    // lets `serve --peer` merge their counts exactly.
    let supports = |path: &str| -> Vec<(String, String)> {
        let out = stdout(&swope(&["stats", path]));
        out.lines()
            .skip(2)
            .map(|l| {
                let mut it = l.split_whitespace();
                (it.next().unwrap().to_owned(), it.next().unwrap().to_owned())
            })
            .collect()
    };
    let union_supports = supports(u_s);
    assert_eq!(supports(a_s), union_supports);
    assert_eq!(supports(b_s), union_supports);

    // The cut must fall strictly inside the rows, and --at is required.
    let o = swope(&["split", u_s, a_s, b_s, "--at", "0"]);
    assert!(!o.status.success());
    let o = swope(&["split", u_s, a_s, b_s, "--at", "3000"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("must fall inside"), "{}", stderr(&o));
    let o = swope(&["split", u_s, a_s, b_s]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--at is required"), "{}", stderr(&o));
}

#[test]
fn split_outputs_carry_sketches() {
    let u = tmp("split_sk_u.swop");
    let a = tmp("split_sk_a.swop");
    let b = tmp("split_sk_b.swop");
    let (u_s, a_s, b_s) = (u.to_str().unwrap(), a.to_str().unwrap(), b.to_str().unwrap());
    let o = swope(&["gen", "tiny", "--rows", "3000", "--cols", "4", "--out", u_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = swope(&["split", u_s, a_s, b_s, "--at", "1000"]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Both halves are full v2 snapshots: each carries its own freshly
    // built sketch section, so range/predicate scopes work on the shards
    // without a re-sketching pass.
    for half in [a_s, b_s] {
        let o = swope(&["inspect", half]);
        assert!(o.status.success(), "{}", stderr(&o));
        let out = stdout(&o);
        assert!(out.contains("sketch: 1 page(s) x 4 column(s)"), "{half}: {out}");
        assert!(!out.contains("sketch: none"), "{half}: {out}");
    }
}

#[test]
fn paged_queries_match_heap_output_and_inspect_reports_residency() {
    let swop = tmp("paged.swop");
    let p = swop.to_str().unwrap();
    // 100k rows x 3 u8 columns = 300,000 plain bytes across 6 pages.
    let o = swope(&["gen", "tiny", "--rows", "100000", "--cols", "3", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Inspect under --mmap loads lazily and reports page residency.
    let o = swope(&["inspect", p, "--mmap"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("paged: 3 column(s) via "), "{out}");
    assert!(out.contains("(unbounded)"), "{out}");

    // The same query answers byte-identically from the heap, from an
    // unbounded mmap, and from a budget tight enough to force eviction
    // (200,000 < 300,000 plain bytes, so at most 3 of 6 pages stay hot).
    let base = &["entropy-topk", p, "-k", "2", "--seed", "7", "--epsilon", "0.5"];
    let heap = swope(base);
    assert!(heap.status.success(), "{}", stderr(&heap));
    let mut mmap_args = base.to_vec();
    mmap_args.push("--mmap");
    let mmap = swope(&mmap_args);
    assert!(mmap.status.success(), "{}", stderr(&mmap));
    assert_eq!(stdout(&mmap), stdout(&heap), "--mmap diverged from heap output");
    let mut budget_args = base.to_vec();
    budget_args.extend(["--store-budget-bytes", "200000"]);
    let budget = swope(&budget_args);
    assert!(budget.status.success(), "{}", stderr(&budget));
    assert_eq!(stdout(&budget), stdout(&heap), "budgeted run diverged from heap output");
}

#[test]
fn convert_round_trips_csv_and_snapshot() {
    let csv_path = tmp("convert.csv");
    std::fs::write(&csv_path, "color,size\nred,s\nblue,m\nred,l\n").unwrap();
    let swop_path = tmp("convert.swop");
    let back_path = tmp("convert_back.csv");

    let o = swope(&["convert", csv_path.to_str().unwrap(), swop_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = swope(&["convert", swop_path.to_str().unwrap(), back_path.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));

    let original = std::fs::read_to_string(&csv_path).unwrap();
    let round_tripped = std::fs::read_to_string(&back_path).unwrap();
    assert_eq!(original, round_tripped);
}

#[test]
fn missing_required_options_error_cleanly() {
    let path = tmp("missing.swop");
    let o =
        swope(&["gen", "tiny", "--rows", "100", "--cols", "4", "--out", path.to_str().unwrap()]);
    assert!(o.status.success());
    let p = path.to_str().unwrap();

    let o = swope(&["entropy-topk", p]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("-k is required"));

    let o = swope(&["mi-topk", p, "-k", "2"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--target is required"));

    let o = swope(&["entropy-filter", p]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--eta is required"));
}

#[test]
fn malformed_flags_fail_with_one_line_error_and_usage() {
    let path = tmp("badflags.swop");
    let o =
        swope(&["gen", "tiny", "--rows", "100", "--cols", "4", "--out", path.to_str().unwrap()]);
    assert!(o.status.success());
    let p = path.to_str().unwrap();

    // Unknown flag.
    let o = swope(&["entropy-topk", p, "-k", "2", "--definitely-not-a-flag"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("error: unknown option \"--definitely-not-a-flag\""), "{err}");
    assert!(err.contains("usage:"), "{err}");
    assert!(stdout(&o).is_empty(), "errors must not pollute stdout");

    // Flag at the end with its value missing.
    let o = swope(&["mi-topk", p, "-k", "2", "--target"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("error: --target requires a value"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // Non-numeric value for a numeric flag.
    let o = swope(&["entropy-topk", p, "-k", "three"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("error: invalid value \"three\" for -k"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // The one-line error comes first, then a blank line, then usage.
    let mut lines = err.lines();
    assert!(lines.next().unwrap().starts_with("error: "));
    assert_eq!(lines.next(), Some(""));
    assert!(lines.next().unwrap().starts_with("usage:"));
}

#[test]
fn serve_answers_health_and_queries() {
    use std::io::{BufRead, BufReader, Read, Write};

    let path = tmp("serve.swop");
    let p = path.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "500", "--cols", "5", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));

    let mut child = Command::new(env!("CARGO_BIN_EXE_swope"))
        .args(["serve", p, "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    // The server prints its bound address once ready.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let mut err = String::new();
            let _ = child.stderr.take().unwrap().read_to_string(&mut err);
            panic!("server exited before listening: {err}");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            break rest.to_owned();
        }
    };

    let request = |target: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    };

    let health = request("/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"datasets\":1"), "{health}");

    let query = request("/query/entropy-topk?dataset=serve&k=2");
    assert!(query.starts_with("HTTP/1.1 200"), "{query}");
    assert!(query.contains("\"query\":\"entropy_top_k\""), "{query}");

    let metrics = request("/metrics");
    assert!(metrics.contains("swope_http_requests_total"), "{metrics}");

    child.kill().unwrap();
    child.wait().unwrap();
}

#[test]
fn serve_access_log_records_requests_with_trace_ids() {
    use std::io::{BufRead, BufReader, Read, Write};

    let path = tmp("serve-log.swop");
    let p = path.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "400", "--cols", "4", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));
    let log_path = tmp("serve-access.log");
    std::fs::remove_file(&log_path).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_swope"))
        .args([
            "serve",
            p,
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--slow-ms",
            "0",
            "--access-log",
            log_path.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let mut err = String::new();
            let _ = child.stderr.take().unwrap().read_to_string(&mut err);
            panic!("server exited before listening: {err}");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            break rest.to_owned();
        }
    };

    let request = |raw: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    };

    let health = request("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    let traced = request(
        "GET /query/entropy-topk?dataset=serve-log&k=1 HTTP/1.1\r\nHost: t\r\n\
         X-Swope-Trace: abc123\r\nConnection: close\r\n\r\n",
    );
    assert!(traced.starts_with("HTTP/1.1 200"), "{traced}");
    assert!(traced.contains("X-Swope-Trace: 0000000000abc123"), "{traced}");

    child.kill().unwrap();
    child.wait().unwrap();

    // Each served request left one flushed logfmt line.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let health_line = log
        .lines()
        .find(|l| l.contains("path=/healthz"))
        .unwrap_or_else(|| panic!("no /healthz line in:\n{log}"));
    assert!(health_line.contains("method=GET"), "{health_line}");
    assert!(health_line.contains("status=200"), "{health_line}");
    assert!(health_line.contains("trace=-"), "{health_line}");
    assert!(health_line.contains("dur_us="), "{health_line}");
    let query_line = log
        .lines()
        .find(|l| l.contains("path=/query/entropy-topk"))
        .unwrap_or_else(|| panic!("no query line in:\n{log}"));
    assert!(query_line.contains("trace=0000000000abc123"), "{query_line}");
    assert!(query_line.contains("cache=miss"), "{query_line}");
    assert!(query_line.contains("bytes="), "{query_line}");
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn serve_access_log_numbers_pipelined_requests_on_one_connection() {
    use std::io::{BufRead, BufReader, Read, Write};

    let path = tmp("serve-pipeline.swop");
    let p = path.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "400", "--cols", "4", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));
    let log_path = tmp("serve-pipeline.log");
    std::fs::remove_file(&log_path).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_swope"))
        .args([
            "serve",
            p,
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--access-log",
            log_path.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            let mut err = String::new();
            let _ = child.stderr.take().unwrap().read_to_string(&mut err);
            panic!("server exited before listening: {err}");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            break rest.to_owned();
        }
    };

    // Three requests written back-to-back on one socket; the last one
    // closes, so reading to EOF collects all three responses in order.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /datasets HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /query/entropy-topk?dataset=serve-pipeline&k=1 HTTP/1.1\r\nHost: t\r\n\
              Connection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert_eq!(raw.matches("HTTP/1.1 200").count(), 3, "{raw}");

    child.kill().unwrap();
    child.wait().unwrap();

    // One logfmt line per request (not per connection), all carrying the
    // same conn id and 1-based request ordinals in arrival order.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 3, "expected one line per pipelined request:\n{log}");
    let field = |line: &str, key: &str| -> String {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key).map(str::to_owned))
            .unwrap_or_else(|| panic!("no {key} field in: {line}"))
    };
    let conn_ids: Vec<String> = lines.iter().map(|l| field(l, "conn=")).collect();
    assert!(conn_ids.iter().all(|c| c == &conn_ids[0]), "{log}");
    let ordinals: Vec<String> = lines.iter().map(|l| field(l, "req=")).collect();
    assert_eq!(ordinals, ["1", "2", "3"], "{log}");
    assert_eq!(field(lines[0], "path="), "/healthz");
    assert_eq!(field(lines[1], "path="), "/datasets");
    assert_eq!(field(lines[2], "path="), "/query/entropy-topk");
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn target_by_name_resolves() {
    let path = tmp("byname.csv");
    std::fs::write(&path, "label,f1\n0,a\n1,b\n0,a\n1,b\n").unwrap();
    let o = swope(&["mi-topk", path.to_str().unwrap(), "--target", "label", "-k", "1"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("target: label"));
    let o = swope(&["mi-topk", path.to_str().unwrap(), "--target", "nope", "-k", "1"]);
    assert!(!o.status.success());
}

#[test]
fn events_out_and_metrics_produce_observability_output() {
    let path = tmp("observed.swop");
    let p = path.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "4000", "--cols", "8", "--out", p]);
    assert!(o.status.success(), "{}", stderr(&o));

    let events = tmp("observed.jsonl");
    let e = events.to_str().unwrap();
    let o = swope(&["entropy-topk", p, "-k", "3", "--events-out", e, "--metrics"]);
    assert!(o.status.success(), "{}", stderr(&o));
    // Metrics summary rendered after the query output.
    let out = stdout(&o);
    assert!(out.contains("rows_scanned_total"), "{out}");

    // The event log is JSONL: every line parses, lifecycle is complete.
    let log = std::fs::read_to_string(&events).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert!(lines.len() >= 3, "expected a lifecycle, got {} lines", lines.len());
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'), "not a JSON object: {l}");
    }
    assert!(lines[0].contains("\"event\":\"query_start\""));
    assert!(lines.last().unwrap().contains("\"event\":\"query_end\""));
    assert!(log.contains("\"event\":\"attr_retired\""));

    // MI loops go through the same plumbing.
    let o = swope(&["mi-topk", p, "--target", "0", "-k", "2", "--metrics"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("queries_total"));

    // Non-swope algorithms don't run the adaptive loop; flags warn, not fail.
    let o = swope(&["entropy-topk", p, "-k", "3", "--algo", "exact", "--metrics"]);
    assert!(o.status.success(), "{}", stderr(&o));
}

#[test]
fn events_out_unwritable_path_errors() {
    let path = tmp("observed_err.swop");
    let p = path.to_str().unwrap();
    let o = swope(&["gen", "tiny", "--rows", "500", "--cols", "4", "--out", p]);
    assert!(o.status.success());
    let o = swope(&["entropy-topk", p, "-k", "2", "--events-out", "/no/such/dir/x.jsonl"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("error"));
}

#[test]
fn drift_compares_snapshots() {
    let a = tmp("drift_a.csv");
    let b = tmp("drift_b.csv");
    std::fs::write(&a, "x\n0\n1\n0\n1\n").unwrap();
    std::fs::write(&b, "x\n0\n0\n0\n0\n").unwrap();
    let o = swope(&["drift", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("DRIFTED"));
    let o = swope(&["drift", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(stdout(&o).contains("stable"));
}

#[test]
fn nonexistent_file_errors() {
    let o = swope(&["stats", "/definitely/not/here.csv"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("error"));
}
