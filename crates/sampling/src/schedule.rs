/// The SWOPE adaptive sample-size ladder: `M0, 2·M0, 4·M0, …` capped at `N`.
///
/// Algorithms 1–4 run one iteration per ladder step, and the failure
/// probability budget is split across `i_max = ceil(log2(N / M0)) + 1`
/// iterations. This type centralizes that arithmetic so the algorithms and
/// the theory-facing tests agree on it exactly.
///
/// # Example
///
/// ```
/// use swope_sampling::DoublingSchedule;
///
/// let s = DoublingSchedule::new(1000, 100);
/// let sizes: Vec<usize> = s.iter().collect();
/// assert_eq!(sizes, vec![100, 200, 400, 800, 1000]);
/// assert_eq!(s.i_max(), 5); // ceil(log2(10)) + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoublingSchedule {
    num_rows: usize,
    m0: usize,
}

impl DoublingSchedule {
    /// Creates a schedule for `num_rows` records starting at sample size
    /// `m0`. `m0` is clamped to `[1, num_rows]` (`m0 = 0` would never
    /// terminate; `m0 > N` is a single full-scan step).
    pub fn new(num_rows: usize, m0: usize) -> Self {
        let m0 = m0.clamp(1, num_rows.max(1));
        Self { num_rows, m0 }
    }

    /// The initial sample size `M0` (after clamping).
    pub fn m0(&self) -> usize {
        self.m0
    }

    /// The population size `N`.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Paper's iteration bound: `i_max = ceil(log2(N / M0)) + 1`.
    ///
    /// This equals the number of sizes [`DoublingSchedule::iter`] yields
    /// when `N / M0` is a power of two, and upper-bounds it otherwise.
    pub fn i_max(&self) -> usize {
        if self.num_rows <= self.m0 {
            return 1;
        }
        let ratio = self.num_rows as f64 / self.m0 as f64;
        ratio.log2().ceil() as usize + 1
    }

    /// Iterates the ladder: `m0, 2·m0, 4·m0, …`, with a final step exactly
    /// `N` if the doubling overshoots. Yields at least one size.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = Some(self.m0.min(self.num_rows.max(1)));
        let n = self.num_rows;
        std::iter::from_fn(move || {
            let cur = next?;
            next = if cur >= n { None } else { Some((cur * 2).min(n)) };
            Some(cur)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles_then_caps() {
        let s = DoublingSchedule::new(1000, 128);
        let sizes: Vec<usize> = s.iter().collect();
        assert_eq!(sizes, vec![128, 256, 512, 1000]);
    }

    #[test]
    fn exact_power_of_two_hits_n() {
        let s = DoublingSchedule::new(800, 100);
        let sizes: Vec<usize> = s.iter().collect();
        assert_eq!(sizes, vec![100, 200, 400, 800]);
        assert_eq!(s.i_max(), 4);
    }

    #[test]
    fn i_max_bounds_iteration_count() {
        for n in [1usize, 2, 10, 100, 1023, 1024, 1025] {
            for m0 in [1usize, 3, 7, 64, 5000] {
                let s = DoublingSchedule::new(n, m0);
                let count = s.iter().count();
                assert!(
                    count <= s.i_max(),
                    "n={n} m0={m0}: {count} iterations > i_max {}",
                    s.i_max()
                );
            }
        }
    }

    #[test]
    fn m0_larger_than_n_is_one_full_step() {
        let s = DoublingSchedule::new(50, 1000);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![50]);
        assert_eq!(s.i_max(), 1);
    }

    #[test]
    fn m0_zero_is_clamped() {
        let s = DoublingSchedule::new(10, 0);
        assert_eq!(s.m0(), 1);
        let sizes: Vec<usize> = s.iter().collect();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(*sizes.last().unwrap(), 10);
    }

    #[test]
    fn single_row_population() {
        let s = DoublingSchedule::new(1, 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn sizes_are_strictly_increasing() {
        let s = DoublingSchedule::new(10_000, 37);
        let sizes: Vec<usize> = s.iter().collect();
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(*sizes.last().unwrap(), 10_000);
    }
}
