use crate::rng::Xoshiro256pp;
use crate::Sampler;

/// An incrementally extended Fisher–Yates shuffle over rows `0..N`.
///
/// The paper treats a size-`M` random sample as the first `M` entries of a
/// random permutation of the data (§2.2). A classic Fisher–Yates shuffle
/// fixes position `i` at step `i`, so running only the first `M` steps
/// yields exactly the first `M` entries of a uniform permutation — and
/// running further steps later *extends* the same permutation without
/// disturbing the prefix. This gives the two properties SWOPE needs:
///
/// 1. **Uniformity**: every prefix is a uniform sample without replacement.
/// 2. **Nesting**: the sample at iteration `i` is a prefix of the sample at
///    iteration `i+1`, so per-attribute counters can be updated with only
///    the ΔM new rows, and the martingale argument of §3.1 applies to the
///    doubling schedule.
///
/// Memory: one `u32` per population row (`4N` bytes), initialized lazily in
/// one pass at construction.
#[derive(Debug, Clone)]
pub struct PrefixShuffle {
    perm: Vec<u32>,
    fixed: usize,
    rng: Xoshiro256pp,
}

impl PrefixShuffle {
    /// Creates a shuffle over `num_rows` rows using the given seed.
    pub fn new(num_rows: usize, seed: u64) -> Self {
        assert!(num_rows <= u32::MAX as usize, "row count exceeds u32 index space");
        Self {
            perm: (0..num_rows as u32).collect(),
            fixed: 0,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// The permutation prefix of length `sampled()`.
    pub fn prefix(&self) -> &[u32] {
        &self.perm[..self.fixed]
    }
}

impl Sampler for PrefixShuffle {
    fn num_rows(&self) -> usize {
        self.perm.len()
    }

    fn sampled(&self) -> usize {
        self.fixed
    }

    fn grow_to(&mut self, target: usize) -> &[u32] {
        let n = self.perm.len();
        let target = target.min(n);
        let start = self.fixed;
        for i in start..target {
            // Choose uniformly from the not-yet-fixed suffix [i, n).
            let j = i + self.rng.next_below((n - i) as u64) as usize;
            self.perm.swap(i, j);
        }
        self.fixed = target.max(self.fixed);
        &self.perm[start..self.fixed]
    }

    fn rows(&self) -> &[u32] {
        self.prefix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_is_sample_without_replacement() {
        let mut s = PrefixShuffle::new(100, 1);
        s.grow_to(40);
        let rows = s.rows();
        assert_eq!(rows.len(), 40);
        let mut seen = std::collections::HashSet::new();
        for &r in rows {
            assert!((r as usize) < 100);
            assert!(seen.insert(r), "duplicate row {r}");
        }
    }

    #[test]
    fn growth_is_nested_and_returns_delta() {
        let mut s = PrefixShuffle::new(50, 7);
        let first: Vec<u32> = s.grow_to(10).to_vec();
        assert_eq!(first.len(), 10);
        let snapshot: Vec<u32> = s.rows().to_vec();
        let delta: Vec<u32> = s.grow_to(25).to_vec();
        assert_eq!(delta.len(), 15);
        // The old prefix is untouched.
        assert_eq!(&s.rows()[..10], snapshot.as_slice());
        // Delta follows the prefix.
        assert_eq!(&s.rows()[10..25], delta.as_slice());
    }

    #[test]
    fn grow_delta_matches_grow_to() {
        let mut by_slice = PrefixShuffle::new(50, 7);
        let mut by_range = PrefixShuffle::new(50, 7);
        for target in [10usize, 25, 25, 50, 80] {
            let delta: Vec<u32> = by_slice.grow_to(target).to_vec();
            let range = by_range.grow_delta(target);
            assert_eq!(&by_range.rows()[range], delta.as_slice(), "target = {target}");
        }
    }

    #[test]
    fn full_growth_is_a_permutation() {
        let n = 200;
        let mut s = PrefixShuffle::new(n, 3);
        s.grow_to(n);
        let mut rows: Vec<u32> = s.rows().to_vec();
        rows.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn grow_past_n_caps_at_n() {
        let mut s = PrefixShuffle::new(10, 3);
        let delta = s.grow_to(9999);
        assert_eq!(delta.len(), 10);
        assert_eq!(s.sampled(), 10);
        assert!(s.grow_to(20).is_empty());
    }

    #[test]
    fn grow_to_smaller_target_is_a_noop() {
        let mut s = PrefixShuffle::new(30, 3);
        s.grow_to(20);
        let before: Vec<u32> = s.rows().to_vec();
        assert!(s.grow_to(5).is_empty());
        assert_eq!(s.rows(), before.as_slice());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PrefixShuffle::new(64, 11);
        let mut b = PrefixShuffle::new(64, 11);
        a.grow_to(32);
        b.grow_to(32);
        assert_eq!(a.rows(), b.rows());
        let mut c = PrefixShuffle::new(64, 12);
        c.grow_to(32);
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn incremental_equals_one_shot() {
        // Growing 10 -> 20 -> 40 must equal growing straight to 40:
        // extension continues the same Fisher-Yates pass.
        let mut inc = PrefixShuffle::new(100, 5);
        inc.grow_to(10);
        inc.grow_to(20);
        inc.grow_to(40);
        let mut one = PrefixShuffle::new(100, 5);
        one.grow_to(40);
        assert_eq!(inc.rows(), one.rows());
    }

    #[test]
    fn first_element_is_uniform() {
        // Over many seeds, the first sampled row should be ~uniform on 0..10.
        let mut counts = [0u32; 10];
        for seed in 0..5000u64 {
            let mut s = PrefixShuffle::new(10, seed);
            s.grow_to(1);
            counts[s.rows()[0] as usize] += 1;
        }
        let expected = 500.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 100.0,
                "row {i} drawn {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn empty_population() {
        let mut s = PrefixShuffle::new(0, 1);
        assert!(s.grow_to(10).is_empty());
        assert_eq!(s.num_rows(), 0);
        assert_eq!(s.sampled(), 0);
    }
}
