//! # swope-sampling
//!
//! Sampling-without-replacement substrate for the SWOPE framework.
//!
//! The SWOPE paper models a random sample of size `M` as **the first `M`
//! records after a random shuffle** of the input (§2.2). Its algorithms
//! adaptively *double* `M`, reusing all previously sampled records; the
//! concentration bound survives this dependency because the conditional
//! expectations form a martingale (§3.1). This crate provides exactly that
//! sampling model:
//!
//! * [`PrefixShuffle`] — an incrementally extended Fisher–Yates shuffle.
//!   `grow_to(2M)` continues the *same* shuffle, so the size-`M` sample is a
//!   prefix of the size-`2M` sample (the nesting the martingale argument
//!   needs), and newly added rows are returned for incremental counting.
//! * [`PageShuffle`] — the paper's §6.1 cache optimization: shuffle fixed
//!   size row *pages* instead of rows, so columnar scans of the sample are
//!   sequential within pages.
//! * [`DoublingSchedule`] — the `M0, 2·M0, 4·M0, …, N` sample size ladder
//!   with the paper's `i_max = ceil(log2(N/M0)) + 1` iteration count.
//! * [`rng::SplitMix64`] / [`rng::Xoshiro256pp`] — small, fast, fully
//!   deterministic PRNGs so experiments reproduce bit-for-bit across
//!   platforms and library versions.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod page;
pub mod rng;
mod schedule;
mod shuffle;

pub use page::PageShuffle;
pub use schedule::DoublingSchedule;
pub use shuffle::PrefixShuffle;

/// A growable sample-without-replacement over rows `0..N`.
///
/// Implementations maintain a *sample prefix*: a uniformly random subset of
/// rows whose identity is stable as the sample grows (old rows are never
/// replaced). This is the contract the SWOPE doubling loop relies on.
pub trait Sampler {
    /// Total number of rows `N` in the population.
    fn num_rows(&self) -> usize;

    /// Current sample size `M`.
    fn sampled(&self) -> usize;

    /// Grows the sample to at least `target` rows, capped at `N`.
    ///
    /// Returns the slice of **newly added** row indices (the delta between
    /// the old and new sample), enabling O(ΔM) incremental counter updates.
    /// Implementations may overshoot `target` (e.g. to a page boundary).
    fn grow_to(&mut self, target: usize) -> &[u32];

    /// All currently sampled row indices, in sampling order.
    fn rows(&self) -> &[u32];

    /// Grows the sample like [`Sampler::grow_to`], but returns the delta
    /// as a **range into [`Sampler::rows`]** instead of a borrowed slice.
    ///
    /// This is the zero-copy form the adaptive loops use: holding
    /// `grow_to`'s returned slice borrows the sampler mutably for the
    /// whole iteration, so callers historically copied it into a fresh
    /// `Vec` every iteration. With a range, the caller re-slices
    /// `self.rows()[range]` immutably and nothing is allocated.
    fn grow_delta(&mut self, target: usize) -> std::ops::Range<usize> {
        let before = self.sampled();
        self.grow_to(target);
        before..self.sampled()
    }
}
