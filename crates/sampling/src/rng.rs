//! Small deterministic PRNGs.
//!
//! Experiments must reproduce bit-for-bit across platforms and dependency
//! upgrades, so we pin the generators rather than relying on an external
//! crate's unspecified default. Both generators are public-domain designs:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer; used for seeding
//!   and tiny jobs.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0; the workhorse
//!   for shuffles and data generation. Period `2^256 − 1`.

/// SplitMix64: a tiny splittable PRNG, used here mainly to expand one `u64`
/// seed into the larger xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator, expanding `seed` with SplitMix64 as the authors
    /// recommend (guarantees a nonzero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `0..bound` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire's multiply-shift with rejection for exact uniformity.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent generator for a labelled subtask.
    ///
    /// Streams for different labels are generated from disjoint SplitMix64
    /// seeds, making per-column/per-experiment randomness independent of
    /// iteration order.
    pub fn fork(&self, label: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer_vector() {
        // First three outputs for seed 0, from the public-domain
        // reference implementation (Steele, Lea & Flood / Vigna).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers_values() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 1000 draws");
    }

    #[test]
    fn next_below_one_is_always_zero() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(r.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        Xoshiro256pp::seed_from_u64(7).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval_with_sane_mean() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fork_streams_differ_by_label_and_are_deterministic() {
        let base = Xoshiro256pp::seed_from_u64(5);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let mut f1b = base.fork(1);
        assert_ne!(f1.next_u64(), f2.next_u64());
        let _ = f1b.next_u64();
        assert_eq!(f1.next_u64(), f1b.next_u64());
    }

    #[test]
    fn uniformity_chi_square_smoke() {
        // 16 bins, 16k draws: chi-square with 15 dof should be far below 60.
        let mut r = Xoshiro256pp::seed_from_u64(2024);
        let mut bins = [0u32; 16];
        const N: u32 = 16_384;
        for _ in 0..N {
            bins[r.next_below(16) as usize] += 1;
        }
        let expected = N as f64 / 16.0;
        let chi2: f64 = bins
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 60.0, "chi-square {chi2} suspiciously high");
    }
}
