use crate::shuffle::PrefixShuffle;
use crate::Sampler;

/// Page-granular sampling: shuffle fixed-size row *pages* instead of rows.
///
/// The paper notes (§6.1) that per-row random sampling over a columnar
/// layout "may have a bad cache performance since it may randomly access
/// different pages", and that the issue "can be alleviated by sampling by
/// the granularity of page sizes". `PageShuffle` implements that variant:
/// the population is cut into pages of `page_rows` consecutive rows, the
/// *pages* are shuffled with an incremental [`PrefixShuffle`], and growing
/// the sample appends whole pages, yielding long sequential runs per page.
///
/// Trade-off: rows within a page are correlated if the data has locality,
/// so this sampler is a heuristic — exactly as in the paper, which uses it
/// for performance while the analysis assumes row-level sampling. The
/// `bench/sampling` ablation quantifies the speed difference.
#[derive(Debug, Clone)]
pub struct PageShuffle {
    pages: PrefixShuffle,
    page_rows: usize,
    num_rows: usize,
    rows: Vec<u32>,
}

impl PageShuffle {
    /// Creates a page sampler over `num_rows` rows with pages of
    /// `page_rows` rows each (the last page may be shorter).
    ///
    /// # Panics
    /// Panics if `page_rows == 0`.
    pub fn new(num_rows: usize, page_rows: usize, seed: u64) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        let num_pages = num_rows.div_ceil(page_rows);
        Self { pages: PrefixShuffle::new(num_pages, seed), page_rows, num_rows, rows: Vec::new() }
    }

    /// Number of rows each full page contains.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Number of pages in the population.
    pub fn num_pages(&self) -> usize {
        self.pages.num_rows()
    }
}

impl Sampler for PageShuffle {
    fn num_rows(&self) -> usize {
        self.num_rows
    }

    fn sampled(&self) -> usize {
        self.rows.len()
    }

    fn grow_to(&mut self, target: usize) -> &[u32] {
        let target = target.min(self.num_rows);
        let start = self.rows.len();
        if target <= start {
            return &self.rows[start..];
        }
        // How many pages do we need so that row count >= target? Pages have
        // page_rows rows except possibly the final short page, so we grow
        // page-by-page until the row target is reached.
        while self.rows.len() < target {
            let added_pages = self.pages.grow_to(self.pages.sampled() + 1);
            if added_pages.is_empty() {
                break; // all pages sampled
            }
            for &p in added_pages {
                let lo = p as usize * self.page_rows;
                let hi = (lo + self.page_rows).min(self.num_rows);
                self.rows.extend((lo as u32)..(hi as u32));
            }
        }
        &self.rows[start..]
    }

    fn rows(&self) -> &[u32] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_whole_pages() {
        let mut s = PageShuffle::new(100, 10, 1);
        let delta = s.grow_to(25);
        // Rounds up to 3 pages = 30 rows.
        assert_eq!(delta.len(), 30);
        assert_eq!(s.sampled(), 30);
        // Each page is a sequential run.
        for chunk in s.rows().chunks(10) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn no_duplicate_rows_across_growth() {
        let mut s = PageShuffle::new(97, 10, 3); // last page short (7 rows)
        s.grow_to(50);
        s.grow_to(97);
        let mut rows: Vec<u32> = s.rows().to_vec();
        assert_eq!(rows.len(), 97);
        rows.sort_unstable();
        let expected: Vec<u32> = (0..97).collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn nested_prefixes() {
        let mut s = PageShuffle::new(80, 8, 9);
        s.grow_to(16);
        let before: Vec<u32> = s.rows().to_vec();
        s.grow_to(40);
        assert_eq!(&s.rows()[..before.len()], before.as_slice());
    }

    #[test]
    fn grow_delta_covers_page_overshoot() {
        let mut by_slice = PageShuffle::new(97, 10, 3);
        let mut by_range = PageShuffle::new(97, 10, 3);
        for target in [25usize, 25, 60, 97] {
            let delta: Vec<u32> = by_slice.grow_to(target).to_vec();
            let range = by_range.grow_delta(target);
            assert_eq!(&by_range.rows()[range], delta.as_slice(), "target = {target}");
        }
    }

    #[test]
    fn grow_past_population_caps() {
        let mut s = PageShuffle::new(23, 10, 2);
        s.grow_to(1000);
        assert_eq!(s.sampled(), 23);
        assert!(s.grow_to(50).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PageShuffle::new(60, 6, 4);
        let mut b = PageShuffle::new(60, 6, 4);
        assert_eq!(a.grow_to(30), b.grow_to(30));
    }

    #[test]
    fn single_row_pages_degenerate_to_row_sampling() {
        let mut s = PageShuffle::new(40, 1, 5);
        let delta = s.grow_to(13);
        assert_eq!(delta.len(), 13);
        let unique: std::collections::HashSet<_> = s.rows().iter().collect();
        assert_eq!(unique.len(), 13);
    }

    #[test]
    #[should_panic(expected = "page_rows must be positive")]
    fn zero_page_rows_panics() {
        PageShuffle::new(10, 0, 1);
    }

    #[test]
    fn empty_population() {
        let mut s = PageShuffle::new(0, 8, 1);
        assert!(s.grow_to(5).is_empty());
        assert_eq!(s.num_pages(), 0);
    }
}
