//! # swope-store
//!
//! The physical storage layer under `swope-columnar`: dictionary codes
//! packed at the narrowest integer width their support allows, plus the
//! paged, checksummed primitives of the `SWOP` v2 on-disk format.
//!
//! SWOPE's adaptive loops are memory-bandwidth bound: every sampling
//! iteration gathers permuted codes out of a column, so the bytes each
//! code occupies directly set the bytes the gather streams through
//! cache. A column whose support fits in a byte has no business storing
//! `u32`s. This crate owns that decision:
//!
//! * [`Width`] — the `u8`/`u16`/`u32` storage width selected from a
//!   column's support (`support ≤ 256 → u8`, `≤ 65536 → u16`, else
//!   `u32`; codes are strictly `< support`, so the largest code at the
//!   boundary is 255 / 65535).
//! * [`CodeRepr`] — the per-width element trait the hot loops
//!   monomorphize over: one `match` per ingest call, zero per-row
//!   branching, widening to [`Code`] (`u32`) only at counter update.
//! * [`PackedCodes`] / [`PackedColumn`] — the width-tagged code vector
//!   and the validated column (`code < support`) built on it.
//! * [`CodeBuf`] — a width-tagged scratch vector for gather staging, so
//!   gathered blocks stay narrow too.
//! * [`crc32`] — the IEEE CRC32 guarding every on-disk page.
//! * [`page`] — the paged column payload codec (per-page checksums,
//!   length-validated before any allocation).
//! * [`rle`] — cold-page re-encoding (RLE + palette bit-packing) and
//!   the per-page encoding pick rule the pager applies at eviction.
//! * [`section`] — the `SWOP` v2 section table (offsets/lengths
//!   validated against the actual byte count before anything is
//!   trusted).
//!
//! The crate is the lowest layer of the workspace and depends on
//! nothing, matching the workspace's no-external-dependency rule.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod crc32;
mod error;
pub mod gather_stats;
mod packed;
pub mod page;
pub mod rle;
pub mod section;
mod width;

pub use error::StoreError;
pub use packed::{gather, CodeBuf, PackedCodes, PackedColumn};
pub use width::{CodeRepr, Width};

/// A dictionary-encoded attribute value, widened for arithmetic.
/// Always in `0..support`.
pub type Code = u32;

/// Dispatches on a [`PackedCodes`]'s width, binding the typed code slice
/// and running `$body` once — the single `match` that monomorphizes a
/// hot loop over [`CodeRepr`] without per-row branching.
///
/// ```
/// use swope_store::{for_packed, CodeRepr, PackedColumn};
/// let col = PackedColumn::new(vec![0, 2, 1], 3).unwrap();
/// let sum = for_packed!(col.codes(), |codes| {
///     codes.iter().map(|&c| c.widen() as u64).sum::<u64>()
/// });
/// assert_eq!(sum, 3);
/// ```
#[macro_export]
macro_rules! for_packed {
    ($packed:expr, |$codes:ident| $body:expr) => {
        match $packed {
            $crate::PackedCodes::U8($codes) => $body,
            $crate::PackedCodes::U16($codes) => $body,
            $crate::PackedCodes::U32($codes) => $body,
        }
    };
}
