//! Opt-in global instrumentation of the [`gather`](crate::gather) hot
//! path, consumed by the server's request tracer.
//!
//! Gather runs on exec worker threads deep below any per-request context,
//! so per-request attribution is impossible without threading state
//! through every loop. Instead the tracer snapshots these process-global
//! counters around a query and records the delta as one aggregate
//! `store_gather` span (exact when queries run one at a time, which is
//! how the default single-connection-per-request server behaves;
//! approximate under concurrent tracing, which the docs call out).
//!
//! Everything is gated behind one relaxed [`AtomicBool`]: with tracing
//! off the gather path pays a single predictable-branch load and no clock
//! reads, preserving the workspace's zero-overhead-when-disabled rule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: AtomicU64 = AtomicU64::new(0);
static ROWS: AtomicU64 = AtomicU64::new(0);
static NANOS: AtomicU64 = AtomicU64::new(0);

/// Turns gather timing on or off process-wide. The server flips this on
/// once at startup when serving with `--trace`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether gather calls are currently being counted and timed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Point-in-time totals of the gather counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatherSnapshot {
    /// Gather invocations (one per staged block per candidate).
    pub calls: u64,
    /// Rows gathered across all calls.
    pub rows: u64,
    /// Wall-clock nanoseconds spent inside gather.
    pub nanos: u64,
}

impl GatherSnapshot {
    /// The counter movement since an earlier snapshot.
    pub fn since(self, earlier: GatherSnapshot) -> GatherSnapshot {
        GatherSnapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            rows: self.rows.saturating_sub(earlier.rows),
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }
}

/// Reads the current totals (relaxed; safe to race with gathers).
pub fn snapshot() -> GatherSnapshot {
    GatherSnapshot {
        calls: CALLS.load(Ordering::Relaxed),
        rows: ROWS.load(Ordering::Relaxed),
        nanos: NANOS.load(Ordering::Relaxed),
    }
}

#[inline]
pub(crate) fn record(rows: usize, nanos: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    ROWS.fetch_add(rows as u64, Ordering::Relaxed);
    NANOS.fetch_add(nanos, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather;

    // One test covers both flag states: the flag is process-global, so
    // splitting these would let the parallel test runner race them.
    #[test]
    fn gathers_count_only_while_enabled() {
        // Default state: disabled. Deltas must stay zero.
        let before = snapshot();
        let mut buf8: Vec<u8> = Vec::new();
        gather(&[9u8, 8, 7, 6], &[0, 2], &mut buf8);
        assert_eq!(buf8, vec![9, 7]);
        assert_eq!(snapshot().since(before), GatherSnapshot::default());

        // Enabled: calls, rows, and (possibly zero on a coarse clock)
        // nanos accumulate.
        set_enabled(true);
        let before = snapshot();
        let mut buf: Vec<u16> = Vec::new();
        gather(&[1u16, 2, 3, 4, 5], &[4, 3, 0], &mut buf);
        gather(&[1u16, 2, 3, 4, 5], &[1], &mut buf);
        let delta = snapshot().since(before);
        set_enabled(false);
        assert_eq!(buf, vec![2]);
        assert_eq!(delta.calls, 2);
        assert_eq!(delta.rows, 4);
        assert!(delta.nanos < u64::MAX / 2);
    }
}
