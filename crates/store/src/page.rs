//! Paged column payload codec for `SWOP` v2 column sections.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! page_rows  u32            rows per full page (writer uses PAGE_ROWS)
//! page_count u32
//! page*page_count:
//!   rows u32                rows in this page (== page_rows except last)
//!   crc  u32                IEEE CRC32 of the payload bytes
//!   payload rows × width bytes, codes little-endian
//! ```
//!
//! The encoded length is a pure function of `(rows, width)`, which is
//! what lets the v2 writer emit a complete section table *before*
//! streaming any page. The decoder checks that arithmetic against the
//! actual byte count before allocating anything, then verifies each
//! page's CRC before its codes are appended.

use std::io::{self, Write};

use crate::crc32::crc32;
use crate::{CodeRepr, PackedCodes, StoreError, Width};

/// Rows per full page: 64Ki rows is 64 KiB at `u8` and 256 KiB at
/// `u32` — big enough that the per-page 8-byte header and CRC pass are
/// noise, small enough that a checksum failure localizes corruption.
pub const PAGE_ROWS: usize = 1 << 16;

/// Bytes of the page-stream header (`page_rows` + `page_count`).
pub const STREAM_HEADER_BYTES: usize = 8;

/// Per-page overhead bytes (`rows` + `crc`).
pub const PAGE_HEADER_BYTES: usize = 8;

/// Exact encoded size of a column payload of `rows` codes at `width`.
pub fn encoded_len(rows: usize, width: Width) -> usize {
    let pages = rows.div_ceil(PAGE_ROWS);
    STREAM_HEADER_BYTES + pages * PAGE_HEADER_BYTES + rows * width.bytes()
}

/// Streams `codes` as a paged payload to `w`, reusing one page-sized
/// scratch buffer; emits exactly [`encoded_len`] bytes.
pub fn write_pages<W: Write>(codes: &PackedCodes, w: &mut W) -> io::Result<()> {
    let n = codes.len();
    let pages = n.div_ceil(PAGE_ROWS);
    w.write_all(&(PAGE_ROWS as u32).to_le_bytes())?;
    w.write_all(&(pages as u32).to_le_bytes())?;
    let mut payload = Vec::with_capacity(PAGE_ROWS.min(n) * codes.width().bytes());
    for start in (0..n).step_by(PAGE_ROWS) {
        let rows = (n - start).min(PAGE_ROWS);
        payload.clear();
        codes.extend_le_range(start, rows, &mut payload);
        w.write_all(&(rows as u32).to_le_bytes())?;
        w.write_all(&crc32(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
    }
    Ok(())
}

/// Encodes `codes` as a paged payload into a fresh buffer.
pub fn encode_pages(codes: &PackedCodes) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(codes.len(), codes.width()));
    write_pages(codes, &mut out).expect("Vec writes are infallible");
    out
}

/// Decodes a paged payload of exactly `expect_rows` codes at `width`.
///
/// Structural checks (total length arithmetic, page-count consistency)
/// run against `bytes.len()` *before* the output vector is allocated, so
/// a corrupted header cannot trigger an oversized allocation; every
/// page's CRC is verified before its codes are appended.
pub fn decode_pages(
    bytes: &[u8],
    expect_rows: usize,
    width: Width,
) -> Result<PackedCodes, StoreError> {
    let mut buf = bytes;
    let page_rows = get_u32(&mut buf)? as usize;
    let page_count = get_u32(&mut buf)? as usize;
    if page_rows == 0 && expect_rows > 0 {
        return Err(StoreError::Corrupt("page size of zero rows".into()));
    }
    let expect_pages = if page_rows == 0 { 0 } else { expect_rows.div_ceil(page_rows) };
    if page_count != expect_pages {
        return Err(StoreError::Corrupt(format!(
            "page count {page_count} disagrees with {expect_rows} rows at {page_rows} rows/page"
        )));
    }
    // Length arithmetic in u64 so a hostile header can't overflow usize.
    let need = (page_count as u64) * (PAGE_HEADER_BYTES as u64)
        + (expect_rows as u64) * (width.bytes() as u64);
    if buf.len() as u64 != need {
        return Err(StoreError::Corrupt(format!(
            "column payload is {} bytes, expected {need}",
            buf.len()
        )));
    }

    let mut out = match width {
        Width::U8 => PackedCodes::U8(Vec::with_capacity(expect_rows)),
        Width::U16 => PackedCodes::U16(Vec::with_capacity(expect_rows)),
        Width::U32 => PackedCodes::U32(Vec::with_capacity(expect_rows)),
    };
    let mut total = 0usize;
    for page in 0..page_count {
        let rows = get_u32(&mut buf)? as usize;
        let crc = get_u32(&mut buf)?;
        if rows == 0 || rows > page_rows {
            return Err(StoreError::Corrupt(format!("page {page}: invalid row count {rows}")));
        }
        let nbytes = rows * width.bytes();
        if buf.len() < nbytes {
            return Err(StoreError::Corrupt(format!("page {page}: truncated payload")));
        }
        let (payload, rest) = buf.split_at(nbytes);
        buf = rest;
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt(format!("page {page}: checksum mismatch")));
        }
        total += rows;
        if total > expect_rows {
            return Err(StoreError::Corrupt(format!("page {page}: more rows than declared")));
        }
        match &mut out {
            PackedCodes::U8(v) => CodeRepr::extend_from_le_bytes(payload, v),
            PackedCodes::U16(v) => CodeRepr::extend_from_le_bytes(payload, v),
            PackedCodes::U32(v) => CodeRepr::extend_from_le_bytes(payload, v),
        }
    }
    if total != expect_rows {
        return Err(StoreError::Corrupt(format!("decoded {total} rows, expected {expect_rows}")));
    }
    Ok(out)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, StoreError> {
    if buf.len() < 4 {
        return Err(StoreError::Corrupt("truncated page stream".into()));
    }
    let (head, tail) = buf.split_at(4);
    *buf = tail;
    Ok(u32::from_le_bytes(head.try_into().expect("split at 4")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(width: Width, rows: usize) -> PackedCodes {
        let codes: Vec<u32> = (0..rows as u32).map(|i| (i * 31 + 7) % 200).collect();
        PackedCodes::pack(&codes, width)
    }

    #[test]
    fn round_trips_all_widths_and_page_boundaries() {
        for width in [Width::U8, Width::U16, Width::U32] {
            for rows in [0, 1, PAGE_ROWS - 1, PAGE_ROWS, PAGE_ROWS + 1, 2 * PAGE_ROWS + 37] {
                let codes = sample(width, rows);
                let bytes = encode_pages(&codes);
                assert_eq!(bytes.len(), encoded_len(rows, width), "{width} x {rows}");
                let back = decode_pages(&bytes, rows, width).unwrap();
                assert_eq!(back, codes, "{width} x {rows}");
            }
        }
    }

    #[test]
    fn rejects_any_single_byte_corruption_of_payload() {
        let codes = sample(Width::U16, 1000);
        let bytes = encode_pages(&codes);
        // Corrupting any byte must never be silently accepted as
        // *different* codes. Bytes 0..4 are the page_rows hint, which
        // does not influence the decoded payload — corruption there may
        // decode, but only to the identical code sequence; everything
        // else must be rejected by a structural check or a page CRC.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            match decode_pages(&corrupt, 1000, Width::U16) {
                Err(_) => {}
                Ok(got) if i < 4 => assert_eq!(got, codes, "byte {i} changed decoded codes"),
                Ok(_) => panic!("corruption at byte {i} undetected"),
            }
        }
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let codes = sample(Width::U8, 300);
        let bytes = encode_pages(&codes);
        for cut in 0..bytes.len() {
            assert!(decode_pages(&bytes[..cut], 300, Width::U8).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let codes = sample(Width::U8, 100);
        let bytes = encode_pages(&codes);
        assert!(decode_pages(&bytes, 99, Width::U8).is_err());
        assert!(decode_pages(&bytes, 101, Width::U8).is_err());
        assert!(decode_pages(&bytes, 100, Width::U16).is_err());
    }

    #[test]
    fn rejects_oversized_declared_pages_without_allocating() {
        // A header declaring u32::MAX pages must fail the length check,
        // not attempt an allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(PAGE_ROWS as u32).to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_pages(&bytes, usize::MAX >> 8, Width::U32).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let codes = sample(Width::U8, 10);
        let mut bytes = encode_pages(&codes);
        bytes.push(0);
        assert!(decode_pages(&bytes, 10, Width::U8).is_err());
    }
}
