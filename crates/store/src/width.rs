//! Storage widths and the per-width element trait.

use crate::packed::{CodeBuf, PackedCodes};
use crate::Code;

/// The integer width a column's codes are stored at.
///
/// Selected from the dictionary support: codes are strictly `< support`,
/// so a support of 256 still fits `u8` (largest code 255) and a support
/// of 65536 still fits `u16` (largest code 65535).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// One byte per code; supports up to 256.
    U8,
    /// Two bytes per code; supports up to 65536.
    U16,
    /// Four bytes per code; any `u32` support.
    U32,
}

impl Width {
    /// The narrowest width that can hold every code of a column with the
    /// given support (codes are `0..support`).
    pub fn for_support(support: u32) -> Width {
        if support <= 1 << 8 {
            Width::U8
        } else if support <= 1 << 16 {
            Width::U16
        } else {
            Width::U32
        }
    }

    /// Bytes per code at this width.
    pub const fn bytes(self) -> usize {
        match self {
            Width::U8 => 1,
            Width::U16 => 2,
            Width::U32 => 4,
        }
    }

    /// Bits per code at this width (what `GET /datasets` reports).
    pub const fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Whether every code of a column with `support` fits this width.
    pub const fn holds(self, support: u32) -> bool {
        match self {
            Width::U8 => support <= 1 << 8,
            Width::U16 => support <= 1 << 16,
            Width::U32 => true,
        }
    }

    /// The on-disk width tag (its byte count — self-describing).
    pub const fn tag(self) -> u8 {
        self.bytes() as u8
    }

    /// Parses an on-disk width tag.
    pub const fn from_tag(tag: u8) -> Option<Width> {
        match tag {
            1 => Some(Width::U8),
            2 => Some(Width::U16),
            4 => Some(Width::U32),
            _ => None,
        }
    }

    /// Short lowercase name (`"u8"`, `"u16"`, `"u32"`).
    pub const fn name(self) -> &'static str {
        match self {
            Width::U8 => "u8",
            Width::U16 => "u16",
            Width::U32 => "u32",
        }
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete storage element (`u8`, `u16`, or `u32`).
///
/// Hot paths take `&[R]` for `R: CodeRepr` and are monomorphized per
/// width: the enum `match` happens once per call (see
/// [`for_packed!`](crate::for_packed)), the inner loop runs on the
/// narrow type, and [`CodeRepr::widen`] is a register zero-extension at
/// the point a code indexes a counter.
pub trait CodeRepr: Copy + Default + Send + Sync + std::fmt::Debug + 'static {
    /// The width this element type stores.
    const WIDTH: Width;

    /// Zero-extends to the arithmetic code type.
    fn widen(self) -> Code;

    /// Truncates a code known to fit this width (debug-asserted).
    fn narrow(code: Code) -> Self;

    /// The matching scratch vector inside `buf`, switching the buffer's
    /// variant (and dropping its old allocation) if it last served a
    /// different width. A scratch slot serves one column per query, so
    /// the switch happens at most once per slot per width change.
    fn buf(buf: &mut CodeBuf) -> &mut Vec<Self>;

    /// Appends `codes` to `out` in little-endian byte order.
    fn extend_le_bytes(codes: &[Self], out: &mut Vec<u8>);

    /// Appends codes parsed from little-endian `bytes` (whose length
    /// must be a multiple of the width) to `out`.
    fn extend_from_le_bytes(bytes: &[u8], out: &mut Vec<Self>);

    /// Wraps an owned vector in the width-tagged enum.
    fn into_packed(codes: Vec<Self>) -> PackedCodes;
}

macro_rules! impl_code_repr {
    ($ty:ty, $width:expr, $variant:ident) => {
        impl CodeRepr for $ty {
            const WIDTH: Width = $width;

            #[inline(always)]
            fn widen(self) -> Code {
                self as Code
            }

            #[inline(always)]
            fn narrow(code: Code) -> Self {
                debug_assert!(code <= <$ty>::MAX as Code, "code {code} exceeds {}", Self::WIDTH);
                code as $ty
            }

            #[inline]
            fn buf(buf: &mut CodeBuf) -> &mut Vec<Self> {
                if !matches!(buf, CodeBuf::$variant(_)) {
                    *buf = CodeBuf::$variant(Vec::new());
                }
                match buf {
                    CodeBuf::$variant(v) => v,
                    _ => unreachable!("variant set above"),
                }
            }

            fn extend_le_bytes(codes: &[Self], out: &mut Vec<u8>) {
                for &c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }

            // modulo_one: W expands to 1 for the u8 instantiation.
            #[allow(clippy::modulo_one)]
            fn extend_from_le_bytes(bytes: &[u8], out: &mut Vec<Self>) {
                const W: usize = std::mem::size_of::<$ty>();
                debug_assert_eq!(bytes.len() % W, 0);
                out.extend(bytes.chunks_exact(W).map(|b| {
                    <$ty>::from_le_bytes(b.try_into().expect("chunk is exactly W bytes"))
                }));
            }

            fn into_packed(codes: Vec<Self>) -> PackedCodes {
                PackedCodes::$variant(codes)
            }
        }
    };
}

impl_code_repr!(u8, Width::U8, U8);
impl_code_repr!(u16, Width::U16, U16);
impl_code_repr!(u32, Width::U32, U32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selection_at_boundaries() {
        // Codes are < support, so 256 and 65536 are the last supports
        // that fit u8/u16 respectively.
        assert_eq!(Width::for_support(0), Width::U8);
        assert_eq!(Width::for_support(1), Width::U8);
        assert_eq!(Width::for_support(255), Width::U8);
        assert_eq!(Width::for_support(256), Width::U8);
        assert_eq!(Width::for_support(257), Width::U16);
        assert_eq!(Width::for_support(65535), Width::U16);
        assert_eq!(Width::for_support(65536), Width::U16);
        assert_eq!(Width::for_support(65537), Width::U32);
        assert_eq!(Width::for_support(u32::MAX), Width::U32);
    }

    #[test]
    fn holds_is_consistent_with_selection() {
        for support in [1, 255, 256, 257, 65535, 65536, 65537, u32::MAX] {
            let w = Width::for_support(support);
            assert!(w.holds(support), "{w} must hold its own support {support}");
            for wider in [Width::U8, Width::U16, Width::U32] {
                if wider >= w {
                    assert!(wider.holds(support));
                }
            }
        }
        assert!(!Width::U8.holds(257));
        assert!(!Width::U16.holds(65537));
    }

    #[test]
    fn tags_round_trip() {
        for w in [Width::U8, Width::U16, Width::U32] {
            assert_eq!(Width::from_tag(w.tag()), Some(w));
            assert_eq!(w.bytes() * 8, w.bits() as usize);
        }
        assert_eq!(Width::from_tag(0), None);
        assert_eq!(Width::from_tag(3), None);
        assert_eq!(Width::from_tag(8), None);
    }

    #[test]
    fn le_bytes_round_trip() {
        let codes: Vec<u16> = vec![0, 1, 0x1234, u16::MAX];
        let mut bytes = Vec::new();
        CodeRepr::extend_le_bytes(&codes, &mut bytes);
        assert_eq!(bytes.len(), codes.len() * 2);
        let mut back: Vec<u16> = Vec::new();
        CodeRepr::extend_from_le_bytes(&bytes, &mut back);
        assert_eq!(back, codes);
    }

    #[test]
    fn buf_switches_variant_once() {
        let mut buf = CodeBuf::default();
        <u8 as CodeRepr>::buf(&mut buf).extend_from_slice(&[1, 2, 3]);
        assert!(matches!(buf, CodeBuf::U8(_)));
        // Same width again: contents survive.
        assert_eq!(<u8 as CodeRepr>::buf(&mut buf).len(), 3);
        // Different width: variant swapped, buffer fresh.
        assert!(<u16 as CodeRepr>::buf(&mut buf).is_empty());
        assert!(matches!(buf, CodeBuf::U16(_)));
    }
}
