//! Cold-page re-encoding for the pager: run-length and palette
//! bit-packing codecs over one decoded page of codes.
//!
//! When the page cache evicts a decoded page it can keep a compressed
//! form instead of dropping to the mapping entirely, so a refetch costs
//! a decode rather than a (possibly cold) disk read plus CRC pass. Two
//! shapes pay for themselves on real columns:
//!
//! * **RLE** — skewed or clustered codes collapse into few runs
//!   (`[run_count][code u32, len u32]*`). A constant page is 12 bytes.
//! * **Palette** — a page drawing from `d` distinct codes stores the
//!   sorted palette once and each row as a `ceil(log2 d)`-bit index
//!   (`[d][palette u32 × d][packed indices]`).
//!
//! The *pick rule* ([`pick_encoding`]) chooses per page from the page's
//! sketch histogram (distinct count + row count) without touching the
//! decoded codes; [`compress`] applies the pick and keeps the result
//! only when it actually beats half the plain bytes — otherwise the
//! eviction falls back to dropping the page cold. Both codecs round-trip
//! bit-exactly: [`decompress`] rebuilds the identical [`PackedCodes`],
//! which is what keeps budget-constrained query results bitwise equal to
//! heap-mode results.

use crate::{for_packed, Code, CodeRepr, PackedCodes, StoreError, Width};

/// Per-page storage choice for an evicted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEncoding {
    /// Not worth re-encoding: drop cold on eviction.
    Plain,
    /// Run-length pairs; wins on constant/clustered pages.
    Rle,
    /// Sorted distinct-code palette plus bit-packed indices; wins on
    /// small-support pages whose codes are shuffled.
    Palette,
}

/// Palettes beyond this many distinct codes are never attempted: the
/// index width approaches the plain width and the win evaporates.
const MAX_PALETTE: usize = 1 << 12;

/// Chooses a page's eviction encoding from its sketch histogram: the
/// number of distinct codes on the page and the page's row count, plus
/// the column's plain storage width. Never reads the codes themselves.
pub fn pick_encoding(distinct: usize, rows: usize, width: Width) -> PageEncoding {
    if rows == 0 || distinct == 0 {
        return PageEncoding::Plain;
    }
    if distinct == 1 {
        return PageEncoding::Rle;
    }
    let plain = rows * width.bytes();
    if distinct <= MAX_PALETTE {
        let bits = ceil_log2(distinct);
        let palette_bytes = 4 + distinct * 4 + (rows * bits).div_ceil(8);
        if palette_bytes * 2 <= plain {
            return PageEncoding::Palette;
        }
    }
    PageEncoding::Plain
}

/// A page re-encoded for cold storage. Holds everything needed to
/// rebuild the exact [`PackedCodes`] it came from.
#[derive(Debug, Clone)]
pub struct CompressedPage {
    encoding: PageEncoding,
    width: Width,
    rows: usize,
    bytes: Vec<u8>,
}

impl CompressedPage {
    /// Bytes the compressed form occupies.
    pub fn bytes_len(&self) -> usize {
        self.bytes.len()
    }

    /// Rows the page decodes back to.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The encoding this page was stored under.
    pub fn encoding(&self) -> PageEncoding {
        self.encoding
    }
}

/// Compresses one decoded page under `pick`, returning `None` when the
/// pick is [`PageEncoding::Plain`] or the encoded form fails to reach
/// half the plain bytes (the eviction then drops the page cold instead).
pub fn compress(codes: &PackedCodes, pick: PageEncoding) -> Option<CompressedPage> {
    let rows = codes.len();
    if rows == 0 {
        return None;
    }
    let plain = codes.bytes();
    let bytes = match pick {
        PageEncoding::Plain => return None,
        PageEncoding::Rle => encode_rle(codes),
        PageEncoding::Palette => encode_palette(codes)?,
    };
    if bytes.len() * 2 > plain {
        return None;
    }
    Some(CompressedPage { encoding: pick, width: codes.width(), rows, bytes })
}

/// Rebuilds the exact page [`compress`] consumed.
pub fn decompress(page: &CompressedPage) -> Result<PackedCodes, StoreError> {
    let codes = match page.encoding {
        PageEncoding::Plain => {
            return Err(StoreError::Corrupt("plain pages are never stored compressed".into()))
        }
        PageEncoding::Rle => decode_rle(&page.bytes, page.rows)?,
        PageEncoding::Palette => decode_palette(&page.bytes, page.rows)?,
    };
    Ok(PackedCodes::pack(&codes, page.width))
}

/// Number of runs a run-length encoding of the page would hold — the
/// sketch-free fallback signal for [`pick_encoding`] when no histogram
/// is available (one sequential pass, no allocation).
pub fn count_runs(codes: &PackedCodes) -> usize {
    for_packed!(codes, |codes| {
        let mut runs = 0usize;
        let mut prev = None;
        for &c in codes {
            if prev != Some(c) {
                runs += 1;
                prev = Some(c);
            }
        }
        runs
    })
}

fn ceil_log2(d: usize) -> usize {
    (usize::BITS - (d - 1).leading_zeros()) as usize
}

fn encode_rle(codes: &PackedCodes) -> Vec<u8> {
    let mut runs: Vec<(Code, u32)> = Vec::new();
    for_packed!(codes, |codes| {
        for &c in codes {
            let c = c.widen();
            match runs.last_mut() {
                Some((prev, len)) if *prev == c => *len += 1,
                _ => runs.push((c, 1)),
            }
        }
    });
    let mut out = Vec::with_capacity(4 + runs.len() * 8);
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for (code, len) in runs {
        out.extend_from_slice(&code.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    out
}

fn decode_rle(bytes: &[u8], rows: usize) -> Result<Vec<Code>, StoreError> {
    let mut buf = bytes;
    let run_count = get_u32(&mut buf)? as usize;
    if buf.len() != run_count * 8 {
        return Err(StoreError::Corrupt("rle page: length mismatch".into()));
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..run_count {
        let code = get_u32(&mut buf)?;
        let len = get_u32(&mut buf)? as usize;
        if out.len() + len > rows {
            return Err(StoreError::Corrupt("rle page: more rows than declared".into()));
        }
        out.resize(out.len() + len, code);
    }
    if out.len() != rows {
        return Err(StoreError::Corrupt("rle page: fewer rows than declared".into()));
    }
    Ok(out)
}

fn encode_palette(codes: &PackedCodes) -> Option<Vec<u8>> {
    // Sorted distinct codes; ascending order makes the encoding (and so
    // the round-trip) deterministic.
    let mut palette: Vec<Code> = Vec::new();
    for_packed!(codes, |codes| {
        for &c in codes {
            let c = c.widen();
            if let Err(slot) = palette.binary_search(&c) {
                if palette.len() >= MAX_PALETTE {
                    return None;
                }
                palette.insert(slot, c);
            }
        }
        Some(())
    })?;
    if palette.len() < 2 {
        return None; // d == 1 belongs to RLE
    }
    let bits = ceil_log2(palette.len());
    let rows = codes.len();
    let mut out = Vec::with_capacity(4 + palette.len() * 4 + (rows * bits).div_ceil(8));
    out.extend_from_slice(&(palette.len() as u32).to_le_bytes());
    for &c in &palette {
        out.extend_from_slice(&c.to_le_bytes());
    }
    // LSB-first bit stream of palette indices.
    let mut acc: u64 = 0;
    let mut filled = 0usize;
    for_packed!(codes, |codes| {
        for &c in codes {
            let idx = palette.binary_search(&c.widen()).expect("code in palette") as u64;
            acc |= idx << filled;
            filled += bits;
            while filled >= 8 {
                out.push(acc as u8);
                acc >>= 8;
                filled -= 8;
            }
        }
    });
    if filled > 0 {
        out.push(acc as u8);
    }
    Some(out)
}

fn decode_palette(bytes: &[u8], rows: usize) -> Result<Vec<Code>, StoreError> {
    let mut buf = bytes;
    let d = get_u32(&mut buf)? as usize;
    if !(2..=MAX_PALETTE).contains(&d) {
        return Err(StoreError::Corrupt("palette page: invalid palette size".into()));
    }
    if buf.len() < d * 4 {
        return Err(StoreError::Corrupt("palette page: truncated palette".into()));
    }
    let mut palette = Vec::with_capacity(d);
    for _ in 0..d {
        palette.push(get_u32(&mut buf)?);
    }
    let bits = ceil_log2(d);
    if buf.len() != (rows * bits).div_ceil(8) {
        return Err(StoreError::Corrupt("palette page: length mismatch".into()));
    }
    let mask = (1u64 << bits) - 1;
    let mut out = Vec::with_capacity(rows);
    let mut acc: u64 = 0;
    let mut filled = 0usize;
    let mut next = buf.iter();
    for _ in 0..rows {
        while filled < bits {
            acc |= (*next.next().expect("length checked") as u64) << filled;
            filled += 8;
        }
        let idx = (acc & mask) as usize;
        acc >>= bits;
        filled -= bits;
        let code = *palette
            .get(idx)
            .ok_or_else(|| StoreError::Corrupt("palette page: index out of range".into()))?;
        out.push(code);
    }
    Ok(out)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, StoreError> {
    if buf.len() < 4 {
        return Err(StoreError::Corrupt("truncated compressed page".into()));
    }
    let (head, tail) = buf.split_at(4);
    *buf = tail;
    Ok(u32::from_le_bytes(head.try_into().expect("split at 4")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn page(support: u32, rows: usize, seed: u64) -> PackedCodes {
        let mut s = seed;
        let codes: Vec<Code> =
            (0..rows).map(|_| (splitmix(&mut s) % support as u64) as u32).collect();
        PackedCodes::pack(&codes, Width::for_support(support))
    }

    #[test]
    fn pick_rule_shapes() {
        // Constant page: RLE.
        assert_eq!(pick_encoding(1, 65536, Width::U8), PageEncoding::Rle);
        // Tiny support over a u32 column: palette wins big.
        assert_eq!(pick_encoding(4, 65536, Width::U32), PageEncoding::Palette);
        // Full-byte-range support at u8: nothing to win.
        assert_eq!(pick_encoding(256, 65536, Width::U8), PageEncoding::Plain);
        // Empty page: plain.
        assert_eq!(pick_encoding(0, 0, Width::U8), PageEncoding::Plain);
        // Past the palette cap: plain.
        assert_eq!(pick_encoding(MAX_PALETTE + 1, 65536, Width::U32), PageEncoding::Plain);
    }

    #[test]
    fn rle_round_trips_exactly() {
        for (support, rows) in [(1u32, 100usize), (3, 4096), (70000, 1)] {
            let codes = page(support, rows, 7);
            let c = compress(&codes, PageEncoding::Rle);
            if let Some(c) = c {
                assert_eq!(decompress(&c).unwrap(), codes, "support {support} rows {rows}");
            }
        }
        // A constant page compresses to a handful of bytes.
        let constant = PackedCodes::pack(&vec![9; 65536], Width::U16);
        let c = compress(&constant, PageEncoding::Rle).expect("constant page compresses");
        assert!(c.bytes_len() <= 16, "{}", c.bytes_len());
        assert_eq!(decompress(&c).unwrap(), constant);
    }

    #[test]
    fn palette_round_trips_across_widths_and_sizes() {
        for support in [2u32, 5, 200, 1000, 70000] {
            for rows in [1usize, 7, 4096, 65536] {
                let codes = page(support, rows, support as u64 * 31 + rows as u64);
                if let Some(c) = compress(&codes, PageEncoding::Palette) {
                    let back = decompress(&c).unwrap();
                    assert_eq!(back, codes, "support {support} rows {rows}");
                    assert!(c.bytes_len() * 2 <= codes.bytes());
                }
            }
        }
    }

    #[test]
    fn skewed_u32_page_compresses_at_least_four_to_one() {
        // 8 distinct codes in a u32 column: 3 index bits vs 32 plain.
        let mut s = 3u64;
        let codes: Vec<Code> = (0..65536)
            .map(|_| 70_000 * ((splitmix(&mut s) % 8) as u32 / 7) + (splitmix(&mut s) % 8) as u32)
            .collect();
        let packed = PackedCodes::pack(&codes, Width::U32);
        let c = compress(&packed, PageEncoding::Palette).expect("skewed page compresses");
        assert!(c.bytes_len() * 4 <= packed.bytes(), "{} vs {}", c.bytes_len(), packed.bytes());
        assert_eq!(decompress(&c).unwrap(), packed);
    }

    #[test]
    fn uncompressible_pages_are_refused() {
        // Uniform full-range u8 page: neither codec reaches half size.
        let codes = page(256, 65536, 11);
        assert!(compress(&codes, PageEncoding::Rle).is_none());
        assert!(compress(&codes, PageEncoding::Palette).is_none());
        assert!(compress(&codes, PageEncoding::Plain).is_none());
        assert!(compress(&PackedCodes::U8(vec![]), PageEncoding::Rle).is_none());
    }

    #[test]
    fn count_runs_matches_structure() {
        assert_eq!(count_runs(&PackedCodes::U8(vec![])), 0);
        assert_eq!(count_runs(&PackedCodes::U8(vec![5; 100])), 1);
        assert_eq!(count_runs(&PackedCodes::U8(vec![1, 1, 2, 2, 2, 1])), 3);
    }

    #[test]
    fn decompress_rejects_corrupt_bytes() {
        let codes = PackedCodes::pack(&vec![3; 1000], Width::U8);
        let mut c = compress(&codes, PageEncoding::Rle).unwrap();
        c.bytes[4] ^= 0x40; // code of the only run changes — still decodes
        assert!(decompress(&c).is_ok());
        c.bytes.truncate(3); // structural damage must error
        assert!(decompress(&c).is_err());
        let codes = page(6, 4096, 9);
        let mut c = compress(&codes, PageEncoding::Palette).unwrap();
        c.bytes.truncate(c.bytes.len() - 1);
        assert!(decompress(&c).is_err());
    }
}
