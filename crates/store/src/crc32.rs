//! IEEE CRC32 (the zlib/gzip polynomial), hand-rolled on a const table.
//!
//! Every page of a `SWOP` v2 column section carries this checksum so a
//! reader can reject silent bit rot before feeding codes to counters.
//! One 256-entry table built at compile time; byte-at-a-time update is
//! plenty for snapshot I/O, which is dominated by disk anyway.

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib, gzip, PNG, ...).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (init `!0`, final xor `!0` — the standard checksum
/// `cksum`/zlib would report).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC catalog's check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let data = b"swope store page payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
