//! The `SWOP` v2 section table.
//!
//! A v2 snapshot is a fixed header, a table of section descriptors, and
//! the section payloads laid out contiguously after the table. Each
//! descriptor is 24 bytes:
//!
//! ```text
//! kind   u32    1 = schema, 2 = column
//! attr   u32    column index for kind 2, 0 otherwise
//! offset u64    absolute byte offset of the payload
//! len    u64    payload length in bytes
//! ```
//!
//! [`validate_sections`] checks the whole table against the actual byte
//! count *before* any payload is touched: offsets must start exactly
//! where the table ends, run contiguously, and finish exactly at the
//! end of the buffer. A reader that survives validation can slice
//! payloads without further bounds checks, and trailing garbage or a
//! descriptor pointing past the file is rejected up front instead of
//! surfacing as a misparse deep inside a section.

use crate::StoreError;

/// Section kind tag: the schema section (field names, supports,
/// dictionaries). Exactly one per snapshot, first in the table.
pub const SECTION_SCHEMA: u32 = 1;

/// Section kind tag: one column's paged code payload.
pub const SECTION_COLUMN: u32 = 2;

/// Section kind tag: the optional per-page partition sketch (code
/// histograms per 64Ki-row page, own trailing CRC32). At most one per
/// snapshot, last in the table; readers that predate it skip it.
pub const SECTION_SKETCH: u32 = 3;

/// Encoded bytes per section descriptor.
pub const SECTION_ENTRY_BYTES: usize = 24;

/// One section-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// [`SECTION_SCHEMA`] or [`SECTION_COLUMN`].
    pub kind: u32,
    /// Column index for column sections, 0 otherwise.
    pub attr: u32,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

impl Section {
    /// Appends the 24-byte descriptor to `out`.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.attr.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
    }

    /// Parses one descriptor from the front of `buf`, advancing it.
    pub fn parse(buf: &mut &[u8]) -> Result<Section, StoreError> {
        if buf.len() < SECTION_ENTRY_BYTES {
            return Err(StoreError::Corrupt("truncated section table".into()));
        }
        let (head, tail) = buf.split_at(SECTION_ENTRY_BYTES);
        *buf = tail;
        let u32_at = |i: usize| u32::from_le_bytes(head[i..i + 4].try_into().expect("in range"));
        let u64_at = |i: usize| u64::from_le_bytes(head[i..i + 8].try_into().expect("in range"));
        Ok(Section { kind: u32_at(0), attr: u32_at(4), offset: u64_at(8), len: u64_at(16) })
    }

    /// `offset + len` with overflow detection.
    pub fn end(&self) -> Result<u64, StoreError> {
        self.offset
            .checked_add(self.len)
            .ok_or_else(|| StoreError::Corrupt("section length overflows".into()))
    }
}

/// Validates a parsed table against the real byte count: payloads must
/// start at `body_start` (right after the table), be contiguous, and
/// end exactly at `total_len`.
pub fn validate_sections(
    sections: &[Section],
    body_start: u64,
    total_len: u64,
) -> Result<(), StoreError> {
    let mut cursor = body_start;
    for (i, s) in sections.iter().enumerate() {
        if s.offset != cursor {
            return Err(StoreError::Corrupt(format!(
                "section {i} starts at {} but previous data ends at {cursor}",
                s.offset
            )));
        }
        cursor = s.end()?;
        if cursor > total_len {
            return Err(StoreError::Corrupt(format!(
                "section {i} extends to {cursor} past the {total_len}-byte snapshot"
            )));
        }
    }
    if cursor != total_len {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after last section",
            total_len - cursor
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_round_trips() {
        let s = Section { kind: SECTION_COLUMN, attr: 7, offset: 1234, len: 99 };
        let mut bytes = Vec::new();
        s.write_into(&mut bytes);
        assert_eq!(bytes.len(), SECTION_ENTRY_BYTES);
        let mut buf = bytes.as_slice();
        assert_eq!(Section::parse(&mut buf).unwrap(), s);
        assert!(buf.is_empty());
        assert!(Section::parse(&mut buf).is_err());
    }

    #[test]
    fn validation_accepts_contiguous_layout() {
        let sections = [
            Section { kind: SECTION_SCHEMA, attr: 0, offset: 100, len: 20 },
            Section { kind: SECTION_COLUMN, attr: 0, offset: 120, len: 30 },
        ];
        assert!(validate_sections(&sections, 100, 150).is_ok());
    }

    #[test]
    fn validation_rejects_gaps_overlaps_and_overruns() {
        let schema = Section { kind: SECTION_SCHEMA, attr: 0, offset: 100, len: 20 };
        // Gap between sections.
        let gap = [schema, Section { kind: SECTION_COLUMN, attr: 0, offset: 125, len: 10 }];
        assert!(validate_sections(&gap, 100, 135).is_err());
        // Overlap.
        let overlap = [schema, Section { kind: SECTION_COLUMN, attr: 0, offset: 110, len: 10 }];
        assert!(validate_sections(&overlap, 100, 120).is_err());
        // Extends past the buffer.
        assert!(validate_sections(&[schema], 100, 110).is_err());
        // Trailing bytes after the last section.
        assert!(validate_sections(&[schema], 100, 200).is_err());
        // First section not at body start.
        assert!(validate_sections(&[schema], 90, 120).is_err());
        // Length overflow.
        let huge = [Section { kind: SECTION_SCHEMA, attr: 0, offset: u64::MAX, len: 2 }];
        assert!(validate_sections(&huge, u64::MAX, u64::MAX).is_err());
    }
}
