//! Storage-layer errors.

use crate::{Code, Width};

/// Errors from packing, validating, or decoding stored codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A code was `>= support`.
    CodeOutOfRange {
        /// The offending code.
        code: Code,
        /// The declared support.
        support: u32,
    },
    /// A requested storage width cannot hold the column's support.
    WidthTooNarrow {
        /// The requested width.
        width: Width,
        /// The support that does not fit it.
        support: u32,
    },
    /// On-disk bytes failed structural validation or a checksum.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::CodeOutOfRange { code, support } => {
                write!(f, "code {code} out of range for support {support}")
            }
            StoreError::WidthTooNarrow { width, support } => {
                write!(f, "width {width} cannot hold support {support}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
