//! Width-packed code vectors and validated columns.

use crate::{for_packed, Code, CodeRepr, StoreError, Width};

/// A code vector stored at one of the three widths.
///
/// This is the physical form every hot loop reads: one `match` per call
/// site (via [`for_packed!`](crate::for_packed)) selects the
/// monomorphized body, then the inner loop streams the narrow codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedCodes {
    /// One byte per code.
    U8(Vec<u8>),
    /// Two bytes per code.
    U16(Vec<u16>),
    /// Four bytes per code.
    U32(Vec<u32>),
}

impl PackedCodes {
    /// Packs `codes` at `width`. Every code must fit the width
    /// (debug-asserted; use [`PackedColumn`] for validated construction).
    pub fn pack(codes: &[Code], width: Width) -> PackedCodes {
        match width {
            Width::U8 => PackedCodes::U8(codes.iter().map(|&c| u8::narrow(c)).collect()),
            Width::U16 => PackedCodes::U16(codes.iter().map(|&c| u16::narrow(c)).collect()),
            Width::U32 => PackedCodes::U32(codes.to_vec()),
        }
    }

    /// The storage width.
    pub fn width(&self) -> Width {
        match self {
            PackedCodes::U8(_) => Width::U8,
            PackedCodes::U16(_) => Width::U16,
            PackedCodes::U32(_) => Width::U32,
        }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        for_packed!(self, |codes| codes.len())
    }

    /// Whether there are no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes the codes occupy in memory (exact payload, ignoring the
    /// `Vec`'s spare capacity).
    pub fn bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }

    /// The widened code at `row`. Panics if out of range.
    #[inline]
    pub fn code(&self, row: usize) -> Code {
        for_packed!(self, |codes| codes[row].widen())
    }

    /// The largest code present, or `None` for an empty vector.
    pub fn max_code(&self) -> Option<Code> {
        for_packed!(self, |codes| codes.iter().copied().max().map(CodeRepr::widen))
    }

    /// Widens every code into a fresh `Vec<u32>` (cold paths: exact
    /// baselines, concatenation, v1 snapshot encoding).
    pub fn to_codes(&self) -> Vec<Code> {
        let mut out = Vec::with_capacity(self.len());
        for_packed!(self, |codes| out.extend(codes.iter().map(|&c| c.widen())));
        out
    }

    /// Gathers `self[r]` for each `r` in `rows` into `out` as widened
    /// codes (cleared first). The monomorphized random-access read moves
    /// only `width` bytes per row through cache; the widening happens in
    /// a register on the way into the output buffer.
    pub fn gather_widen(&self, rows: &[u32], out: &mut Vec<Code>) {
        out.clear();
        for_packed!(self, |codes| out.extend(rows.iter().map(|&r| codes[r as usize].widen())));
    }

    /// Appends the little-endian bytes of `rows` codes starting at
    /// `start` to `out` (the page writer's copy step).
    pub(crate) fn extend_le_range(&self, start: usize, rows: usize, out: &mut Vec<u8>) {
        for_packed!(self, |codes| CodeRepr::extend_le_bytes(&codes[start..start + rows], out));
    }
}

/// Gathers `codes[r]` for each row in `rows` into `buf` (cleared first),
/// staying at the slice's width.
///
/// This is the cache-miss-heavy half of a staged ingest; keeping it
/// width-generic means a `u8` column's gather touches a quarter of the
/// bytes the old `u32` path did.
#[inline]
pub fn gather<R: CodeRepr>(codes: &[R], rows: &[u32], buf: &mut Vec<R>) {
    // One relaxed load when tracing is off; clock reads only when on.
    if crate::gather_stats::enabled() {
        let start = std::time::Instant::now();
        buf.clear();
        buf.extend(rows.iter().map(|&r| codes[r as usize]));
        crate::gather_stats::record(rows.len(), start.elapsed().as_nanos() as u64);
        return;
    }
    buf.clear();
    buf.extend(rows.iter().map(|&r| codes[r as usize]));
}

/// A width-tagged scratch vector for gather staging.
///
/// Adaptive-loop scratch slots hold gathered blocks of one column at a
/// time; tagging the buffer with its width keeps staged blocks as narrow
/// as the column itself. The variant switches lazily (in
/// [`CodeRepr::buf`]) when a slot is reused for a column of a different
/// width — at most one reallocation per switch, which queries hit at
/// most a handful of times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeBuf {
    /// Scratch for a `u8` column.
    U8(Vec<u8>),
    /// Scratch for a `u16` column.
    U16(Vec<u16>),
    /// Scratch for a `u32` column.
    U32(Vec<u32>),
}

impl Default for CodeBuf {
    fn default() -> Self {
        CodeBuf::U32(Vec::new())
    }
}

impl CodeBuf {
    /// An empty scratch buffer (width decided on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current element capacity (whatever the width).
    pub fn capacity(&self) -> usize {
        match self {
            CodeBuf::U8(v) => v.capacity(),
            CodeBuf::U16(v) => v.capacity(),
            CodeBuf::U32(v) => v.capacity(),
        }
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        match self {
            CodeBuf::U8(v) => v.len(),
            CodeBuf::U16(v) => v.len(),
            CodeBuf::U32(v) => v.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A validated, width-packed column: every code is `< support`.
///
/// The storage width defaults to the narrowest that holds the support
/// ([`Width::for_support`]); [`PackedColumn::with_width`] forces a wider
/// one (used by the v1 snapshot reader, which always materializes `u32`,
/// and by width-invariance tests/benches that compare the same logical
/// column at all three widths).
#[derive(Debug, Clone)]
pub struct PackedColumn {
    codes: PackedCodes,
    support: u32,
}

impl PackedColumn {
    /// Packs `codes` at the narrowest width for `support`, validating
    /// `code < support` for all.
    pub fn new(codes: Vec<Code>, support: u32) -> Result<Self, StoreError> {
        Self::with_width(codes, support, Width::for_support(support))
    }

    /// Packs `codes` at an explicit `width` (which must hold `support`),
    /// validating `code < support` for all.
    pub fn with_width(codes: Vec<Code>, support: u32, width: Width) -> Result<Self, StoreError> {
        if !width.holds(support) {
            return Err(StoreError::WidthTooNarrow { width, support });
        }
        if let Some(&bad) = codes.iter().find(|&&c| c >= support) {
            return Err(StoreError::CodeOutOfRange { code: bad, support });
        }
        Ok(Self { codes: PackedCodes::pack(&codes, width), support })
    }

    /// Packs without validating codes (caller guarantees `code < support`;
    /// debug builds still assert).
    pub fn new_unchecked(codes: Vec<Code>, support: u32) -> Self {
        debug_assert!(codes.iter().all(|&c| c < support));
        Self { codes: PackedCodes::pack(&codes, Width::for_support(support)), support }
    }

    /// Adopts already-packed codes (the v2 snapshot reader's path),
    /// validating the width holds the support and every code is in
    /// range — a width-generic max scan, not a per-code branch.
    pub fn from_packed(codes: PackedCodes, support: u32) -> Result<Self, StoreError> {
        if !codes.width().holds(support) {
            return Err(StoreError::WidthTooNarrow { width: codes.width(), support });
        }
        if let Some(max) = codes.max_code() {
            if max >= support {
                return Err(StoreError::CodeOutOfRange { code: max, support });
            }
        }
        Ok(Self { codes, support })
    }

    /// The same logical column re-packed at `width` (must hold the
    /// support). Used to measure/verify width effects on identical data.
    pub fn repacked(&self, width: Width) -> Result<Self, StoreError> {
        if !width.holds(self.support) {
            return Err(StoreError::WidthTooNarrow { width, support: self.support });
        }
        Ok(Self { codes: PackedCodes::pack(&self.to_codes(), width), support: self.support })
    }

    /// The width-tagged code storage.
    #[inline]
    pub fn codes(&self) -> &PackedCodes {
        &self.codes
    }

    /// The support size `u_alpha`.
    #[inline]
    pub fn support(&self) -> u32 {
        self.support
    }

    /// The storage width.
    #[inline]
    pub fn width(&self) -> Width {
        self.codes.width()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Bytes the codes occupy in memory.
    #[inline]
    pub fn bytes_in_memory(&self) -> usize {
        self.codes.bytes()
    }

    /// The widened code at `row`. Panics if out of range.
    #[inline]
    pub fn code(&self, row: usize) -> Code {
        self.codes.code(row)
    }

    /// Widens every code into a fresh `Vec<u32>`.
    pub fn to_codes(&self) -> Vec<Code> {
        self.codes.to_codes()
    }

    /// Counts occurrences of each code over all rows; the result has
    /// length `support`.
    pub fn value_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.support as usize];
        for_packed!(&self.codes, |codes| {
            for &c in codes {
                counts[c.widen() as usize] += 1;
            }
        });
        counts
    }
}

/// Equality is *logical* — same support, same widened code sequence —
/// so a column round-tripped through a format that changed its physical
/// width (e.g. `SWOP` v1, which always stores `u32`) still compares
/// equal to the original.
impl PartialEq for PackedColumn {
    fn eq(&self, other: &Self) -> bool {
        if self.support != other.support || self.len() != other.len() {
            return false;
        }
        match (&self.codes, &other.codes) {
            (PackedCodes::U8(a), PackedCodes::U8(b)) => a == b,
            (PackedCodes::U16(a), PackedCodes::U16(b)) => a == b,
            (PackedCodes::U32(a), PackedCodes::U32(b)) => a == b,
            _ => (0..self.len()).all(|i| self.code(i) == other.code(i)),
        }
    }
}

impl Eq for PackedColumn {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary supports the format cares about: first/last support
    /// per width class.
    const BOUNDARY_SUPPORTS: [u32; 7] = [1, 255, 256, 257, 65535, 65536, 65537];

    fn boundary_codes(support: u32) -> Vec<Code> {
        // Exercise both ends of the code range plus a spread in between.
        (0..64u32).map(|i| (i * 97 + 13) % support).chain([0, support - 1]).collect()
    }

    #[test]
    fn pack_unpack_round_trips_at_boundary_supports() {
        for support in BOUNDARY_SUPPORTS {
            let codes = boundary_codes(support);
            let col = PackedColumn::new(codes.clone(), support).unwrap();
            assert_eq!(col.width(), Width::for_support(support), "support {support}");
            assert_eq!(col.to_codes(), codes, "support {support}");
            assert_eq!(col.len(), codes.len());
            assert_eq!(col.bytes_in_memory(), codes.len() * col.width().bytes());
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(col.code(i), c);
            }
        }
    }

    #[test]
    fn width_selection_matches_issue_boundaries() {
        let w = |s| PackedColumn::new(vec![0], s).unwrap().width();
        assert_eq!(w(1), Width::U8);
        assert_eq!(w(255), Width::U8);
        assert_eq!(w(256), Width::U8);
        assert_eq!(w(65535), Width::U16);
        assert_eq!(w(65536), Width::U16);
        assert_eq!(w(65537), Width::U32);
    }

    #[test]
    fn new_validates_codes() {
        assert!(PackedColumn::new(vec![0, 1, 2], 3).is_ok());
        assert_eq!(
            PackedColumn::new(vec![0, 3], 3),
            Err(StoreError::CodeOutOfRange { code: 3, support: 3 })
        );
    }

    #[test]
    fn with_width_rejects_narrower_than_support() {
        assert_eq!(
            PackedColumn::with_width(vec![0], 257, Width::U8),
            Err(StoreError::WidthTooNarrow { width: Width::U8, support: 257 })
        );
        let wide = PackedColumn::with_width(vec![0, 5], 6, Width::U32).unwrap();
        assert_eq!(wide.width(), Width::U32);
        assert_eq!(wide.to_codes(), vec![0, 5]);
    }

    #[test]
    fn repacked_preserves_logical_content() {
        let col = PackedColumn::new(boundary_codes(200), 200).unwrap();
        for width in [Width::U8, Width::U16, Width::U32] {
            let re = col.repacked(width).unwrap();
            assert_eq!(re.width(), width);
            assert_eq!(re, col, "logical equality across widths");
            assert_eq!(re.to_codes(), col.to_codes());
        }
        let wide = PackedColumn::new(vec![0, 300], 301).unwrap();
        assert!(wide.repacked(Width::U8).is_err());
    }

    #[test]
    fn from_packed_validates_range_and_width() {
        let ok = PackedColumn::from_packed(PackedCodes::U8(vec![0, 4]), 5).unwrap();
        assert_eq!(ok.to_codes(), vec![0, 4]);
        assert_eq!(
            PackedColumn::from_packed(PackedCodes::U8(vec![0, 5]), 5),
            Err(StoreError::CodeOutOfRange { code: 5, support: 5 })
        );
        assert_eq!(
            PackedColumn::from_packed(PackedCodes::U8(vec![]), 300),
            Err(StoreError::WidthTooNarrow { width: Width::U8, support: 300 })
        );
    }

    #[test]
    fn value_counts_are_width_independent() {
        let col = PackedColumn::new(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(col.value_counts(), vec![1, 3, 1]);
        for width in [Width::U16, Width::U32] {
            assert_eq!(col.repacked(width).unwrap().value_counts(), vec![1, 3, 1]);
        }
    }

    #[test]
    fn empty_column_works_at_every_width() {
        for support in [1, 300, 70000] {
            let col = PackedColumn::new(vec![], support).unwrap();
            assert!(col.is_empty());
            assert_eq!(col.bytes_in_memory(), 0);
            assert_eq!(col.value_counts().len(), support as usize);
        }
    }

    /// splitmix64 — the tiny seeded generator the workspace's property
    /// tests hand-roll instead of pulling in a rand crate.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn property_packed_gather_matches_u32_gather_on_permutation_prefixes() {
        let mut seed = 0x5170_57A6u64;
        for support in [2u32, 255, 256, 300, 65536, 70000] {
            let n = 2048usize;
            let codes: Vec<Code> =
                (0..n).map(|_| (splitmix(&mut seed) % support as u64) as u32).collect();
            let col = PackedColumn::new(codes.clone(), support).unwrap();

            // A random permutation of row indices (Fisher–Yates).
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = (splitmix(&mut seed) % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }

            let reference = PackedCodes::U32(codes);
            let mut got = Vec::new();
            let mut want = Vec::new();
            for prefix in [0usize, 1, 7, 100, 1000, n] {
                col.codes().gather_widen(&perm[..prefix], &mut got);
                reference.gather_widen(&perm[..prefix], &mut want);
                assert_eq!(got, want, "support {support}, prefix {prefix}");
                // And the narrow generic gather agrees after widening.
                for_packed!(col.codes(), |codes| {
                    let mut narrow = Vec::new();
                    gather(codes, &perm[..prefix], &mut narrow);
                    let widened: Vec<Code> = narrow.iter().map(|&c| c.widen()).collect();
                    assert_eq!(widened, want, "support {support}, prefix {prefix}");
                });
            }
        }
    }

    #[test]
    fn logical_equality_across_widths() {
        let a = PackedColumn::new(vec![0, 1, 2], 3).unwrap();
        let b = a.repacked(Width::U32).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, PackedColumn::new(vec![0, 1, 2], 4).unwrap());
        assert_ne!(a, PackedColumn::new(vec![0, 1], 3).unwrap());
        assert_ne!(a, PackedColumn::new(vec![0, 1, 1], 3).unwrap());
    }
}
