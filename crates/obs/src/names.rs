//! Canonical metric names for the serving subsystem.
//!
//! `swope-server` feeds its counters and histograms into the same
//! Prometheus exposition text as [`crate::MetricsRegistry`]'s query
//! metrics. The names live here — next to the query-metric families they
//! share a scrape with — so the server, the docs, and any dashboards
//! agree on one spelling. All families follow the `swope_*` prefix the
//! registry already uses.

/// Counter: HTTP requests fully parsed and routed (sheds and unparseable
/// connections are counted by their own families below).
pub const HTTP_REQUESTS_TOTAL: &str = "swope_http_requests_total";

/// Counter with a `class` label (`"2xx"`..`"5xx"`): responses written by
/// the router.
pub const HTTP_RESPONSES_TOTAL: &str = "swope_http_responses_total";

/// Counter: connections shed with `503` at the accept loop because the
/// bounded request queue was full.
pub const HTTP_REJECTED_TOTAL: &str = "swope_http_rejected_total";

/// Counter: requests answered `503` because they aged past the
/// per-request deadline while waiting in the queue.
pub const HTTP_DEADLINE_EXPIRED_TOTAL: &str = "swope_http_deadline_expired_total";

/// Histogram: wall-clock microseconds from request parse to response
/// written, for requests that reached the router.
pub const HTTP_REQUEST_MICROS: &str = "swope_http_request_duration_microseconds";

/// Counter: query responses served straight from the result cache.
pub const CACHE_HITS_TOTAL: &str = "swope_cache_hits_total";

/// Counter: query-cache lookups that missed and ran the adaptive loop.
pub const CACHE_MISSES_TOTAL: &str = "swope_cache_misses_total";

/// Counter: cache entries evicted to make room (least-recently-used).
pub const CACHE_EVICTIONS_TOTAL: &str = "swope_cache_evictions_total";

/// Gauge: requests currently waiting in the bounded queue.
pub const QUEUE_DEPTH: &str = "swope_queue_depth";

/// Gauge: datasets resident in the registry.
pub const DATASETS_LOADED: &str = "swope_datasets_loaded";

/// Gauge: worker threads in the process-wide execution pool that the
/// adaptive loops dispatch per-attribute work onto.
pub const EXEC_POOL_WORKERS: &str = "swope_exec_pool_workers";

/// Counter: parallel fan-outs dispatched onto the execution pool (one
/// per ingest or bounds-update phase that ran on the pool).
pub const EXEC_DISPATCHES_TOTAL: &str = "swope_exec_dispatches_total";

/// Counter: work chunks claimed from the pool's atomic cursor across all
/// dispatches.
pub const EXEC_CHUNKS_TOTAL: &str = "swope_exec_chunks_total";

/// Counter: per-attribute work items processed by pool dispatches.
pub const EXEC_ITEMS_TOTAL: &str = "swope_exec_items_total";

/// Gauge: bytes of width-packed code storage held by all registered
/// datasets (the storage layer's resident footprint).
pub const STORE_BYTES_IN_MEMORY: &str = "swope_store_bytes_in_memory";

/// Gauge: bytes saved by width packing versus storing every code as
/// `u32` (`4·rows·columns − bytes_in_memory`, summed over datasets).
pub const STORE_BYTES_SAVED: &str = "swope_store_bytes_saved";

/// Gauge with a `width` label (`"u8"`/`"u16"`/`"u32"`): registered
/// columns packed at each storage width.
pub const STORE_COLUMNS: &str = "swope_store_columns";

/// Gauge: bytes the per-page partition sketches of all registered
/// datasets occupy when encoded (the scoped-query index footprint).
pub const SKETCH_BYTES: &str = "swope_sketch_bytes";

/// Gauge: total sketch pages across registered datasets (one page per
/// 65 536-row slab per column-set).
pub const SKETCH_PAGES: &str = "swope_sketch_pages";

/// Gauge: fraction of registered rows inside fully-covered sketch
/// pages — range scopes aligned to those pages are answered from the
/// sketch without touching the store.
pub const SKETCH_COVERAGE: &str = "swope_sketch_coverage";

/// Histogram with `endpoint` and `dataset` labels: wall-clock
/// microseconds per request, broken out by what was served and against
/// which dataset (`dataset="-"` for non-query endpoints). Bounded
/// cardinality: endpoints are a fixed vocabulary and datasets collapse
/// into `other` past a cap.
pub const HTTP_ENDPOINT_MICROS: &str = "swope_http_endpoint_duration_microseconds";

/// Counter: traces captured by the flight recorder (one per traced
/// request, whether client-initiated via `X-Swope-Trace` or enabled
/// server-wide with `--trace`).
pub const TRACES_RECORDED_TOTAL: &str = "swope_traces_recorded_total";

/// Counter: traced requests whose wall time crossed the `--slow-ms`
/// threshold and were retained in the slow ring (`GET /debug/slow`).
pub const SLOW_QUERIES_TOTAL: &str = "swope_slow_queries_total";

/// Gauge: shard peers configured on a coordinator (`--peer` flags).
pub const CLUSTER_PEERS: &str = "swope_cluster_peers";

/// Gauge: rows in the union population the coordinator answers from
/// (`n = Σ n_shard` over connected peers; 0 until the first fan-out).
pub const CLUSTER_UNION_ROWS: &str = "swope_cluster_union_rows";

/// Counter: queries fanned out to shard peers by the coordinator.
pub const CLUSTER_QUERIES_TOTAL: &str = "swope_cluster_queries_total";

/// Counter: shard-merge rounds executed (one per doubling iteration of a
/// fanned-out query, merging every peer's count deltas).
pub const CLUSTER_MERGES_TOTAL: &str = "swope_cluster_merges_total";

/// Counter: protocol frames sent to peers (all types).
pub const CLUSTER_FRAMES_SENT_TOTAL: &str = "swope_cluster_frames_sent_total";

/// Counter: protocol frames received from peers (all types).
pub const CLUSTER_FRAMES_RECEIVED_TOTAL: &str = "swope_cluster_frames_received_total";

/// Counter: payload bytes sent to peers (frame headers included).
pub const CLUSTER_BYTES_SENT_TOTAL: &str = "swope_cluster_bytes_sent_total";

/// Counter: payload bytes received from peers (frame headers included).
pub const CLUSTER_BYTES_RECEIVED_TOTAL: &str = "swope_cluster_bytes_received_total";

/// Counter: fan-outs that failed because a peer was unreachable, timed
/// out, or answered with a protocol error (the request maps to `503`).
pub const CLUSTER_PEER_ERRORS_TOTAL: &str = "swope_cluster_peer_errors_total";

/// Counter: fresh TCP connections the coordinator dialed to peers (one
/// per pool miss or stale-socket replacement).
pub const CLUSTER_CONNS_OPENED_TOTAL: &str = "swope_cluster_conns_opened_total";

/// Counter: pooled peer connections reused for a new query after a
/// successful re-handshake health check.
pub const CLUSTER_CONN_REUSES_TOTAL: &str = "swope_cluster_conn_reuses_total";

/// Gauge: client connections currently open on the event loop (every
/// state: reading, dispatched, writing, keep-alive idle).
pub const CONN_OPEN: &str = "swope_conn_open";

/// Gauge: open connections parked in keep-alive idle, waiting for their
/// next request (costing a file descriptor, not a thread).
pub const CONN_IDLE: &str = "swope_conn_idle";

/// Gauge: open connections mid-read (partial request bytes buffered, or
/// freshly accepted and yet to send a byte).
pub const CONN_READING: &str = "swope_conn_reading";

/// Gauge: open connections with a serialized response partially flushed.
pub const CONN_WRITING: &str = "swope_conn_writing";

/// Counter: connections accepted by the event loop since startup.
pub const CONN_ACCEPTED_TOTAL: &str = "swope_conn_accepted_total";

/// Counter: requests served on an already-used keep-alive connection
/// (the second and later requests on each socket).
pub const CONN_KEEPALIVE_REUSES_TOTAL: &str = "swope_conn_keepalive_reuses_total";

/// Counter: connections killed by the read/write timeout — slow-loris
/// partial requests and stalled response writes (keep-alive idle expiry
/// is a normal close and is *not* counted here).
pub const CONN_TIMEOUTS_TOTAL: &str = "swope_conn_timeouts_total";

/// Counter: page faults taken by the out-of-core pager — first touches
/// and refaults after eviction, each decoding a page from the mapped
/// snapshot (or its compressed resident form) into the page cache.
pub const PAGER_FAULTS_TOTAL: &str = "swope_pager_faults_total";

/// Counter: seconds spent servicing page faults (decode + CRC check +
/// admission), summed across threads. Divide by
/// `swope_pager_faults_total` for mean fault latency.
pub const PAGER_FAULT_SECONDS_TOTAL: &str = "swope_pager_fault_seconds_total";

/// Counter: pages evicted by the CLOCK sweep to honour the byte budget
/// (`--store-budget-bytes`). Zero on an unbounded cache.
pub const PAGER_EVICTIONS_TOTAL: &str = "swope_pager_evictions_total";

/// Counter: per-page CRC validations performed — exactly one per page
/// on its *first* touch; refaults of an already-validated page skip the
/// check.
pub const PAGER_CRC_VALIDATIONS_TOTAL: &str = "swope_pager_crc_validations_total";

/// Counter: faults served by decompressing a resident cold page
/// (RLE/palette) instead of re-reading the snapshot.
pub const PAGER_DECOMPRESSIONS_TOTAL: &str = "swope_pager_decompressions_total";

/// Gauge: decoded page bytes currently resident in the page cache.
pub const PAGER_RESIDENT_BYTES: &str = "swope_pager_resident_bytes";

/// Gauge: high-water mark of `swope_pager_resident_bytes` since startup.
pub const PAGER_PEAK_RESIDENT_BYTES: &str = "swope_pager_peak_resident_bytes";

/// Gauge: configured page-cache byte budget (`0` when unbounded).
pub const PAGER_BUDGET_BYTES: &str = "swope_pager_budget_bytes";

/// Gauge: pages held in compressed (cold) resident form.
pub const PAGER_COMPRESSED_PAGES: &str = "swope_pager_compressed_pages";

/// Gauge: bytes those compressed pages occupy (already counted inside
/// `swope_pager_resident_bytes`).
pub const PAGER_COMPRESSED_BYTES: &str = "swope_pager_compressed_bytes";

/// Counter with a `tenant` label: requests attributed to each
/// `X-Swope-Api-Key` bucket by admission control (only rendered when
/// quotas are enabled; bounded cardinality — past the tenant cap new
/// keys collapse into `overflow`).
pub const TENANT_REQUESTS_TOTAL: &str = "swope_tenant_requests_total";

/// Counter with a `tenant` label: requests answered `429 Too Many
/// Requests` because the tenant's token bucket was empty.
pub const TENANT_THROTTLED_TOTAL: &str = "swope_tenant_throttled_total";
