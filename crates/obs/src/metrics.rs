//! Atomic metrics registry: counters and fixed-bucket histograms fed by
//! the observer hooks, renderable as a human text table or as
//! Prometheus-style exposition text.
//!
//! All cells are relaxed `AtomicU64`s, so one registry can be shared
//! across threads and queries for process-lifetime aggregates; the
//! observer hooks only ever run in serial query sections, but render can
//! race with updates harmlessly.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{AttrBounds, Phase, QueryKind, QueryMeta, QueryObserver, RunStats};

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are inclusive upper bounds (Prometheus `le` semantics) plus an
/// implicit overflow bucket; bounds are fixed at construction.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending inclusive bucket
    /// bounds (an overflow bucket is added automatically).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self { bounds, counts, sum: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// The inclusive upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the observed values
    /// by rank interpolation within the owning bucket.
    ///
    /// When the bucket bounds enumerate every distinct observed value the
    /// estimate is exact; otherwise it is linear within one bucket. A
    /// quantile landing in the overflow bucket is clamped to the last
    /// finite bound (the histogram cannot know how far past it the tail
    /// reaches). An empty histogram reports `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cumulative + count >= rank {
                if i == self.bounds.len() {
                    break; // overflow bucket
                }
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] } as f64;
                let upper = self.bounds[i] as f64;
                return lower + (upper - lower) * (rank - cumulative) as f64 / count as f64;
            }
            cumulative += count;
        }
        *self.bounds.last().unwrap() as f64
    }

    /// Appends this histogram to `out` as a Prometheus `histogram` family
    /// named `name` (cumulative `_bucket{le=...}` lines plus `_sum` and
    /// `_count`). Public so other subsystems — e.g. the request-duration
    /// histogram in `swope-server` — render through the exact same shape.
    pub fn render_prometheus(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_prometheus_labelled(name, "", out);
    }

    /// Like [`render_prometheus`](Self::render_prometheus) but with a
    /// fixed label prefix (e.g. `endpoint="query_mi_top_k",dataset="d"`)
    /// on every sample line and no `# TYPE` header — the caller emits one
    /// header per family and then renders each labelled instance through
    /// this. An empty `labels` renders the plain family.
    pub fn render_prometheus_labelled(&self, name: &str, labels: &str, out: &mut String) {
        let prefix = if labels.is_empty() { String::new() } else { format!("{labels},") };
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {cumulative}");
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum());
            let _ = writeln!(out, "{name}_count {cumulative}");
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum());
            let _ = writeln!(out, "{name}_count{{{labels}}} {cumulative}");
        }
    }

    /// Appends p50/p95/p99 estimates as `<name>_approx_quantile` gauge
    /// samples (`quantile="0.5" | "0.95" | "0.99"` labels, merged after
    /// `labels` if non-empty). The caller emits the family's `# TYPE
    /// <name>_approx_quantile gauge` header once.
    pub fn render_quantiles(&self, name: &str, labels: &str, out: &mut String) {
        let prefix = if labels.is_empty() { String::new() } else { format!("{labels},") };
        for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "{name}_approx_quantile{{{prefix}quantile=\"{tag}\"}} {}",
                self.quantile(q)
            );
        }
    }
}

fn zeros<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// Process-lifetime aggregates over every observed query.
///
/// Implements [`QueryObserver`]; attach it (optionally composed with a
/// [`crate::JsonlSink`]) to accumulate counters, then render with
/// [`render_table`](Self::render_table) or
/// [`render_prometheus`](Self::render_prometheus).
#[derive(Debug)]
pub struct MetricsRegistry {
    queries: [AtomicU64; QueryKind::COUNT],
    rows_scanned: AtomicU64,
    iterations: AtomicU64,
    sample_rows: AtomicU64,
    converged_early: AtomicU64,
    attrs_retired: AtomicU64,
    phase_ns: [AtomicU64; Phase::COUNT],
    phase_calls: [AtomicU64; Phase::COUNT],
    /// Iteration at which attributes left the race.
    retirement_iteration: Histogram,
    /// Doubling iterations per query.
    iterations_per_query: Histogram,
    /// Counter-update work units per query.
    rows_scanned_per_query: Histogram,
}

impl MetricsRegistry {
    /// A fresh registry with the default bucket layouts.
    pub fn new() -> Self {
        Self {
            queries: zeros(),
            rows_scanned: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            sample_rows: AtomicU64::new(0),
            converged_early: AtomicU64::new(0),
            attrs_retired: AtomicU64::new(0),
            phase_ns: zeros(),
            phase_calls: zeros(),
            // Doubling means iteration counts are small; resolve 1..16
            // exactly, then coarsen.
            retirement_iteration: Histogram::new(vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32]),
            iterations_per_query: Histogram::new(vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32]),
            // Work units span orders of magnitude; powers of four from 4Ki.
            rows_scanned_per_query: Histogram::new((6..=15).map(|i| 1u64 << (2 * i)).collect()),
        }
    }

    /// Queries observed for `kind`.
    pub fn queries_total(&self, kind: QueryKind) -> u64 {
        self.queries[kind.index()].load(Ordering::Relaxed)
    }

    /// Queries observed across all kinds.
    pub fn queries_all_kinds(&self) -> u64 {
        self.queries.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total counter-update work units across observed queries.
    pub fn rows_scanned_total(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Total doubling iterations across observed queries.
    pub fn iterations_total(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Sum of final sample sizes across observed queries.
    pub fn sample_rows_total(&self) -> u64 {
        self.sample_rows.load(Ordering::Relaxed)
    }

    /// Queries whose stopping rule fired before the sample reached `N`.
    pub fn converged_early_total(&self) -> u64 {
        self.converged_early.load(Ordering::Relaxed)
    }

    /// Attribute retirements observed.
    pub fn attrs_retired_total(&self) -> u64 {
        self.attrs_retired.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds recorded for `phase`.
    pub fn phase_nanos_total(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()].load(Ordering::Relaxed)
    }

    /// The retirement-iteration histogram.
    pub fn retirement_iterations(&self) -> &Histogram {
        &self.retirement_iteration
    }

    /// The iterations-per-query histogram.
    pub fn iterations_per_query(&self) -> &Histogram {
        &self.iterations_per_query
    }

    /// The rows-scanned-per-query histogram.
    pub fn rows_scanned_per_query(&self) -> &Histogram {
        &self.rows_scanned_per_query
    }

    /// Renders a human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metric                         value");
        let _ = writeln!(out, "-----------------------------  ------------");
        let _ = writeln!(out, "{:<29}  {}", "queries_total", self.queries_all_kinds());
        for kind in QueryKind::ALL {
            let n = self.queries_total(kind);
            if n > 0 {
                let _ = writeln!(out, "  {:<27}  {}", kind.name(), n);
            }
        }
        let _ = writeln!(out, "{:<29}  {}", "iterations_total", self.iterations_total());
        let _ = writeln!(out, "{:<29}  {}", "rows_scanned_total", self.rows_scanned_total());
        let _ = writeln!(out, "{:<29}  {}", "sample_rows_total", self.sample_rows_total());
        let _ = writeln!(out, "{:<29}  {}", "converged_early_total", self.converged_early_total());
        let _ = writeln!(out, "{:<29}  {}", "attrs_retired_total", self.attrs_retired_total());
        for phase in Phase::ALL {
            let ns = self.phase_nanos_total(phase);
            let calls = self.phase_calls[phase.index()].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{:<29}  {:.3} ms ({} spans)",
                format!("phase_{}_total", phase.name()),
                ns as f64 / 1e6,
                calls
            );
        }
        let hist = &self.retirement_iteration;
        if hist.count() > 0 {
            let _ = writeln!(out, "retirement_iteration histogram:");
            let counts = hist.bucket_counts();
            for (i, &bound) in hist.bounds().iter().enumerate() {
                if counts[i] > 0 {
                    let _ = writeln!(out, "  le={:<5} {}", bound, counts[i]);
                }
            }
            if counts[hist.bounds().len()] > 0 {
                let _ = writeln!(out, "  le=+Inf  {}", counts[hist.bounds().len()]);
            }
        }
        for (name, hist) in [
            ("iterations_per_query", &self.iterations_per_query),
            ("rows_scanned_per_query", &self.rows_scanned_per_query),
        ] {
            if hist.count() > 0 {
                let _ = writeln!(
                    out,
                    "{:<29}  p50={:.1} p95={:.1} p99={:.1}",
                    name,
                    hist.quantile(0.5),
                    hist.quantile(0.95),
                    hist.quantile(0.99)
                );
            }
        }
        out
    }

    /// Renders Prometheus-style exposition text (`swope_*` metric family).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE swope_queries_total counter");
        for kind in QueryKind::ALL {
            let _ = writeln!(
                out,
                "swope_queries_total{{kind=\"{}\"}} {}",
                kind.name(),
                self.queries_total(kind)
            );
        }
        for (name, value) in [
            ("swope_iterations_total", self.iterations_total()),
            ("swope_rows_scanned_total", self.rows_scanned_total()),
            ("swope_sample_rows_total", self.sample_rows_total()),
            ("swope_converged_early_total", self.converged_early_total()),
            ("swope_attrs_retired_total", self.attrs_retired_total()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# TYPE swope_phase_nanoseconds_total counter");
        for phase in Phase::ALL {
            let _ = writeln!(
                out,
                "swope_phase_nanoseconds_total{{phase=\"{}\"}} {}",
                phase.name(),
                self.phase_nanos_total(phase)
            );
        }
        self.retirement_iteration.render_prometheus("swope_retirement_iteration", &mut out);
        self.iterations_per_query.render_prometheus("swope_iterations_per_query", &mut out);
        self.rows_scanned_per_query.render_prometheus("swope_rows_scanned_per_query", &mut out);
        for (name, hist) in [
            ("swope_retirement_iteration", &self.retirement_iteration),
            ("swope_iterations_per_query", &self.iterations_per_query),
            ("swope_rows_scanned_per_query", &self.rows_scanned_per_query),
        ] {
            let _ = writeln!(out, "# TYPE {name}_approx_quantile gauge");
            hist.render_quantiles(name, "", &mut out);
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryObserver for MetricsRegistry {
    fn query_start(&mut self, meta: &QueryMeta) {
        QueryObserver::query_start(&mut &*self, meta);
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        QueryObserver::phase(&mut &*self, phase, iteration, nanos);
    }

    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        QueryObserver::attr_retired(&mut &*self, attr, iteration, bounds);
    }

    fn query_end(&mut self, stats: &RunStats) {
        QueryObserver::query_end(&mut &*self, stats);
    }
}

/// Shared-reference observer: the registry is all atomics, so a `&'_
/// MetricsRegistry` can observe (useful when one registry aggregates many
/// sequential queries while also being rendered elsewhere).
impl QueryObserver for &MetricsRegistry {
    fn query_start(&mut self, meta: &QueryMeta) {
        self.queries[meta.kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn phase(&mut self, phase: Phase, _iteration: usize, nanos: u64) {
        self.phase_ns[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        self.phase_calls[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn attr_retired(&mut self, _attr: usize, iteration: usize, _bounds: AttrBounds) {
        self.attrs_retired.fetch_add(1, Ordering::Relaxed);
        self.retirement_iteration.observe(iteration as u64);
    }

    fn query_end(&mut self, stats: &RunStats) {
        self.rows_scanned.fetch_add(stats.rows_scanned, Ordering::Relaxed);
        self.iterations.fetch_add(stats.iterations as u64, Ordering::Relaxed);
        self.sample_rows.fetch_add(stats.sample_size as u64, Ordering::Relaxed);
        if stats.converged_early {
            self.converged_early.fetch_add(1, Ordering::Relaxed);
        }
        self.iterations_per_query.observe(stats.iterations as u64);
        self.rows_scanned_per_query.observe(stats.rows_scanned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn quantiles_exact_on_enumerating_bounds() {
        // Bounds enumerate every distinct value, so rank interpolation
        // must reproduce the textbook order statistics exactly.
        let h = Histogram::new((1..=100).collect());
        for v in 1..=100 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(0.01), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(vec![10, 20]);
        for _ in 0..4 {
            h.observe(5); // all mass in the first bucket
        }
        // Ranks 1..=4 of 4 spread linearly across (0, 10].
        assert_eq!(h.quantile(0.25), 2.5);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn quantiles_clamp_to_last_bound_on_overflow() {
        let h = Histogram::new(vec![10, 100]);
        h.observe(5);
        h.observe(1_000_000); // overflow bucket
        assert_eq!(h.quantile(0.99), 100.0, "overflow clamps to last finite bound");
        assert_eq!(h.quantile(0.25), 10.0, "sole observation owns its whole bucket");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(vec![1, 2]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn labelled_exposition_is_valid() {
        let h = Histogram::new(vec![10, 100]);
        h.observe(7);
        h.observe(70);
        h.observe(700);
        let mut out = String::new();
        out.push_str("# TYPE lat histogram\n");
        h.render_prometheus_labelled("lat", "endpoint=\"q\",dataset=\"d\"", &mut out);
        assert!(out.contains("lat_bucket{endpoint=\"q\",dataset=\"d\",le=\"10\"} 1\n"), "{out}");
        assert!(out.contains("lat_bucket{endpoint=\"q\",dataset=\"d\",le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("lat_sum{endpoint=\"q\",dataset=\"d\"} 777\n"), "{out}");
        assert!(out.contains("lat_count{endpoint=\"q\",dataset=\"d\"} 3\n"), "{out}");
        // Every non-comment line is `name{labels} value` with a parseable
        // value — the shape Prometheus' text parser requires.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let (name_and_labels, value) = line.rsplit_once(' ').unwrap();
            assert!(name_and_labels.starts_with("lat"), "{line}");
            assert!(name_and_labels.ends_with('}'), "{line}");
            value.parse::<f64>().unwrap();
        }
        // Labelled quantile gauges merge labels before the quantile tag.
        let mut q = String::new();
        h.render_quantiles("lat", "endpoint=\"q\",dataset=\"d\"", &mut q);
        assert!(q.contains("lat_approx_quantile{endpoint=\"q\",dataset=\"d\",quantile=\"0.5\"}"));
        assert_eq!(q.lines().count(), 3);
    }

    #[test]
    fn registry_accumulates_run_stats() {
        let mut reg = MetricsRegistry::new();
        let meta = QueryMeta {
            kind: QueryKind::EntropyFilter,
            num_attrs: 8,
            num_rows: 100,
            epsilon: 0.1,
            threads: 1,
        };
        reg.query_start(&meta);
        reg.phase(Phase::Ingest, 1, 500);
        reg.phase(Phase::Ingest, 2, 250);
        reg.attr_retired(3, 2, AttrBounds { lower: 0.0, upper: 1.0 });
        reg.query_end(&RunStats {
            sample_size: 64,
            iterations: 2,
            rows_scanned: 512,
            converged_early: true,
        });
        assert_eq!(reg.queries_total(QueryKind::EntropyFilter), 1);
        assert_eq!(reg.queries_all_kinds(), 1);
        assert_eq!(reg.phase_nanos_total(Phase::Ingest), 750);
        assert_eq!(reg.attrs_retired_total(), 1);
        assert_eq!(reg.retirement_iterations().count(), 1);
        assert_eq!(reg.rows_scanned_total(), 512);
        assert_eq!(reg.iterations_total(), 2);
        assert_eq!(reg.sample_rows_total(), 64);
        assert_eq!(reg.converged_early_total(), 1);
    }

    #[test]
    fn renders_mention_all_families() {
        let mut reg = MetricsRegistry::new();
        reg.query_end(&RunStats {
            sample_size: 4,
            iterations: 1,
            rows_scanned: 40,
            converged_early: false,
        });
        let table = reg.render_table();
        assert!(table.contains("rows_scanned_total"));
        assert!(table.contains("phase_ingest_total"));
        let prom = reg.render_prometheus();
        assert!(prom.contains("swope_queries_total{kind=\"entropy_top_k\"} 0"));
        assert!(prom.contains("swope_rows_scanned_total 40"));
        assert!(prom.contains("swope_iterations_per_query_bucket{le=\"1\"} 1"));
        assert!(prom.contains("swope_rows_scanned_per_query_sum 40"));
        assert!(prom.contains("le=\"+Inf\""));
    }

    #[test]
    fn shared_reference_observing() {
        let reg = MetricsRegistry::new();
        let mut obs = &reg;
        obs.phase(Phase::Decide, 1, 42);
        assert_eq!(reg.phase_nanos_total(Phase::Decide), 42);
    }
}
