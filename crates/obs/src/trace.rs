//! Per-request tracing: span trees, trace ids, and the flight recorder.
//!
//! A trace is one served query decomposed into a tree of *spans* — named
//! intervals on a single monotonic clock anchored at the moment the
//! connection was accepted. The server opens a root `request` span, hangs
//! queue/cache/store spans off it, and a [`TraceObserver`] (a
//! [`QueryObserver`] adaptor) converts the adaptive loop's existing hook
//! stream into one `query:<kind>` span with a `sample_grow` / `ingest` /
//! `update_bounds` / `decide` child per iteration — no loop changes, no
//! trait changes, and the `NoopObserver` fast path is untouched.
//!
//! Everything here is dependency-free and lock-cheap: a [`SpanSink`] is a
//! bounded `Mutex<Vec<Span>>` touched only on the request's own threads,
//! and the [`TraceRecorder`] keeps two small ring buffers (recent + slow)
//! of finished traces for `GET /debug/traces` and `GET /debug/slow`.
//!
//! Trace ids travel in the `X-Swope-Trace` header: a client may supply up
//! to 16 hex digits; otherwise one is drawn from a process-global seeded
//! splitmix64 stream (no OS entropy — ids are reproducible within a
//! process run). The id is echoed back in the response header either way.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::ObjectWriter;
use crate::{Phase, QueryMeta, QueryObserver, RunStats};

/// Spans kept per trace before further opens are dropped (and counted).
pub const MAX_SPANS: usize = 512;

/// Sentinel span id returned once a sink is full; all operations on it
/// are no-ops.
const DROPPED: u32 = u32::MAX;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// Process-global splitmix64 state for generated trace ids. Seeded with a
/// fixed constant: the workspace favors reproducibility over entropy, and
/// uniqueness within a server process is all the id needs.
static TRACE_ID_STATE: AtomicU64 = AtomicU64::new(0x5170_2021_C43E_97D1);

impl TraceId {
    /// Draws the next id from the global seeded stream.
    pub fn next_seeded() -> TraceId {
        // splitmix64: advance by the golden-ratio increment, then mix.
        let seed = TRACE_ID_STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TraceId(z ^ (z >> 31))
    }

    /// Parses a client-supplied id: 1–16 hex digits (case-insensitive).
    /// Anything else returns `None` and the server generates a fresh id.
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One named interval within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Dense id within the trace (index into the span list).
    pub id: u32,
    /// Parent span id; `None` for the root `request` span.
    pub parent: Option<u32>,
    /// Span name (`request`, `queue_wait`, `cache_lookup`,
    /// `query:<kind>`, a phase name, `exec_dispatch`, `store_gather`).
    pub name: String,
    /// Start, in nanoseconds since the trace clock's anchor.
    pub start_ns: u64,
    /// End, same clock; `0` while the span is open.
    pub end_ns: u64,
    /// Doubling iteration the span belongs to (`0` outside the loop).
    pub iteration: u64,
    /// Work counter: rows grown/ingested, candidates examined, items
    /// dispatched, bytes written — whatever the span's work is counted in.
    pub items: u64,
}

impl Span {
    fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64_field("id", u64::from(self.id));
        match self.parent {
            Some(p) => w.u64_field("parent", u64::from(p)),
            None => w.null_field("parent"),
        };
        w.str_field("name", &self.name)
            .u64_field("start_ns", self.start_ns)
            .u64_field("end_ns", self.end_ns)
            .u64_field("iteration", self.iteration)
            .u64_field("items", self.items);
        w.finish()
    }
}

/// Collects the spans of one in-flight trace.
///
/// Shared as an `Arc` between the request thread, the executor (for
/// dispatch spans), and the [`TraceObserver`]; all methods take `&self`.
/// The clock is anchored at construction (the server anchors it at the
/// instant the connection was accepted), so `start_ns == 0` is "when the
/// request arrived".
#[derive(Debug)]
pub struct SpanSink {
    trace_id: TraceId,
    started: Instant,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
}

impl SpanSink {
    /// New sink with the clock anchored now.
    pub fn new(trace_id: TraceId) -> Arc<SpanSink> {
        Self::anchored(trace_id, Instant::now())
    }

    /// New sink with the clock anchored at `started` (in the past).
    pub fn anchored(trace_id: TraceId, started: Instant) -> Arc<SpanSink> {
        Arc::new(SpanSink {
            trace_id,
            started,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// The trace's id.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Nanoseconds elapsed since the trace clock's anchor.
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Opens a span starting now. Returns its id.
    pub fn open(&self, name: &str, parent: Option<u32>) -> u32 {
        self.open_at(name, parent, self.now_ns())
    }

    /// Opens a span with an explicit start (e.g. `0` for the root).
    pub fn open_at(&self, name: &str, parent: Option<u32>, start_ns: u64) -> u32 {
        self.push(Span {
            id: 0,
            parent,
            name: name.to_string(),
            start_ns,
            end_ns: 0,
            iteration: 0,
            items: 0,
        })
    }

    /// Records a complete span in one call. Returns its id.
    pub fn record(
        &self,
        name: &str,
        parent: Option<u32>,
        start_ns: u64,
        end_ns: u64,
        iteration: u64,
        items: u64,
    ) -> u32 {
        self.push(Span {
            id: 0,
            parent,
            name: name.to_string(),
            start_ns,
            end_ns,
            iteration,
            items,
        })
    }

    /// Closes an open span now.
    pub fn close(&self, id: u32) {
        let end = self.now_ns();
        self.with_span(id, |s| s.end_ns = end);
    }

    /// Sets a span's work counter (used to patch counters that are only
    /// known after the span closed, like the `sample_grow` row delta).
    pub fn set_items(&self, id: u32, items: u64) {
        self.with_span(id, |s| s.items = items);
    }

    /// Adds to a span's work counter.
    pub fn add_items(&self, id: u32, items: u64) {
        self.with_span(id, |s| s.items += items);
    }

    /// Spans dropped past the [`MAX_SPANS`] cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Takes the collected spans (and the dropped count), leaving the
    /// sink empty. Called once when the request finishes.
    pub fn drain(&self) -> (Vec<Span>, u64) {
        let spans = std::mem::take(&mut *self.spans.lock().unwrap());
        (spans, self.dropped.load(Ordering::Relaxed))
    }

    fn push(&self, mut span: Span) -> u32 {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= MAX_SPANS {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return DROPPED;
        }
        let id = spans.len() as u32;
        span.id = id;
        spans.push(span);
        id
    }

    fn with_span(&self, id: u32, f: impl FnOnce(&mut Span)) {
        if id == DROPPED {
            return;
        }
        let mut spans = self.spans.lock().unwrap();
        if let Some(s) = spans.get_mut(id as usize) {
            f(s);
        }
    }
}

/// Adapts the [`QueryObserver`] hook stream into spans on a [`SpanSink`].
///
/// The loops already report everything a span tree needs, just not in
/// span form: each `phase` hook carries wall nanos (converted to an
/// interval ending "now" on the sink clock) and the `iteration` hook
/// carries the sample size and live-candidate count, from which per-phase
/// work counters derive:
///
/// * `sample_grow` — ΔM rows appended (patched retroactively, since the
///   phase hook fires just before the `iteration` hook that reveals `m`),
/// * `ingest` — ΔM × live counter updates,
/// * `update_bounds` / `decide` — live candidates examined.
#[derive(Debug)]
pub struct TraceObserver {
    sink: Arc<SpanSink>,
    parent: Option<u32>,
    query_span: u32,
    last_sample_grow: u32,
    prev_m: u64,
    delta_m: u64,
    live: u64,
}

impl TraceObserver {
    /// New adaptor writing under `parent` (usually the root request span).
    pub fn new(sink: Arc<SpanSink>, parent: Option<u32>) -> TraceObserver {
        TraceObserver {
            sink,
            parent,
            query_span: DROPPED,
            last_sample_grow: DROPPED,
            prev_m: 0,
            delta_m: 0,
            live: 0,
        }
    }

    /// The id of the `query:<kind>` span (for attaching siblings).
    pub fn query_span(&self) -> Option<u32> {
        (self.query_span != DROPPED).then_some(self.query_span)
    }
}

impl QueryObserver for TraceObserver {
    fn query_start(&mut self, meta: &QueryMeta) {
        self.query_span = self.sink.open(&format!("query:{}", meta.kind.name()), self.parent);
        self.prev_m = 0;
    }

    fn iteration(&mut self, _iteration: usize, m: usize, live_candidates: usize, _lambda: f64) {
        self.delta_m = (m as u64).saturating_sub(self.prev_m);
        self.prev_m = m as u64;
        self.live = live_candidates as u64;
        // The sample_grow phase hook fired before this one; patch in the
        // row delta it grew the sample by.
        if self.last_sample_grow != DROPPED {
            self.sink.set_items(self.last_sample_grow, self.delta_m);
            self.last_sample_grow = DROPPED;
        }
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        let end = self.sink.now_ns();
        let start = end.saturating_sub(nanos);
        let items = match phase {
            Phase::SampleGrow => 0, // patched by the next `iteration` hook
            Phase::Ingest => self.delta_m.saturating_mul(self.live),
            Phase::UpdateBounds | Phase::Decide => self.live,
            // One merged count state is applied per live candidate.
            Phase::ShardMerge => self.live,
            // Scope setup fires before the first iteration; its item
            // count (setup rows scanned) is folded into rows_scanned.
            Phase::StoreSketch => 0,
        };
        let parent = (self.query_span != DROPPED).then_some(self.query_span);
        let id = self.sink.record(phase.name(), parent, start, end, iteration as u64, items);
        if phase == Phase::SampleGrow {
            self.last_sample_grow = id;
        }
    }

    fn query_end(&mut self, stats: &RunStats) {
        self.sink.set_items(self.query_span, stats.rows_scanned);
        self.sink.close(self.query_span);
    }
}

/// A finished trace, ready for the recorder and the `/debug` endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace's id, canonical 16-hex-digit form.
    pub trace_id: String,
    /// Endpoint label (`query_entropy_top_k`, …).
    pub endpoint: String,
    /// Dataset the query ran against (`-` when not applicable).
    pub dataset: String,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Result-cache outcome: `hit`, `miss`, or `-`.
    pub cache: String,
    /// Request wall time, nanoseconds from accept to response-built.
    pub wall_ns: u64,
    /// Spans dropped past the per-trace cap.
    pub dropped_spans: u64,
    /// The span tree, in creation order (root first).
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// Serializes the trace as one JSON object.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans.iter().map(Span::to_json).collect();
        let mut w = ObjectWriter::new();
        w.str_field("trace_id", &self.trace_id)
            .str_field("endpoint", &self.endpoint)
            .str_field("dataset", &self.dataset)
            .u64_field("status", u64::from(self.status))
            .str_field("cache", &self.cache)
            .u64_field("wall_ns", self.wall_ns)
            .u64_field("dropped_spans", self.dropped_spans)
            .raw_field("spans", &format!("[{}]", spans.join(",")));
        w.finish()
    }
}

/// Bounded flight recorder for finished traces.
///
/// Two ring buffers: `recent` holds the last [`recent`](Self::recent_json)
/// traces of any speed, `slow` preferentially retains traces whose wall
/// time crossed the threshold — so a burst of fast traffic cannot evict
/// the slow query you are hunting.
#[derive(Debug)]
pub struct TraceRecorder {
    recent: Mutex<VecDeque<Arc<TraceRecord>>>,
    slow: Mutex<VecDeque<Arc<TraceRecord>>>,
    recent_cap: usize,
    slow_cap: usize,
    slow_threshold_ns: u64,
    recorded: AtomicU64,
    slow_recorded: AtomicU64,
}

impl TraceRecorder {
    /// Default ring capacities: traces kept in `/debug/traces`.
    pub const RECENT_CAP: usize = 64;
    /// Default ring capacities: traces kept in `/debug/slow`.
    pub const SLOW_CAP: usize = 32;

    /// New recorder; traces at or above `slow_threshold_ns` wall time are
    /// also retained in the slow ring.
    pub fn new(recent_cap: usize, slow_cap: usize, slow_threshold_ns: u64) -> TraceRecorder {
        TraceRecorder {
            recent: Mutex::new(VecDeque::with_capacity(recent_cap)),
            slow: Mutex::new(VecDeque::with_capacity(slow_cap)),
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            slow_threshold_ns,
            recorded: AtomicU64::new(0),
            slow_recorded: AtomicU64::new(0),
        }
    }

    /// Default-sized recorder for a `--slow-ms` threshold.
    pub fn with_slow_ms(slow_ms: u64) -> TraceRecorder {
        Self::new(Self::RECENT_CAP, Self::SLOW_CAP, slow_ms.saturating_mul(1_000_000))
    }

    /// The slow-query threshold, nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Total traces recorded since startup.
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces that crossed the slow threshold since startup.
    pub fn slow_total(&self) -> u64 {
        self.slow_recorded.load(Ordering::Relaxed)
    }

    /// Records a finished trace.
    pub fn record(&self, record: TraceRecord) {
        let slow = record.wall_ns >= self.slow_threshold_ns;
        let record = Arc::new(record);
        {
            let mut recent = self.recent.lock().unwrap();
            if recent.len() >= self.recent_cap {
                recent.pop_front();
            }
            recent.push_back(Arc::clone(&record));
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if slow {
            let mut ring = self.slow.lock().unwrap();
            if ring.len() >= self.slow_cap {
                ring.pop_front();
            }
            ring.push_back(record);
            self.slow_recorded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hard cap on a debug-listing body. Traces can carry hundreds of
    /// spans each; past this budget the *oldest* requested traces are
    /// dropped (the newest are the ones being debugged) and the body says
    /// so via `"truncated":true`.
    pub const MAX_BODY_BYTES: usize = 1 << 20;

    /// `GET /debug/traces` body: recent traces, oldest first.
    pub fn recent_json(&self) -> String {
        self.recent_json_n(usize::MAX)
    }

    /// `GET /debug/slow` body: retained slow traces, oldest first.
    pub fn slow_json(&self) -> String {
        self.slow_json_n(usize::MAX)
    }

    /// [`TraceRecorder::recent_json`] limited to the newest `n` traces.
    pub fn recent_json_n(&self, n: usize) -> String {
        let ring = self.recent.lock().unwrap();
        Self::render(&ring, n, self.recorded_total(), self.slow_threshold_ns)
    }

    /// [`TraceRecorder::slow_json`] limited to the newest `n` traces.
    pub fn slow_json_n(&self, n: usize) -> String {
        let ring = self.slow.lock().unwrap();
        Self::render(&ring, n, self.slow_total(), self.slow_threshold_ns)
    }

    fn render(
        ring: &VecDeque<Arc<TraceRecord>>,
        limit: usize,
        total: u64,
        threshold_ns: u64,
    ) -> String {
        // Walk newest-to-oldest so both limits (count and bytes) keep the
        // newest traces, then flip back to oldest-first for the body.
        let mut traces: Vec<String> = Vec::new();
        let mut bytes = 0usize;
        let mut truncated = false;
        for record in ring.iter().rev().take(limit) {
            let json = record.to_json();
            if bytes + json.len() > Self::MAX_BODY_BYTES {
                truncated = true;
                break;
            }
            bytes += json.len();
            traces.push(json);
        }
        truncated |= limit < ring.len();
        traces.reverse();
        let mut w = ObjectWriter::new();
        w.u64_field("recorded_total", total)
            .u64_field("slow_threshold_ns", threshold_ns)
            .u64_field("returned", traces.len() as u64)
            .bool_field("truncated", truncated)
            .raw_field("traces", &format!("[{}]", traces.join(",")));
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::QueryKind;

    #[test]
    fn trace_id_parse_and_format_round_trip() {
        let id = TraceId::parse("deadbeef1234").unwrap();
        assert_eq!(id, TraceId(0xdead_beef_1234));
        assert_eq!(id.to_string(), "0000deadbeef1234");
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse("  ABCDEF  "), Some(TraceId(0xabcdef)));
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("0123456789abcdef0"), None); // 17 digits
    }

    #[test]
    fn seeded_ids_are_distinct() {
        let a = TraceId::next_seeded();
        let b = TraceId::next_seeded();
        assert_ne!(a, b);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn sink_builds_a_tree_and_caps_spans() {
        let sink = SpanSink::new(TraceId(1));
        let root = sink.open_at("request", None, 0);
        let child = sink.open("work", Some(root));
        sink.set_items(child, 42);
        sink.close(child);
        sink.close(root);
        for _ in 0..MAX_SPANS {
            sink.open("filler", Some(root));
        }
        let (spans, dropped) = sink.drain();
        assert_eq!(spans.len(), MAX_SPANS);
        assert_eq!(dropped, 2);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].items, 42);
        assert!(spans[1].end_ns >= spans[1].start_ns);
        assert!(spans[0].end_ns >= spans[1].end_ns);
    }

    #[test]
    fn trace_observer_derives_phase_spans_and_items() {
        let sink = SpanSink::new(TraceId(2));
        let root = sink.open_at("request", None, 0);
        let mut obs = TraceObserver::new(Arc::clone(&sink), Some(root));
        obs.query_start(&QueryMeta {
            kind: QueryKind::MiTopK,
            num_attrs: 8,
            num_rows: 1000,
            epsilon: 0.2,
            threads: 1,
        });
        // Two iterations with the hook order the loops use.
        for (it, (m, live)) in [(64usize, 8usize), (128, 5)].iter().enumerate() {
            let it = it + 1;
            obs.phase(Phase::SampleGrow, it, 10);
            obs.iteration(it, *m, *live, 0.5);
            obs.phase(Phase::Ingest, it, 20);
            obs.phase(Phase::UpdateBounds, it, 5);
            obs.phase(Phase::Decide, it, 5);
        }
        obs.query_end(&RunStats {
            sample_size: 128,
            iterations: 2,
            rows_scanned: 64 * 8 + 64 * 5,
            converged_early: true,
        });
        let (spans, dropped) = sink.drain();
        assert_eq!(dropped, 0);
        let query = spans.iter().find(|s| s.name == "query:mi_top_k").unwrap();
        assert_eq!(query.parent, Some(root));
        assert_eq!(query.items, 64 * 8 + 64 * 5);
        assert!(query.end_ns > 0);
        let by = |name: &str, it: u64| {
            spans.iter().find(|s| s.name == name && s.iteration == it).unwrap().clone()
        };
        // sample_grow items are the patched-in row deltas.
        assert_eq!(by("sample_grow", 1).items, 64);
        assert_eq!(by("sample_grow", 2).items, 64);
        // ingest items are delta × live for that iteration.
        assert_eq!(by("ingest", 1).items, 64 * 8);
        assert_eq!(by("ingest", 2).items, 64 * 5);
        assert_eq!(by("decide", 2).items, 5);
        // Every phase span nests under the query span with sane intervals.
        for s in spans.iter().filter(|s| s.parent == Some(query.id)) {
            assert!(s.end_ns >= s.start_ns, "{s:?}");
        }
        let phase_total: u64 = spans
            .iter()
            .filter(|s| s.parent == Some(query.id))
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        assert_eq!(phase_total, 2 * (10 + 20 + 5 + 5));
    }

    #[test]
    fn record_json_parses_with_span_tree() {
        let sink = SpanSink::new(TraceId(0xabc));
        let root = sink.open_at("request", None, 0);
        sink.record("queue_wait", Some(root), 0, 5, 0, 0);
        sink.close(root);
        let (spans, dropped) = sink.drain();
        let rec = TraceRecord {
            trace_id: sink.trace_id().to_string(),
            endpoint: "query_entropy_top_k".into(),
            dataset: "tiny".into(),
            status: 200,
            cache: "miss".into(),
            wall_ns: 1234,
            dropped_spans: dropped,
            spans,
        };
        let v = Json::parse(&rec.to_json()).unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("0000000000000abc"));
        assert_eq!(v.get("status").unwrap().as_u64(), Some(200));
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("parent"), Some(&Json::Null));
        assert_eq!(spans[1].get("parent").unwrap().as_u64(), Some(0));
        assert_eq!(spans[1].get("name").unwrap().as_str(), Some("queue_wait"));
    }

    fn quick_record(wall_ns: u64, tag: &str) -> TraceRecord {
        TraceRecord {
            trace_id: tag.into(),
            endpoint: "query_entropy_top_k".into(),
            dataset: "d".into(),
            status: 200,
            cache: "miss".into(),
            wall_ns,
            dropped_spans: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn recorder_retains_slow_traces_preferentially() {
        let rec = TraceRecorder::new(2, 2, 1_000);
        rec.record(quick_record(5_000, "slow-1"));
        for i in 0..10 {
            rec.record(quick_record(10, &format!("fast-{i}")));
        }
        // The fast burst evicted slow-1 from the recent ring…
        let recent = Json::parse(&rec.recent_json()).unwrap();
        let ids: Vec<String> = recent
            .get("traces")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|t| t.get("trace_id").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(!ids.iter().any(|i| i == "slow-1"), "{ids:?}");
        // …but the slow ring still has it.
        let slow = Json::parse(&rec.slow_json()).unwrap();
        let slow_ids = slow.get("traces").unwrap().as_array().unwrap();
        assert_eq!(slow_ids.len(), 1);
        assert_eq!(slow_ids[0].get("trace_id").unwrap().as_str(), Some("slow-1"));
        assert_eq!(rec.recorded_total(), 11);
        assert_eq!(rec.slow_total(), 1);
        assert_eq!(slow.get("slow_threshold_ns").unwrap().as_u64(), Some(1_000));
    }

    #[test]
    fn slow_ring_is_bounded() {
        let rec = TraceRecorder::new(4, 2, 0); // threshold 0: everything is slow
        for i in 0..5 {
            rec.record(quick_record(i, &format!("t{i}")));
        }
        let slow = Json::parse(&rec.slow_json()).unwrap();
        assert_eq!(slow.get("traces").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(rec.slow_total(), 5);
    }
}
