//! Minimal hand-rolled JSON: an object writer for the event sink and a
//! recursive-descent parser for reading events back (tests, tooling).
//!
//! The workspace builds without crates.io access, so `serde_json` is not
//! an option. The subset implemented here is exactly what the
//! observability layer needs: flat-ish objects of strings, numbers,
//! booleans, and nulls, with full string escaping on both sides.

use std::fmt::Write as _;

/// Appends `s` to `buf` as a JSON string literal (with quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Appends `value` to `buf` as a JSON number.
///
/// Non-finite values become `null` (JSON has no NaN/Inf); finite values
/// use Rust's shortest round-trip formatting, so parsing the text back
/// with [`Json::parse`] reproduces the exact same bits. This is the one
/// float formatter shared by every JSON producer in the workspace —
/// anything that needs serialized results to compare bitwise (the result
/// cache, the bitwise-identity integration tests) depends on that.
pub fn f64_into(buf: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's `{}` is shortest-round-trip but prints integral floats
        // without a dot; add `.0` so the value stays visibly a float.
        let start = buf.len();
        let _ = write!(buf, "{value}");
        if !buf[start..].contains(['.', 'e', 'E']) {
            buf.push_str(".0");
        }
    } else {
        buf.push_str("null");
    }
}

/// Incremental writer for one JSON object.
///
/// Field order follows call order; keys are written verbatim (callers use
/// static identifiers, so keys are not escaped — values always are).
#[derive(Debug)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts a new object (`{`).
    pub fn new() -> Self {
        Self { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// Writes a string field (escaped).
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, value);
        self
    }

    /// Writes a float field. Non-finite values become `null` (JSON has no
    /// NaN/Inf); finite values use Rust's shortest round-trip formatting.
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        f64_into(&mut self.buf, value);
        self
    }

    /// Writes an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Writes a `usize` field.
    pub fn usize_field(&mut self, key: &str, value: usize) -> &mut Self {
        self.u64_field(key, value as u64)
    }

    /// Writes a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Writes an explicit `null` field.
    pub fn null_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Writes `raw` verbatim as the field value. The caller guarantees it
    /// is well-formed JSON (used to nest arrays/objects built separately).
    pub fn raw_field(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjectWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer accessor (errors on fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Slice on char boundary via
                    // str indexing over the remaining input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_parseable_object() {
        let mut w = ObjectWriter::new();
        w.str_field("event", "query_start")
            .usize_field("h", 100)
            .f64_field("epsilon", 0.1)
            .bool_field("ok", true)
            .f64_field("bad", f64::NAN);
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("query_start"));
        assert_eq!(v.get("h").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("epsilon").unwrap().as_f64(), Some(0.1));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn null_and_raw_fields_nest() {
        let mut inner = ObjectWriter::new();
        inner.u64_field("id", 7);
        let mut w = ObjectWriter::new();
        w.null_field("parent").raw_field("spans", &format!("[{}]", inner.finish()));
        let v = Json::parse(&w.finish()).unwrap();
        assert_eq!(v.get("parent"), Some(&Json::Null));
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans[0].get("id").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f λ";
        let mut w = ObjectWriter::new();
        w.str_field("s", nasty);
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn integral_floats_stay_numbers() {
        let mut w = ObjectWriter::new();
        w.f64_field("x", 3.0);
        let text = w.finish();
        assert!(text.contains("3.0"), "{text}");
        assert_eq!(Json::parse(&text).unwrap().get("x").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let v = Json::parse(" {\"a\": [1, 2.5, {\"b\": null}], \"c\": false} ").unwrap();
        let arr = match v.get("a").unwrap() {
            Json::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = Json::parse("[-3, 1e3, -2.5e-2]").unwrap();
        let arr = match v {
            Json::Arr(a) => a,
            _ => unreachable!(),
        };
        assert_eq!(arr[0].as_f64(), Some(-3.0));
        assert_eq!(arr[1].as_f64(), Some(1000.0));
        assert_eq!(arr[2].as_f64(), Some(-0.025));
        assert_eq!(arr[0].as_u64(), None);
    }
}
