//! JSONL event sink: one JSON object per line per observer hook.
//!
//! The schema is documented in `docs/observability.md`. Every line carries
//! an `"event"` discriminator so a stream mixing several queries stays
//! self-describing (`jq 'select(.event == "iteration")'`).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::ObjectWriter;
use crate::{AttrBounds, Phase, QueryMeta, QueryObserver, RunStats};

/// Writes observer events as JSON lines into any [`Write`].
///
/// Lines are buffered by the caller-supplied writer (use
/// [`JsonlSink::create`] for a buffered file). I/O errors are sticky: the
/// first failure is remembered and surfaced by [`JsonlSink::finish`],
/// while later hook calls become no-ops — query loops never unwind because
/// a log disk filled up.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and wraps it in a buffered writer.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self { out, error: None }
    }

    /// Flushes and returns the first I/O error encountered, if any.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn emit(&mut self, line: String) {
        if self.error.is_some() {
            return;
        }
        let res = self.out.write_all(line.as_bytes()).and_then(|_| self.out.write_all(b"\n"));
        if let Err(e) = res {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.flush() {
            self.error = Some(e);
        }
    }
}

/// Parses a JSONL event stream back into values, tolerating a truncated
/// final record.
///
/// Sinks flush at `query_end`, so a crash (or a reader racing the writer)
/// can leave at most one partial line at the end of the file — and only
/// there. A final fragment without a trailing newline that fails to parse
/// is silently skipped; a malformed *newline-terminated* line is still an
/// error, because that indicates corruption, not truncation.
pub fn parse_jsonl(text: &str) -> Result<Vec<crate::json::Json>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let (line, terminated, next) = match rest.find('\n') {
            Some(i) => (&rest[..i], true, &rest[i + 1..]),
            None => (rest, false, ""),
        };
        rest = next;
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        match crate::json::Json::parse(line) {
            Ok(v) => out.push(v),
            Err(_) if !terminated => break, // truncated tail, drop it
            Err(e) => return Err(format!("bad JSONL line {}: {e}", out.len() + 1)),
        }
    }
    Ok(out)
}

impl<W: Write> QueryObserver for JsonlSink<W> {
    fn query_start(&mut self, meta: &QueryMeta) {
        let mut w = ObjectWriter::new();
        w.str_field("event", "query_start")
            .str_field("kind", meta.kind.name())
            .usize_field("h", meta.num_attrs)
            .usize_field("n", meta.num_rows)
            .f64_field("epsilon", meta.epsilon)
            .usize_field("threads", meta.threads);
        self.emit(w.finish());
    }

    fn iteration(&mut self, iteration: usize, m: usize, live_candidates: usize, lambda: f64) {
        let mut w = ObjectWriter::new();
        w.str_field("event", "iteration")
            .usize_field("iteration", iteration)
            .usize_field("m", m)
            .usize_field("live_candidates", live_candidates)
            .f64_field("lambda", lambda);
        self.emit(w.finish());
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        let mut w = ObjectWriter::new();
        w.str_field("event", "phase")
            .str_field("phase", phase.name())
            .usize_field("iteration", iteration)
            .u64_field("nanos", nanos);
        self.emit(w.finish());
    }

    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        let mut w = ObjectWriter::new();
        w.str_field("event", "attr_retired")
            .usize_field("attr", attr)
            .usize_field("iteration", iteration)
            .f64_field("lower", bounds.lower)
            .f64_field("upper", bounds.upper);
        self.emit(w.finish());
    }

    fn query_end(&mut self, stats: &RunStats) {
        let mut w = ObjectWriter::new();
        w.str_field("event", "query_end")
            .usize_field("sample_size", stats.sample_size)
            .usize_field("iterations", stats.iterations)
            .u64_field("rows_scanned", stats.rows_scanned)
            .bool_field("converged_early", stats.converged_early);
        self.emit(w.finish());
        // Queries are complete units: flush so a tail of the file is never
        // more than one query stale, even if the process dies before
        // `finish()` runs.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::QueryKind;

    fn sample_events(sink: &mut JsonlSink<Vec<u8>>) {
        sink.query_start(&QueryMeta {
            kind: QueryKind::MiTopK,
            num_attrs: 20,
            num_rows: 5000,
            epsilon: 0.5,
            threads: 4,
        });
        sink.iteration(1, 128, 20, 1.25);
        sink.phase(Phase::SampleGrow, 1, 3000);
        sink.attr_retired(7, 1, AttrBounds { lower: 0.25, upper: 0.75 });
        sink.query_end(&RunStats {
            sample_size: 128,
            iterations: 1,
            rows_scanned: 5248,
            converged_early: true,
        });
    }

    #[test]
    fn every_line_parses_with_event_tag() {
        let mut sink = JsonlSink::new(Vec::new());
        sample_events(&mut sink);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        let events: Vec<String> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap().get("event").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(events, vec!["query_start", "iteration", "phase", "attr_retired", "query_end"]);
    }

    #[test]
    fn field_values_round_trip() {
        let mut sink = JsonlSink::new(Vec::new());
        sample_events(&mut sink);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("mi_top_k"));
        assert_eq!(lines[0].get("h").unwrap().as_u64(), Some(20));
        assert_eq!(lines[1].get("lambda").unwrap().as_f64(), Some(1.25));
        assert_eq!(lines[2].get("phase").unwrap().as_str(), Some("sample_grow"));
        assert_eq!(lines[2].get("nanos").unwrap().as_u64(), Some(3000));
        assert_eq!(lines[3].get("attr").unwrap().as_u64(), Some(7));
        assert_eq!(lines[4].get("rows_scanned").unwrap().as_u64(), Some(5248));
        assert_eq!(lines[4].get("converged_early").unwrap().as_bool(), Some(true));
    }

    struct FailingWriter {
        failed: bool,
    }

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            self.failed = true;
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn io_errors_are_sticky_not_panics() {
        let mut sink = JsonlSink::new(FailingWriter { failed: false });
        sink.iteration(1, 10, 5, 0.1);
        sink.iteration(2, 20, 5, 0.1); // swallowed, no panic
        assert!(sink.finish().is_err());
    }

    #[test]
    fn query_end_flushes_through_buffered_writers() {
        // Shared byte buffer observed *without* calling finish(): only a
        // flush can have pushed the lines through the BufWriter.
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::new(BufWriter::with_capacity(1 << 20, shared.clone()));
        sink.iteration(1, 128, 20, 1.25);
        assert!(shared.0.lock().unwrap().is_empty(), "BufWriter should still hold the line");
        sink.query_end(&RunStats::default());
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2, "query_end must flush: {text:?}");
        drop(sink);
    }

    #[test]
    fn parse_jsonl_skips_truncated_final_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sample_events(&mut sink);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();

        // Cut mid-way through the final record (no trailing newline).
        let cut = &text[..text.len() - 17];
        assert!(!cut.ends_with('\n'));
        let events = parse_jsonl(cut).unwrap();
        assert_eq!(events.len(), 4, "truncated tail dropped");
        assert_eq!(events[3].get("event").unwrap().as_str(), Some("attr_retired"));

        // The intact stream parses fully, with or without final newline.
        assert_eq!(parse_jsonl(&text).unwrap().len(), 5);
        assert_eq!(parse_jsonl(text.trim_end()).unwrap().len(), 5);

        // A malformed line in the *middle* (newline-terminated) is real
        // corruption and still errors.
        let corrupt = text.replacen("\"iteration\"", "\"iteration", 1);
        assert!(parse_jsonl(&corrupt).is_err());

        // Blank lines are tolerated.
        assert_eq!(parse_jsonl("\n\n{\"a\":1}\n\n").unwrap().len(), 1);
    }
}
