//! Query observability for SWOPE.
//!
//! Every adaptive query loop in `swope-core` shares one lifecycle: a
//! `query_start`, a sequence of doubling iterations (each growing the
//! sample, ingesting the delta, updating bounds, and deciding), attributes
//! retiring from the race one by one, and a `query_end`. [`QueryObserver`]
//! names those points; the loops call the hooks and implementations decide
//! what to keep.
//!
//! Three implementations ship here:
//!
//! * [`NoopObserver`] — the zero-cost default. `enabled()` returns `false`,
//!   every hook is an empty default method, and the loops are generic over
//!   the observer type, so an unobserved query monomorphizes to exactly the
//!   un-instrumented code (no timer reads, no branches on `Option`).
//! * [`MetricsRegistry`] — atomic counters and fixed-bucket histograms,
//!   renderable as a text table or Prometheus exposition text.
//! * [`JsonlSink`] — one JSON event per line into any `Write`, for
//!   convergence plots and offline analysis.
//!
//! [`ComposedObserver`] fans hooks out to two observers (compose further by
//! nesting); `Option<O>` and `&mut O` also implement the trait, so call
//! sites can assemble "JSONL if requested, metrics if requested" without
//! boxing.
//!
//! The [`trace`] module builds on the same hooks to record per-request
//! span trees ([`trace::TraceObserver`] into a [`trace::SpanSink`]) and
//! keep a bounded flight recorder of finished traces
//! ([`trace::TraceRecorder`]) behind the server's `/debug` endpoints.

pub mod json;
mod jsonl;
mod metrics;
pub mod names;
pub mod trace;

pub use jsonl::{parse_jsonl, JsonlSink};
pub use metrics::{Histogram, MetricsRegistry};

/// Which adaptive query produced an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// [`entropy_top_k`](https://docs.rs/swope-core) — Algorithm 1.
    EntropyTopK,
    /// `entropy_filter` — Algorithm 2.
    EntropyFilter,
    /// `mi_top_k` — Algorithm 3.
    MiTopK,
    /// `mi_filter` — Algorithm 4.
    MiFilter,
    /// `entropy_profile` — all-attribute entropy estimates.
    EntropyProfile,
    /// `mi_profile` — all-attribute MI estimates against one target.
    MiProfile,
    /// `mi_top_k_batch` — shared-scan multi-target MI top-k.
    MiTopKBatch,
}

impl QueryKind {
    /// Number of variants (array sizing).
    pub const COUNT: usize = 7;

    /// All variants, in `index()` order.
    pub const ALL: [QueryKind; Self::COUNT] = [
        QueryKind::EntropyTopK,
        QueryKind::EntropyFilter,
        QueryKind::MiTopK,
        QueryKind::MiFilter,
        QueryKind::EntropyProfile,
        QueryKind::MiProfile,
        QueryKind::MiTopKBatch,
    ];

    /// Stable dense index for per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            QueryKind::EntropyTopK => 0,
            QueryKind::EntropyFilter => 1,
            QueryKind::MiTopK => 2,
            QueryKind::MiFilter => 3,
            QueryKind::EntropyProfile => 4,
            QueryKind::MiProfile => 5,
            QueryKind::MiTopKBatch => 6,
        }
    }

    /// Snake-case name used in events and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::EntropyTopK => "entropy_top_k",
            QueryKind::EntropyFilter => "entropy_filter",
            QueryKind::MiTopK => "mi_top_k",
            QueryKind::MiFilter => "mi_filter",
            QueryKind::EntropyProfile => "entropy_profile",
            QueryKind::MiProfile => "mi_profile",
            QueryKind::MiTopKBatch => "mi_top_k_batch",
        }
    }
}

/// The four phases every doubling iteration passes through, plus the
/// one-shot scope-setup phase a scoped query runs before its first
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Extending the shuffled sample prefix from `M` to the next target.
    SampleGrow,
    /// Feeding the ΔM new records into per-candidate counters.
    Ingest,
    /// Recomputing per-candidate confidence bounds at the new `M`.
    UpdateBounds,
    /// Applying the stopping rule and pruning/retiring candidates.
    Decide,
    /// Resolving a query scope against the partition sketch: summing
    /// covered-page histograms, materializing fringe/predicate rows.
    /// Emitted once per scoped query with iteration 0.
    StoreSketch,
    /// Merging per-shard count deltas and applying the merged histogram
    /// to the master counters in canonical code order. Emitted only by
    /// the shard-parallel loops (`swope_core::shard`), once per doubling
    /// iteration, between ingest and the bounds update.
    ShardMerge,
}

impl Phase {
    /// Number of variants (array sizing).
    pub const COUNT: usize = 6;

    /// All variants, in `index()` order.
    pub const ALL: [Phase; Self::COUNT] = [
        Phase::SampleGrow,
        Phase::Ingest,
        Phase::UpdateBounds,
        Phase::Decide,
        Phase::StoreSketch,
        Phase::ShardMerge,
    ];

    /// Stable dense index for per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::SampleGrow => 0,
            Phase::Ingest => 1,
            Phase::UpdateBounds => 2,
            Phase::Decide => 3,
            Phase::StoreSketch => 4,
            Phase::ShardMerge => 5,
        }
    }

    /// Snake-case name used in events and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SampleGrow => "sample_grow",
            Phase::Ingest => "ingest",
            Phase::UpdateBounds => "update_bounds",
            Phase::Decide => "decide",
            Phase::StoreSketch => "store_sketch",
            Phase::ShardMerge => "shard_merge",
        }
    }
}

/// Static facts about a query, reported once at `query_start`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMeta {
    /// Which algorithm is running.
    pub kind: QueryKind,
    /// Number of candidate attributes `h` entering the query.
    pub num_attrs: usize,
    /// Dataset rows `N`.
    pub num_rows: usize,
    /// Approximation parameter ε.
    pub epsilon: f64,
    /// Worker threads configured for per-attribute work.
    pub threads: usize,
}

/// Aggregate outcome of a query, reported once at `query_end`.
///
/// Mirrors `swope_core::QueryStats`'s scalar fields (the trace stays in
/// core; observers that want per-iteration data subscribe to the
/// `iteration` hook instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Final sample size `M` when the query stopped.
    pub sample_size: usize,
    /// Number of doubling iterations executed.
    pub iterations: usize,
    /// Total counter-update work units (the paper's `O(h·M*)` quantity).
    pub rows_scanned: u64,
    /// Whether the stopping rule fired before the sample reached `N`.
    pub converged_early: bool,
}

/// Final confidence interval of a retiring attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrBounds {
    /// Lower confidence bound at retirement.
    pub lower: f64,
    /// Upper confidence bound at retirement.
    pub upper: f64,
}

/// Lifecycle hooks shared by every adaptive SWOPE query loop.
///
/// All hooks have empty defaults, so an implementation subscribes only to
/// what it needs. Hooks are invoked from the serial sections of the loops
/// only — never from inside per-attribute worker threads — so `&mut self`
/// receivers need no synchronization.
pub trait QueryObserver {
    /// Whether this observer wants events at all.
    ///
    /// The instrumented loops skip clock reads (and any other
    /// observation-only work) when this returns `false`, which is how
    /// [`NoopObserver`] monomorphizes to zero overhead.
    fn enabled(&self) -> bool {
        true
    }

    /// A query began.
    fn query_start(&mut self, meta: &QueryMeta) {
        let _ = meta;
    }

    /// A doubling iteration reached its decision point: the sample is at
    /// `m` rows, `live_candidates` attributes are still in the race, and
    /// the shared deviation radius is `lambda`.
    fn iteration(&mut self, iteration: usize, m: usize, live_candidates: usize, lambda: f64) {
        let _ = (iteration, m, live_candidates, lambda);
    }

    /// A phase of iteration `iteration` took `nanos` wall-clock
    /// nanoseconds. Only emitted when [`enabled`](Self::enabled) observers
    /// are attached (timing is skipped otherwise).
    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        let _ = (phase, iteration, nanos);
    }

    /// Attribute `attr` left the race during `iteration` (pruned, accepted,
    /// rejected, or resolved) with final confidence interval `bounds`.
    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        let _ = (attr, iteration, bounds);
    }

    /// The query finished.
    fn query_end(&mut self, stats: &RunStats) {
        let _ = stats;
    }
}

/// The zero-cost default observer: disabled, all hooks empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl QueryObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }
}

/// Fans every hook out to two observers (`a` first, then `b`). Nest for
/// more than two.
#[derive(Debug, Default)]
pub struct ComposedObserver<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A, B> ComposedObserver<A, B> {
    /// Composes two observers.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: QueryObserver, B: QueryObserver> QueryObserver for ComposedObserver<A, B> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn query_start(&mut self, meta: &QueryMeta) {
        self.a.query_start(meta);
        self.b.query_start(meta);
    }

    fn iteration(&mut self, iteration: usize, m: usize, live_candidates: usize, lambda: f64) {
        self.a.iteration(iteration, m, live_candidates, lambda);
        self.b.iteration(iteration, m, live_candidates, lambda);
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        self.a.phase(phase, iteration, nanos);
        self.b.phase(phase, iteration, nanos);
    }

    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        self.a.attr_retired(attr, iteration, bounds);
        self.b.attr_retired(attr, iteration, bounds);
    }

    fn query_end(&mut self, stats: &RunStats) {
        self.a.query_end(stats);
        self.b.query_end(stats);
    }
}

impl<O: QueryObserver + ?Sized> QueryObserver for &mut O {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn query_start(&mut self, meta: &QueryMeta) {
        (**self).query_start(meta);
    }

    fn iteration(&mut self, iteration: usize, m: usize, live_candidates: usize, lambda: f64) {
        (**self).iteration(iteration, m, live_candidates, lambda);
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        (**self).phase(phase, iteration, nanos);
    }

    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        (**self).attr_retired(attr, iteration, bounds);
    }

    fn query_end(&mut self, stats: &RunStats) {
        (**self).query_end(stats);
    }
}

/// `None` behaves like [`NoopObserver`]; `Some(o)` forwards to `o`.
impl<O: QueryObserver> QueryObserver for Option<O> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|o| o.enabled())
    }

    fn query_start(&mut self, meta: &QueryMeta) {
        if let Some(o) = self {
            o.query_start(meta);
        }
    }

    fn iteration(&mut self, iteration: usize, m: usize, live_candidates: usize, lambda: f64) {
        if let Some(o) = self {
            o.iteration(iteration, m, live_candidates, lambda);
        }
    }

    fn phase(&mut self, phase: Phase, iteration: usize, nanos: u64) {
        if let Some(o) = self {
            o.phase(phase, iteration, nanos);
        }
    }

    fn attr_retired(&mut self, attr: usize, iteration: usize, bounds: AttrBounds) {
        if let Some(o) = self {
            o.attr_retired(attr, iteration, bounds);
        }
    }

    fn query_end(&mut self, stats: &RunStats) {
        if let Some(o) = self {
            o.query_end(stats);
        }
    }
}

/// In-memory accumulator of per-phase wall-clock nanoseconds.
///
/// The bench harness attaches one per measured query to report phase
/// breakdowns without paying for a full registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseAccumulator {
    /// Total nanoseconds per phase, indexed by [`Phase::index`].
    pub nanos: [u64; Phase::COUNT],
    /// Hook invocations per phase, indexed by [`Phase::index`].
    pub calls: [u64; Phase::COUNT],
}

impl PhaseAccumulator {
    /// Fresh, all-zero accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total nanoseconds recorded for `phase`.
    pub fn nanos_for(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Sum over all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

impl QueryObserver for PhaseAccumulator {
    fn phase(&mut self, phase: Phase, _iteration: usize, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.calls[phase.index()] += 1;
    }
}

/// Runs `f`, reporting its wall-clock duration to `obs` as `phase` of
/// `iteration` — unless the observer is disabled, in which case the clock
/// is never read.
#[inline]
pub fn time_phase<O: QueryObserver, T>(
    obs: &mut O,
    phase: Phase,
    iteration: usize,
    f: impl FnOnce() -> T,
) -> T {
    if !obs.enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    obs.phase(phase, iteration, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl QueryObserver for Recorder {
        fn query_start(&mut self, meta: &QueryMeta) {
            self.events.push(format!("start:{}", meta.kind.name()));
        }
        fn iteration(&mut self, it: usize, m: usize, live: usize, _lambda: f64) {
            self.events.push(format!("iter:{it}:{m}:{live}"));
        }
        fn phase(&mut self, phase: Phase, it: usize, _nanos: u64) {
            self.events.push(format!("phase:{}:{it}", phase.name()));
        }
        fn attr_retired(&mut self, attr: usize, it: usize, _b: AttrBounds) {
            self.events.push(format!("retired:{attr}:{it}"));
        }
        fn query_end(&mut self, stats: &RunStats) {
            self.events.push(format!("end:{}", stats.iterations));
        }
    }

    fn meta() -> QueryMeta {
        QueryMeta {
            kind: QueryKind::EntropyTopK,
            num_attrs: 10,
            num_rows: 1000,
            epsilon: 0.1,
            threads: 1,
        }
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopObserver.enabled());
        assert!(!None::<NoopObserver>.enabled());
        assert!(!Some(NoopObserver).enabled());
    }

    #[test]
    fn composed_fans_out_in_order() {
        let mut c = ComposedObserver::new(Recorder::default(), Recorder::default());
        c.query_start(&meta());
        c.iteration(1, 64, 10, 0.5);
        c.attr_retired(3, 1, AttrBounds { lower: 0.0, upper: 1.0 });
        c.query_end(&RunStats { iterations: 1, ..Default::default() });
        assert_eq!(c.a.events, c.b.events);
        assert_eq!(c.a.events, vec!["start:entropy_top_k", "iter:1:64:10", "retired:3:1", "end:1"]);
    }

    #[test]
    fn composed_enabled_is_or() {
        assert!(ComposedObserver::new(NoopObserver, Recorder::default()).enabled());
        assert!(!ComposedObserver::new(NoopObserver, NoopObserver).enabled());
    }

    #[test]
    fn option_none_swallows_events() {
        let mut o: Option<Recorder> = None;
        o.query_start(&meta());
        let mut some = Some(Recorder::default());
        some.query_start(&meta());
        assert_eq!(some.as_ref().unwrap().events.len(), 1);
    }

    #[test]
    fn time_phase_skips_clock_when_disabled() {
        let mut noop = NoopObserver;
        let out = time_phase(&mut noop, Phase::Ingest, 1, || 42);
        assert_eq!(out, 42);
        let mut rec = Recorder::default();
        let out = time_phase(&mut rec, Phase::Ingest, 2, || 7);
        assert_eq!(out, 7);
        assert_eq!(rec.events, vec!["phase:ingest:2"]);
    }

    #[test]
    fn phase_accumulator_sums() {
        let mut acc = PhaseAccumulator::new();
        acc.phase(Phase::Ingest, 1, 100);
        acc.phase(Phase::Ingest, 2, 50);
        acc.phase(Phase::Decide, 2, 25);
        assert_eq!(acc.nanos_for(Phase::Ingest), 150);
        assert_eq!(acc.nanos_for(Phase::Decide), 25);
        assert_eq!(acc.total_nanos(), 175);
        assert_eq!(acc.calls[Phase::Ingest.index()], 2);
    }

    #[test]
    fn kind_and_phase_indices_are_dense() {
        for (i, k) in QueryKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
