//! # swope-bench
//!
//! Benchmark harness reproducing every table and figure of the SWOPE
//! paper's evaluation (§6) on the synthetic census-like corpus from
//! `swope-datagen`.
//!
//! ## Usage
//!
//! ```text
//! cargo run --release -p swope-bench --bin figures -- all
//! cargo run --release -p swope-bench --bin figures -- fig1 --scale 0.02
//! cargo run --release -p swope-bench --bin figures -- fig9 --out results
//! ```
//!
//! Experiment ids: `table2`, `fig1`–`fig12` (see DESIGN.md §3 for the
//! mapping to the paper). Each experiment prints a paper-style table and
//! writes `results/<id>.csv`.
//!
//! Absolute times will differ from the paper (different hardware, Rust vs
//! C++, scaled-down data); the *shape* — which algorithm wins, by roughly
//! what factor, and how ε trades accuracy for time — is the reproduction
//! target. EXPERIMENTS.md records paper-vs-measured for every experiment.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod harness;
pub mod metrics;
pub mod micro;
pub mod report;

pub use harness::{ExpConfig, Row};
pub use micro::rss_bytes;
