//! Regenerates the SWOPE paper's tables and figures.
//!
//! ```text
//! figures -- all                 # every experiment
//! figures -- fig1 fig3           # specific figures
//! figures -- fig5 --scale 0.05 --targets 20 --seed 7 --out results
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use swope_bench::figures::Experiment;
use swope_bench::ExpConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: figures <experiment...|all> [options]
experiments: table2 fig1..fig12 ext-sampling ext-threads ext-oneshot ext-m0
options:
  --scale <f64>    row scale vs the paper's datasets (default 1/64)
  --seed <u64>     data + sampling seed (default 0x5170)
  --targets <n>    MI target attributes to average over (default 5; paper used 20)
  --dataset <name> restrict to one profile (repeatable: cdc hus pus enem)
  --max-support <u> drop columns wider than this (default 1000, the paper's cap)
  --out <dir>      CSV output directory (default results/)";

fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = ExpConfig::default();
    let mut experiments: Vec<Experiment> = Vec::new();
    let mut want_all = false;

    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        match a.as_str() {
            "all" => want_all = true,
            "--scale" => cfg.scale = parse_value(args, &mut i, "scale")?,
            "--seed" => cfg.seed = parse_value(args, &mut i, "seed")?,
            "--targets" => cfg.mi_targets = parse_value(args, &mut i, "targets")?,
            "--out" => {
                i += 1;
                cfg.out_dir = PathBuf::from(args.get(i).ok_or("--out requires a directory")?);
            }
            "--dataset" => {
                i += 1;
                cfg.only_datasets.push(args.get(i).ok_or("--dataset requires a name")?.clone());
            }
            "--max-support" => cfg.max_support = parse_value(args, &mut i, "max-support")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => {
                let exp = Experiment::parse(other)
                    .ok_or_else(|| format!("unknown experiment {other:?}"))?;
                if !experiments.contains(&exp) {
                    experiments.push(exp);
                }
            }
        }
        i += 1;
    }
    if cfg.scale <= 0.0 || cfg.scale > 1.0 {
        return Err(format!("scale must be in (0, 1], got {}", cfg.scale));
    }
    if want_all {
        experiments = Experiment::ALL.to_vec();
    }
    if experiments.is_empty() {
        return Err("no experiment given".into());
    }

    println!(
        "config: scale = {} (pus ~ {} rows), seed = {}, MI targets = {}, out = {}",
        cfg.scale,
        (31_290_943.0 * cfg.scale) as u64,
        cfg.seed,
        cfg.mi_targets,
        cfg.out_dir.display()
    );
    println!();

    for exp in experiments {
        let rows = exp.run(&cfg);
        exp.report(&rows, &cfg).map_err(|e| format!("writing CSV: {e}"))?;
        println!();
    }
    println!("CSV + JSON reports written to {}", cfg.out_dir.display());
    Ok(())
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    name: &str,
) -> Result<T, String> {
    *i += 1;
    args.get(*i)
        .ok_or_else(|| format!("--{name} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid --{name} value {:?}", args[*i]))
}
