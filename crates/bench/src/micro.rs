//! Minimal microbenchmark harness for the `benches/` targets.
//!
//! The workspace builds without external crates, so the `[[bench]]`
//! targets (all `harness = false`) drive this instead of a benchmarking
//! framework. The protocol is deliberately simple and deterministic in
//! shape: calibrate an iteration count so one batch lands near a fixed
//! time slice, run a handful of batches, and report the median
//! nanoseconds per iteration (median over batches is robust to scheduler
//! noise without discarding data).
//!
//! Budget knob: `SWOPE_MICRO_MS` sets the per-benchmark time budget in
//! milliseconds (default 200). CI smoke runs can set it to 1.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported so benches don't reach into
/// `std::hint` themselves.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

const BATCHES: usize = 7;

fn budget() -> Duration {
    let ms =
        std::env::var("SWOPE_MICRO_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// A named group of related benchmarks, printed with a shared prefix.
pub struct Group {
    name: String,
    budget: Duration,
}

impl Group {
    /// Starts a group; prints a header line.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        Self { name, budget: budget() }
    }

    /// Benchmarks `f`, timing whole batches of calls. Returns the median
    /// nanoseconds per iteration so benches can derive ratios or persist
    /// machine-readable results.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Calibrate: how many calls fit in one batch slice?
        let slice = self.budget / BATCHES as u32;
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (slice.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as usize;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(BATCHES);
        let mut total_iters = 0usize;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
            total_iters += iters;
        }
        self.report(name, &mut per_iter_ns, total_iters)
    }

    /// Benchmarks `f` with a fresh `setup()` value per call; only `f` is
    /// timed, so benches can consume their input without paying for its
    /// construction. Returns the median nanoseconds per iteration.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) -> f64 {
        let slice = self.budget / BATCHES as u32;
        let s = setup();
        let t0 = Instant::now();
        black_box(f(s));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (slice.as_nanos() / once.as_nanos()).clamp(1, 1 << 16) as usize;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(BATCHES);
        let mut total_iters = 0usize;
        for _ in 0..BATCHES {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let s = setup();
                let t0 = Instant::now();
                black_box(f(s));
                timed += t0.elapsed();
            }
            per_iter_ns.push(timed.as_nanos() as f64 / iters as f64);
            total_iters += iters;
        }
        self.report(name, &mut per_iter_ns, total_iters)
    }

    fn report(&self, name: &str, per_iter_ns: &mut [f64], total_iters: usize) -> f64 {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        println!(
            "{}/{name:<32} median {:>12}  min {:>12}  ({total_iters} iters)",
            self.name,
            pretty_ns(median),
            pretty_ns(min),
        );
        median
    }
}

/// `VmRSS` of this process in bytes, read from `/proc/self/status`.
/// `None` where `/proc` doesn't exist (non-Linux dev machines) — memory
/// benches report a sentinel instead of failing there.
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))?
        .trim()
        .split(' ')
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn pretty_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_ns_picks_unit() {
        assert_eq!(pretty_ns(12.0), "12.0 ns");
        assert_eq!(pretty_ns(12_500.0), "12.50 µs");
        assert_eq!(pretty_ns(3_000_000.0), "3.00 ms");
        assert_eq!(pretty_ns(2.5e9), "2.500 s");
    }

    #[test]
    fn bench_runs_and_counts() {
        // Keep it fast regardless of the env knob.
        let mut g = Group { name: "t".into(), budget: Duration::from_millis(2) };
        let mut calls = 0u64;
        g.bench("noop", || calls += 1);
        assert!(calls > 0);
        let mut setups = 0u64;
        g.bench_with_setup("setup", || setups += 1, |_| ());
        assert!(setups > 0);
    }
}
