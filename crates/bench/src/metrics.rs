//! Accuracy metrics comparing approximate answers against exact ones.

use std::collections::HashSet;

use swope_columnar::AttrIndex;

/// Top-k accuracy: fraction of returned attributes that belong to the
/// exact top-k set (the paper's Figures 2, 6, 9b, 11b metric — 1.0 means
/// the returned set *is* the exact top-k).
///
/// Set-based rather than order-based, matching the paper's treatment of
/// near-ties: returning the exact set in a different order is correct.
pub fn topk_accuracy(returned: &[AttrIndex], exact: &[AttrIndex]) -> f64 {
    if exact.is_empty() {
        return if returned.is_empty() { 1.0 } else { 0.0 };
    }
    let exact_set: HashSet<_> = exact.iter().collect();
    let hits = returned.iter().filter(|a| exact_set.contains(a)).count();
    hits as f64 / exact.len() as f64
}

/// Precision / recall / F1 of a filtering answer against the exact one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterAccuracy {
    /// `|returned ∩ exact| / |returned|` (1.0 when nothing returned).
    pub precision: f64,
    /// `|returned ∩ exact| / |exact|` (1.0 when nothing to return).
    pub recall: f64,
    /// Harmonic mean of precision and recall (the Figures 4, 8, 10b, 12b
    /// metric; 1.0 means identical result sets).
    pub f1: f64,
}

/// Computes [`FilterAccuracy`] for a filtering answer.
pub fn filter_accuracy(returned: &[AttrIndex], exact: &[AttrIndex]) -> FilterAccuracy {
    let returned_set: HashSet<_> = returned.iter().collect();
    let exact_set: HashSet<_> = exact.iter().collect();
    let hits = returned_set.intersection(&exact_set).count();
    let precision =
        if returned_set.is_empty() { 1.0 } else { hits as f64 / returned_set.len() as f64 };
    let recall = if exact_set.is_empty() { 1.0 } else { hits as f64 / exact_set.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    FilterAccuracy { precision, recall, f1 }
}

/// Checks Definition 6 compliance of a filtering answer against exact
/// scores: every attribute scoring `≥ (1+ε)η` is returned and none
/// scoring `< (1−ε)η` is.
pub fn definition6_compliant(
    returned: &[AttrIndex],
    exact_scores: &[(AttrIndex, f64)],
    eta: f64,
    epsilon: f64,
) -> bool {
    let returned_set: HashSet<_> = returned.iter().collect();
    exact_scores.iter().all(|&(attr, score)| {
        if score >= (1.0 + epsilon) * eta {
            returned_set.contains(&attr)
        } else if score < (1.0 - epsilon) * eta {
            !returned_set.contains(&attr)
        } else {
            true
        }
    })
}

/// Checks Definition 5 compliance of a top-k answer: condition (ii),
/// `s(α'_i) ≥ (1−ε)·s(α*_i)` for every position `i`, evaluated on exact
/// scores (condition (i) concerns the estimates, checked separately in
/// tests).
pub fn definition5_condition2(
    returned: &[AttrIndex],
    exact_scores_desc: &[f64],
    exact_score_of: impl Fn(AttrIndex) -> f64,
    epsilon: f64,
) -> bool {
    returned.iter().enumerate().all(|(i, &attr)| {
        let s_returned = exact_score_of(attr);
        let s_star = exact_scores_desc.get(i).copied().unwrap_or(0.0);
        s_returned >= (1.0 - epsilon) * s_star - 1e-12
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_accuracy_counts_set_overlap() {
        assert_eq!(topk_accuracy(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(topk_accuracy(&[1, 2, 9], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(topk_accuracy(&[], &[]), 1.0);
        assert_eq!(topk_accuracy(&[1], &[]), 0.0);
    }

    #[test]
    fn filter_accuracy_perfect_match() {
        let a = filter_accuracy(&[1, 2], &[2, 1]);
        assert_eq!(a, FilterAccuracy { precision: 1.0, recall: 1.0, f1: 1.0 });
    }

    #[test]
    fn filter_accuracy_partial_overlap() {
        let a = filter_accuracy(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((a.precision - 0.5).abs() < 1e-12);
        assert!((a.recall - 2.0 / 3.0).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0);
        assert!((a.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn filter_accuracy_empty_cases() {
        assert_eq!(filter_accuracy(&[], &[]).f1, 1.0);
        assert_eq!(filter_accuracy(&[], &[1]).recall, 0.0);
        assert_eq!(filter_accuracy(&[1], &[]).precision, 0.0);
    }

    #[test]
    fn definition6_checks_both_sides() {
        let scores = vec![(0, 2.0), (1, 1.0), (2, 0.2)];
        // η=1.0, ε=0.2: attr 0 (≥1.2) mandatory, attr 2 (<0.8) forbidden,
        // attr 1 free.
        assert!(definition6_compliant(&[0], &scores, 1.0, 0.2));
        assert!(definition6_compliant(&[0, 1], &scores, 1.0, 0.2));
        assert!(!definition6_compliant(&[1], &scores, 1.0, 0.2)); // missing 0
        assert!(!definition6_compliant(&[0, 2], &scores, 1.0, 0.2)); // has 2
    }

    #[test]
    fn definition5_condition2_positionwise() {
        // Exact scores: attr0=4, attr1=3.9, attr2=1. ε=0.1.
        let score_of = |a: usize| [4.0, 3.9, 1.0][a];
        let desc = vec![4.0, 3.9];
        // Swapped order is fine: 3.9 >= 0.9*4.0 and 4.0 >= 0.9*3.9.
        assert!(definition5_condition2(&[1, 0], &desc, score_of, 0.1));
        // Returning attr2 first is not: 1.0 < 0.9*4.0.
        assert!(!definition5_condition2(&[2, 0], &desc, score_of, 0.1));
    }
}
