//! Table 2: dataset summaries (rows, columns) for the synthetic corpus.

use std::fmt::Write as _;

use swope_columnar::stats::summarize;
use swope_obs::Phase;

use crate::harness::{time_ms, ExpConfig, Row};

/// Generates each dataset and records its summary. `param` holds the
/// column count, `sample_size` the row count, and `millis` the generation
/// time (not part of the paper's table, but useful context).
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let profiles = swope_datagen::corpus::all(cfg.scale);
    profiles
        .iter()
        .map(|p| {
            let (ms, ds) = time_ms(|| swope_datagen::generate(p, cfg.seed));
            let s = summarize(&ds);
            Row {
                experiment: "table2".into(),
                dataset: p.name.clone(),
                algo: "datagen".into(),
                param: s.columns as f64,
                millis: ms,
                accuracy: 1.0,
                sample_size: s.rows,
                rows_scanned: s.max_support as u64,
                phase_ns: [0; Phase::COUNT],
            }
        })
        .collect()
}

/// Renders the paper's Table 2 shape (plus the scale context).
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>9} {:>12} {:>12}",
        "Dataset", "Rows", "Columns", "MaxSupport", "gen (ms)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>9} {:>12} {:>12.1}",
            r.dataset, r.sample_size, r.param as usize, r.rows_scanned, r.millis
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_four_table_rows() {
        let cfg = ExpConfig { scale: 0.0005, ..Default::default() };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].dataset, "cdc");
        assert_eq!(rows[0].param as usize, 100);
        assert_eq!(rows[2].param as usize, 179);
        let rendered = render(&rows);
        assert!(rendered.contains("cdc") && rendered.contains("enem"));
    }
}
