//! Figures 5–6: mutual-information top-k query time and accuracy.
//!
//! Paper protocol (§6.3): vary `k ∈ {1, 2, 4, 8, 10}`; for each dataset,
//! average each metric over a set of target attributes (the paper uses 20
//! random targets; the default config uses 5 for runtime — raise
//! `--targets` to match). SWOPE runs at its tuned ε = 0.5 (Figure 11).

use swope_baselines::{exact_mi_scores, mi_rank_top_k};
use swope_core::{mi_top_k_observed, SwopeConfig};
use swope_obs::{Phase, PhaseAccumulator};

use crate::figures::entropy_topk::order_desc;
use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::topk_accuracy;

/// The paper's k sweep.
pub const KS: [usize; 5] = [1, 2, 4, 8, 10];

/// SWOPE's tuned ε for MI queries (paper Figures 11–12).
pub const SWOPE_EPSILON: f64 = 0.5;

/// Runs the Figure 5/6 sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let targets = cfg.pick_targets(ds.num_attrs());

        // Per-target exact scores + one exact timing (k-independent).
        let mut per_target: Vec<(usize, Vec<usize>, f64)> = Vec::new();
        for &t in &targets {
            let (ms, scores) = time_ms(|| exact_mi_scores(&ds, t));
            let order: Vec<usize> = order_desc(&scores).into_iter().filter(|&a| a != t).collect();
            per_target.push((t, order, ms));
        }

        for &k in &KS {
            // Exact: average the (flat in k) per-target scan times.
            let exact_ms =
                per_target.iter().map(|(_, _, ms)| ms).sum::<f64>() / targets.len() as f64;
            rows.push(Row {
                experiment: "fig5".into(),
                dataset: name.clone(),
                algo: "Exact".into(),
                param: k as f64,
                millis: exact_ms,
                accuracy: 1.0,
                sample_size: ds.num_rows(),
                rows_scanned: (ds.num_rows() * (2 * ds.num_attrs() - 1)) as u64,
                phase_ns: [0; Phase::COUNT],
            });

            for (algo, eps) in [("EntropyRank", None), ("SWOPE", Some(SWOPE_EPSILON))] {
                let mut ms_sum = 0.0;
                let mut acc_sum = 0.0;
                let mut sample_sum = 0usize;
                let mut scanned_sum = 0u64;
                // Accumulates across targets; stays all-zero for the
                // baseline branch.
                let mut phases = PhaseAccumulator::new();
                for (t, exact_order, _) in &per_target {
                    let qcfg = match eps {
                        Some(e) => SwopeConfig::with_epsilon(e),
                        None => SwopeConfig::default(),
                    }
                    .with_seed(cfg.seed ^ (k as u64) << 8 ^ *t as u64);
                    let (ms, res) = time_ms(|| match eps {
                        Some(_) => mi_top_k_observed(&ds, *t, k, &qcfg, &mut phases).unwrap(),
                        None => mi_rank_top_k(&ds, *t, k, &qcfg).unwrap(),
                    });
                    ms_sum += ms;
                    acc_sum += topk_accuracy(
                        &res.attr_indices(),
                        &exact_order[..k.min(exact_order.len())],
                    );
                    sample_sum += res.stats.sample_size;
                    scanned_sum += res.stats.rows_scanned;
                }
                let n_t = targets.len() as f64;
                rows.push(Row {
                    experiment: "fig5".into(),
                    dataset: name.clone(),
                    algo: algo.into(),
                    param: k as f64,
                    millis: ms_sum / n_t,
                    accuracy: acc_sum / n_t,
                    sample_size: sample_sum / targets.len(),
                    rows_scanned: scanned_sum / targets.len() as u64,
                    phase_ns: phases.nanos.map(|n| n / targets.len() as u64),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = ExpConfig { scale: 0.001, mi_targets: 2, ..Default::default() };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4 * KS.len() * 3);
        for r in &rows {
            assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0, "{r:?}");
        }
        // EntropyRank answers are exact: accuracy 1 (up to p_f).
        assert!(
            rows.iter().filter(|r| r.algo == "EntropyRank").all(|r| r.accuracy > 0.999),
            "rank should be exact"
        );
    }
}
