//! One runner per paper experiment (Table 2, Figures 1–12).
//!
//! Time and accuracy figures that share runs are produced by a single
//! runner: the paper's Figure 1 (time) and Figure 2 (accuracy) come from
//! the same set of queries, so `entropy_topk::run` measures both and the
//! dispatcher emits whichever view was requested.

pub mod ablations;
pub mod entropy_filter;
pub mod entropy_topk;
pub mod mi_filter;
pub mod mi_topk;
pub mod table2;
pub mod tuning;

use crate::harness::{ExpConfig, Row};
use crate::report;

/// The paper's experiments, deduplicated by underlying run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 2: dataset summary.
    Table2,
    /// Figures 1–2: entropy top-k time and accuracy.
    EntropyTopk,
    /// Figures 3–4: entropy filtering time and accuracy.
    EntropyFilter,
    /// Figures 5–6: MI top-k time and accuracy.
    MiTopk,
    /// Figures 7–8: MI filtering time and accuracy.
    MiFilter,
    /// Figure 9: tuning ε, entropy top-k (k = 4).
    TuneEntropyTopk,
    /// Figure 10: tuning ε, entropy filtering (η = 2).
    TuneEntropyFilter,
    /// Figure 11: tuning ε, MI top-k (k = 4).
    TuneMiTopk,
    /// Figure 12: tuning ε, MI filtering (η = 0.3).
    TuneMiFilter,
    /// Ablation: row vs page sampling (DESIGN.md choice 4).
    ExtSampling,
    /// Ablation: parallel per-attribute scaling (DESIGN.md choice 5).
    ExtThreads,
    /// Ablation: SWOPE vs naive one-shot sampling at equal budgets.
    ExtOneshot,
    /// Ablation: initial-sample-size (M0) sensitivity.
    ExtM0,
    /// Ablation: page sampling on physically clustered (sorted) data.
    ExtLocality,
}

impl Experiment {
    /// All experiments, in paper order, followed by the ablations.
    pub const ALL: [Experiment; 14] = [
        Experiment::Table2,
        Experiment::EntropyTopk,
        Experiment::EntropyFilter,
        Experiment::MiTopk,
        Experiment::MiFilter,
        Experiment::TuneEntropyTopk,
        Experiment::TuneEntropyFilter,
        Experiment::TuneMiTopk,
        Experiment::TuneMiFilter,
        Experiment::ExtSampling,
        Experiment::ExtThreads,
        Experiment::ExtOneshot,
        Experiment::ExtM0,
        Experiment::ExtLocality,
    ];

    /// Parses a CLI experiment id (`table2`, `fig1` … `fig12`).
    pub fn parse(id: &str) -> Option<Experiment> {
        Some(match id {
            "table2" => Experiment::Table2,
            "fig1" | "fig2" => Experiment::EntropyTopk,
            "fig3" | "fig4" => Experiment::EntropyFilter,
            "fig5" | "fig6" => Experiment::MiTopk,
            "fig7" | "fig8" => Experiment::MiFilter,
            "fig9" => Experiment::TuneEntropyTopk,
            "fig10" => Experiment::TuneEntropyFilter,
            "fig11" => Experiment::TuneMiTopk,
            "fig12" => Experiment::TuneMiFilter,
            "ext-sampling" => Experiment::ExtSampling,
            "ext-threads" => Experiment::ExtThreads,
            "ext-oneshot" => Experiment::ExtOneshot,
            "ext-m0" => Experiment::ExtM0,
            "ext-locality" => Experiment::ExtLocality,
            _ => return None,
        })
    }

    /// The figure/table ids this experiment's rows reproduce.
    pub fn figure_ids(&self) -> &'static [&'static str] {
        match self {
            Experiment::Table2 => &["table2"],
            Experiment::EntropyTopk => &["fig1", "fig2"],
            Experiment::EntropyFilter => &["fig3", "fig4"],
            Experiment::MiTopk => &["fig5", "fig6"],
            Experiment::MiFilter => &["fig7", "fig8"],
            Experiment::TuneEntropyTopk => &["fig9"],
            Experiment::TuneEntropyFilter => &["fig10"],
            Experiment::TuneMiTopk => &["fig11"],
            Experiment::TuneMiFilter => &["fig12"],
            Experiment::ExtSampling => &["ext-sampling"],
            Experiment::ExtThreads => &["ext-threads"],
            Experiment::ExtOneshot => &["ext-oneshot"],
            Experiment::ExtM0 => &["ext-m0"],
            Experiment::ExtLocality => &["ext-locality"],
        }
    }

    /// The swept parameter's name, for table headers.
    pub fn param_name(&self) -> &'static str {
        match self {
            Experiment::Table2 => "columns",
            Experiment::EntropyTopk | Experiment::MiTopk => "k",
            Experiment::EntropyFilter | Experiment::MiFilter => "eta",
            Experiment::ExtSampling => "page_rows",
            Experiment::ExtThreads => "threads",
            Experiment::ExtOneshot => "budget",
            Experiment::ExtM0 => "m0_mult",
            Experiment::ExtLocality => "run_len",
            _ => "epsilon",
        }
    }

    /// Runs the experiment, returning one row per measured cell.
    pub fn run(&self, cfg: &ExpConfig) -> Vec<Row> {
        match self {
            Experiment::Table2 => table2::run(cfg),
            Experiment::EntropyTopk => entropy_topk::run(cfg),
            Experiment::EntropyFilter => entropy_filter::run(cfg),
            Experiment::MiTopk => mi_topk::run(cfg),
            Experiment::MiFilter => mi_filter::run(cfg),
            Experiment::TuneEntropyTopk => tuning::run_entropy_topk(cfg),
            Experiment::TuneEntropyFilter => tuning::run_entropy_filter(cfg),
            Experiment::TuneMiTopk => tuning::run_mi_topk(cfg),
            Experiment::TuneMiFilter => tuning::run_mi_filter(cfg),
            Experiment::ExtSampling => ablations::run_sampling(cfg),
            Experiment::ExtThreads => ablations::run_threads(cfg),
            Experiment::ExtOneshot => ablations::run_oneshot(cfg),
            Experiment::ExtM0 => ablations::run_m0(cfg),
            Experiment::ExtLocality => ablations::run_locality(cfg),
        }
    }

    /// Prints the paper-style tables and writes per-figure CSV and JSON
    /// reports (the JSON carries the per-phase timing breakdown).
    pub fn report(&self, rows: &[Row], cfg: &ExpConfig) -> std::io::Result<()> {
        let ids = self.figure_ids();
        // Time view (first id) and accuracy view (second id, if any).
        println!("=== {} ===", ids.join(" + "));
        if *self == Experiment::Table2 {
            println!("{}", table2::render(rows));
        } else {
            println!(
                "{}",
                report::series_table(rows, |r| r.millis, "query time (ms)", self.param_name())
            );
            println!(
                "{}",
                report::series_table(rows, |r| r.accuracy, "accuracy", self.param_name())
            );
        }
        for id in ids {
            let mut renamed: Vec<Row> = rows.to_vec();
            for r in &mut renamed {
                r.experiment = id.to_string();
            }
            report::write_csv(&renamed, &cfg.out_dir, id)?;
            report::write_json(&renamed, &cfg.out_dir, id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_all_ids() {
        for id in ["table2", "fig1", "fig2", "fig5", "fig9", "fig12"] {
            assert!(Experiment::parse(id).is_some(), "{id}");
        }
        assert!(Experiment::parse("fig13").is_none());
        assert!(Experiment::parse("").is_none());
    }

    #[test]
    fn figure_ids_cover_every_paper_figure() {
        let mut ids: Vec<&str> = Experiment::ALL
            .iter()
            .flat_map(|e| e.figure_ids().iter().copied())
            .filter(|id| !id.starts_with("ext-"))
            .collect();
        ids.sort_unstable();
        let mut expected = vec![
            "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12",
        ];
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn ext_ids_parse() {
        for id in ["ext-sampling", "ext-threads", "ext-oneshot", "ext-m0", "ext-locality"] {
            assert!(Experiment::parse(id).is_some(), "{id}");
        }
    }

    #[test]
    fn fig_pairs_map_to_same_experiment() {
        assert_eq!(Experiment::parse("fig1"), Experiment::parse("fig2"));
        assert_eq!(Experiment::parse("fig7"), Experiment::parse("fig8"));
        assert_ne!(Experiment::parse("fig1"), Experiment::parse("fig3"));
    }
}
