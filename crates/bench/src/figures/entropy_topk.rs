//! Figures 1–2: entropy top-k query time and accuracy.
//!
//! Paper protocol (§6.2): vary `k ∈ {1, 2, 4, 8, 10}` on all four
//! datasets; compare SWOPE (ε = 0.1, its tuned default from Figure 9)
//! against EntropyRank and Exact. Figure 1 reports query time, Figure 2
//! the accuracy vs the exact top-k.

use swope_baselines::{entropy_rank_top_k, exact_entropy_scores};
use swope_core::{entropy_top_k_observed, SwopeConfig};
use swope_obs::{Phase, PhaseAccumulator};

use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::topk_accuracy;

/// The paper's k sweep.
pub const KS: [usize; 5] = [1, 2, 4, 8, 10];

/// SWOPE's tuned ε for entropy top-k (paper §6.1/Figure 9).
pub const SWOPE_EPSILON: f64 = 0.1;

/// Runs the Figure 1/2 sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let scores = exact_entropy_scores(&ds);
        let exact_order = order_desc(&scores);
        // Exact cost is k-independent; measure once and report flat.
        let (exact_ms, _) = time_ms(|| exact_entropy_scores(&ds));

        for &k in &KS {
            let exact_topk = &exact_order[..k.min(exact_order.len())];

            rows.push(Row {
                experiment: "fig1".into(),
                dataset: name.clone(),
                algo: "Exact".into(),
                param: k as f64,
                millis: exact_ms,
                accuracy: 1.0,
                sample_size: ds.num_rows(),
                rows_scanned: (ds.num_rows() * ds.num_attrs()) as u64,
                phase_ns: [0; Phase::COUNT],
            });

            let rank_cfg = SwopeConfig::default().with_seed(cfg.seed ^ k as u64);
            let (ms, res) = time_ms(|| entropy_rank_top_k(&ds, k, &rank_cfg).unwrap());
            rows.push(Row {
                experiment: "fig1".into(),
                dataset: name.clone(),
                algo: "EntropyRank".into(),
                param: k as f64,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });

            let swope_cfg = SwopeConfig::with_epsilon(SWOPE_EPSILON).with_seed(cfg.seed ^ k as u64);
            let mut phases = PhaseAccumulator::new();
            let (ms, res) =
                time_ms(|| entropy_top_k_observed(&ds, k, &swope_cfg, &mut phases).unwrap());
            rows.push(Row {
                experiment: "fig1".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: k as f64,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: phases.nanos,
            });
        }
    }
    rows
}

pub(crate) fn order_desc(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_baselines::exact_entropy_top_k as exact_topk_query;

    #[test]
    fn sweep_produces_full_grid_and_sane_accuracy() {
        // Small scale so the test is fast; one dataset would do but the
        // grid shape matters.
        let cfg = ExpConfig { scale: 0.002, ..Default::default() };
        let rows = run(&cfg);
        // 4 datasets x 5 k x 3 algorithms.
        assert_eq!(rows.len(), 4 * 5 * 3);
        for r in &rows {
            assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
            assert!(r.millis >= 0.0);
        }
        // Exact rows are always accuracy 1.
        assert!(rows.iter().filter(|r| r.algo == "Exact").all(|r| r.accuracy == 1.0));
        // SWOPE at ε=0.1 should be highly accurate.
        let swope_acc: Vec<f64> =
            rows.iter().filter(|r| r.algo == "SWOPE").map(|r| r.accuracy).collect();
        let mean = swope_acc.iter().sum::<f64>() / swope_acc.len() as f64;
        assert!(mean > 0.8, "mean SWOPE accuracy {mean}");
    }

    #[test]
    fn order_desc_sorts() {
        assert_eq!(order_desc(&[1.0, 3.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn exact_query_agrees_with_order() {
        let cfg = ExpConfig { scale: 0.001, ..Default::default() };
        let (_, ds) = cfg.datasets().remove(0);
        let scores = exact_entropy_scores(&ds);
        let order = order_desc(&scores);
        let res = exact_topk_query(&ds, 3).unwrap();
        assert_eq!(res.attr_indices(), order[..3].to_vec());
    }
}
