//! Ablation experiments for the design choices called out in DESIGN.md.
//! These go beyond the paper's figures; ids are prefixed `ext-`.

use swope_baselines::{exact_entropy_scores, oneshot_entropy_top_k};
use swope_core::{entropy_top_k, mi_top_k, SamplingStrategy, SwopeConfig};
use swope_datagen::generate_with_locality;

use swope_obs::Phase;

use crate::figures::entropy_topk::order_desc;
use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::topk_accuracy;

/// `ext-sampling`: row-level vs page-level sampling, end-to-end entropy
/// top-k (k = 4, ε = 0.1). `param` is the page size in rows (0 = row
/// sampling). Page sampling trades per-row randomness for sequential
/// access; accuracy should hold while time drops on large scans.
pub fn run_sampling(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let exact_order = order_desc(&exact_entropy_scores(&ds));
        let exact_topk = &exact_order[..4.min(exact_order.len())];
        for page_rows in [0usize, 256, 1024, 4096] {
            let mut qcfg = SwopeConfig::with_epsilon(0.1);
            qcfg.sampling = if page_rows == 0 {
                SamplingStrategy::Row { seed: cfg.seed }
            } else {
                SamplingStrategy::Page { page_rows, seed: cfg.seed }
            };
            let (ms, res) = time_ms(|| entropy_top_k(&ds, 4, &qcfg).unwrap());
            rows.push(Row {
                experiment: "ext-sampling".into(),
                dataset: name.clone(),
                algo: if page_rows == 0 { "row".into() } else { format!("page{page_rows}") },
                param: page_rows as f64,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// `ext-threads`: parallel per-attribute evaluation scaling, entropy and
/// MI top-k (k = 4). `param` is the thread count.
pub fn run_threads(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        for threads in [1usize, 2, 4, 8] {
            let qcfg = SwopeConfig::with_epsilon(0.1).with_seed(cfg.seed).with_threads(threads);
            let (ms, res) = time_ms(|| entropy_top_k(&ds, 4, &qcfg).unwrap());
            rows.push(Row {
                experiment: "ext-threads".into(),
                dataset: name.clone(),
                algo: "SWOPE-entropy".into(),
                param: threads as f64,
                millis: ms,
                accuracy: 1.0,
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
            let mi_cfg = SwopeConfig::with_epsilon(0.5).with_seed(cfg.seed).with_threads(threads);
            let (ms, res) = time_ms(|| mi_top_k(&ds, 0, 4, &mi_cfg).unwrap());
            rows.push(Row {
                experiment: "ext-threads".into(),
                dataset: name.clone(),
                algo: "SWOPE-mi".into(),
                param: threads as f64,
                millis: ms,
                accuracy: 1.0,
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// `ext-oneshot`: guarantee vs none at equal budget. SWOPE (k = 4,
/// ε = 0.1) sets the reference sample size S; OneShot then answers from
/// single samples of S, S/4, and S/16 rows. `param` is the budget as a
/// fraction of S. SWOPE certifies its answer; OneShot's accuracy decays
/// silently as the budget shrinks.
pub fn run_oneshot(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let exact_order = order_desc(&exact_entropy_scores(&ds));
        let exact_topk = &exact_order[..4.min(exact_order.len())];

        let qcfg = SwopeConfig::with_epsilon(0.1).with_seed(cfg.seed);
        let (ms, swope) = time_ms(|| entropy_top_k(&ds, 4, &qcfg).unwrap());
        let budget = swope.stats.sample_size;
        rows.push(Row {
            experiment: "ext-oneshot".into(),
            dataset: name.clone(),
            algo: "SWOPE".into(),
            param: 1.0,
            millis: ms,
            accuracy: topk_accuracy(&swope.attr_indices(), exact_topk),
            sample_size: budget,
            rows_scanned: swope.stats.rows_scanned,
            phase_ns: [0; Phase::COUNT],
        });

        for (frac, div) in [(1.0, 1usize), (0.25, 4), (0.0625, 16)] {
            let m = (budget / div).max(1);
            let (ms, res) = time_ms(|| oneshot_entropy_top_k(&ds, 4, m, cfg.seed).unwrap());
            rows.push(Row {
                experiment: "ext-oneshot".into(),
                dataset: name.clone(),
                algo: "OneShot".into(),
                param: frac,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// `ext-locality`: page sampling on physically clustered data.
///
/// The §6.1 page optimization assumes rows within a page are roughly as
/// informative as random rows. On data sorted/bulk-loaded by a latent
/// key, whole-page samples are redundant: page sampling keeps its speed,
/// but the confidence intervals — whose math (Lemma 2) assumes row-level
/// exchangeability — can become *invalid*. `param` is the latent run
/// length (1 = i.i.d.); `algo` distinguishes `row` vs `page4096`
/// sampling. The `accuracy` column here is **interval coverage**: over
/// multiple seeds, the fraction of profiled attributes whose exact
/// entropy lies inside the reported `[H̲, H̄]`. Row sampling must stay at
/// 1.0; page sampling degrades as runs approach the page size.
pub fn run_locality(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    const SEEDS: u64 = 8;
    for run_len in [1usize, 512, 4096] {
        let profile = swope_datagen::corpus::tiny(200_000, 20);
        let ds = generate_with_locality(&profile, cfg.seed, run_len);
        let exact = exact_entropy_scores(&ds);
        for (algo, page_rows) in [("row", 0usize), ("page4096", 4096)] {
            let mut covered = 0usize;
            let mut total = 0usize;
            let mut ms_sum = 0.0;
            let mut sample_sum = 0usize;
            let mut scanned_sum = 0u64;
            for s in 0..SEEDS {
                let mut qcfg = SwopeConfig::with_epsilon(0.1).with_seed(cfg.seed ^ s);
                qcfg.sampling = if page_rows == 0 {
                    SamplingStrategy::Row { seed: cfg.seed ^ s }
                } else {
                    SamplingStrategy::Page { page_rows, seed: cfg.seed ^ s }
                };
                let (ms, res) = time_ms(|| swope_core::entropy_profile(&ds, 0.05, &qcfg).unwrap());
                ms_sum += ms;
                sample_sum += res.stats.sample_size;
                scanned_sum += res.stats.rows_scanned;
                for score in &res.scores {
                    total += 1;
                    let truth = exact[score.attr];
                    if score.lower - 1e-9 <= truth && truth <= score.upper + 1e-9 {
                        covered += 1;
                    }
                }
            }
            rows.push(Row {
                experiment: "ext-locality".into(),
                dataset: format!("runlen{run_len}"),
                algo: algo.into(),
                param: run_len as f64,
                millis: ms_sum / SEEDS as f64,
                accuracy: covered as f64 / total.max(1) as f64,
                sample_size: sample_sum / SEEDS as usize,
                rows_scanned: scanned_sum / SEEDS,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// `ext-m0`: sensitivity to the initial sample size. `param` multiplies
/// the paper's `M0`; too small wastes iterations on useless bounds, too
/// large overshoots the stopping point. The paper's choice should sit
/// near the flat bottom.
pub fn run_m0(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let exact_order = order_desc(&exact_entropy_scores(&ds));
        let exact_topk = &exact_order[..4.min(exact_order.len())];
        // The paper's M0 for this dataset.
        let base_cfg = SwopeConfig::with_epsilon(0.1);
        let p_f = base_cfg.resolve_p_f(&ds);
        let m0 = base_cfg.resolve_m0(&ds, p_f);
        for mult in [0.25f64, 1.0, 4.0, 16.0] {
            let mut qcfg = SwopeConfig::with_epsilon(0.1).with_seed(cfg.seed);
            qcfg.initial_sample = Some(((m0 as f64 * mult) as usize).max(2));
            let (ms, res) = time_ms(|| entropy_top_k(&ds, 4, &qcfg).unwrap());
            rows.push(Row {
                experiment: "ext-m0".into(),
                dataset: name.clone(),
                algo: format!("M0x{mult}"),
                param: mult,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExpConfig {
        ExpConfig { scale: 0.001, mi_targets: 2, ..Default::default() }
    }

    #[test]
    fn sampling_ablation_grid_and_accuracy() {
        let rows = run_sampling(&small_cfg());
        assert_eq!(rows.len(), 4 * 4);
        // Page sampling must not wreck accuracy on this corpus.
        let mean: f64 = rows.iter().map(|r| r.accuracy).sum::<f64>() / rows.len() as f64;
        assert!(mean > 0.8, "mean accuracy {mean}");
    }

    #[test]
    fn threads_ablation_grid() {
        let rows = run_threads(&small_cfg());
        assert_eq!(rows.len(), 4 * 4 * 2);
        // Thread count must not change the amount of sampling work.
        for ds in ["cdc", "hus", "pus", "enem"] {
            let work: Vec<u64> = rows
                .iter()
                .filter(|r| r.dataset == ds && r.algo == "SWOPE-entropy")
                .map(|r| r.rows_scanned)
                .collect();
            assert!(work.windows(2).all(|w| w[0] == w[1]), "{ds}: {work:?}");
        }
    }

    #[test]
    fn oneshot_ablation_grid() {
        let rows = run_oneshot(&small_cfg());
        assert_eq!(rows.len(), 4 * 4);
        // SWOPE rows must be perfectly accurate at ε=0.1 on this corpus.
        assert!(rows.iter().filter(|r| r.algo == "SWOPE").all(|r| r.accuracy > 0.74));
    }

    #[test]
    fn locality_ablation_row_sampling_always_covers() {
        let rows = run_locality(&small_cfg());
        assert_eq!(rows.len(), 3 * 2);
        // Row sampling's intervals must be valid regardless of row order
        // (the permutation model does not care about physical layout).
        for r in rows.iter().filter(|r| r.algo == "row") {
            assert!(r.accuracy > 0.99, "{r:?}");
        }
        // Page sampling on i.i.d. data is fine too.
        let iid_page = rows.iter().find(|r| r.algo == "page4096" && r.param == 1.0).unwrap();
        assert!(iid_page.accuracy > 0.99, "{iid_page:?}");
    }

    #[test]
    fn m0_ablation_grid() {
        let rows = run_m0(&small_cfg());
        assert_eq!(rows.len(), 4 * 4);
        for r in &rows {
            assert!(r.sample_size > 0);
        }
    }
}
