//! Figures 7–8: mutual-information filtering query time and accuracy.
//!
//! Paper protocol (§6.3): vary `η ∈ {0.1, 0.2, 0.3, 0.4, 0.5}` (MI scores
//! are smaller than entropy scores, hence the lower thresholds); average
//! over target attributes; SWOPE at tuned ε = 0.5.

use swope_baselines::{exact_mi_scores, mi_filter_exact_sampling};
use swope_core::{mi_filter_observed, SwopeConfig};
use swope_obs::{Phase, PhaseAccumulator};

use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::filter_accuracy;

/// The paper's η sweep for MI filtering.
pub const ETAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// SWOPE's tuned ε for MI queries (paper Figure 12).
pub const SWOPE_EPSILON: f64 = 0.5;

/// Runs the Figure 7/8 sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let targets = cfg.pick_targets(ds.num_attrs());
        let mut per_target: Vec<(usize, Vec<f64>, f64)> = Vec::new();
        for &t in &targets {
            let (ms, scores) = time_ms(|| exact_mi_scores(&ds, t));
            per_target.push((t, scores, ms));
        }

        for &eta in &ETAS {
            let exact_ms =
                per_target.iter().map(|(_, _, ms)| ms).sum::<f64>() / targets.len() as f64;
            rows.push(Row {
                experiment: "fig7".into(),
                dataset: name.clone(),
                algo: "Exact".into(),
                param: eta,
                millis: exact_ms,
                accuracy: 1.0,
                sample_size: ds.num_rows(),
                rows_scanned: (ds.num_rows() * (2 * ds.num_attrs() - 1)) as u64,
                phase_ns: [0; Phase::COUNT],
            });

            for (algo, eps) in [("EntropyFilter", None), ("SWOPE", Some(SWOPE_EPSILON))] {
                let mut ms_sum = 0.0;
                let mut acc_sum = 0.0;
                let mut sample_sum = 0usize;
                let mut scanned_sum = 0u64;
                // Accumulates across targets; stays all-zero for the
                // baseline branch.
                let mut phases = PhaseAccumulator::new();
                for (t, scores, _) in &per_target {
                    let exact_answer: Vec<usize> =
                        (0..ds.num_attrs()).filter(|&a| a != *t && scores[a] >= eta).collect();
                    let qcfg = match eps {
                        Some(e) => SwopeConfig::with_epsilon(e),
                        None => SwopeConfig::default(),
                    }
                    .with_seed(cfg.seed ^ eta.to_bits() ^ *t as u64);
                    let (ms, res) = time_ms(|| match eps {
                        Some(_) => mi_filter_observed(&ds, *t, eta, &qcfg, &mut phases).unwrap(),
                        None => mi_filter_exact_sampling(&ds, *t, eta, &qcfg).unwrap(),
                    });
                    ms_sum += ms;
                    acc_sum += filter_accuracy(&res.attr_indices(), &exact_answer).f1;
                    sample_sum += res.stats.sample_size;
                    scanned_sum += res.stats.rows_scanned;
                }
                let n_t = targets.len() as f64;
                rows.push(Row {
                    experiment: "fig7".into(),
                    dataset: name.clone(),
                    algo: algo.into(),
                    param: eta,
                    millis: ms_sum / n_t,
                    accuracy: acc_sum / n_t,
                    sample_size: sample_sum / targets.len(),
                    rows_scanned: scanned_sum / targets.len() as u64,
                    phase_ns: phases.nanos.map(|n| n / targets.len() as u64),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = ExpConfig { scale: 0.001, mi_targets: 2, ..Default::default() };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4 * ETAS.len() * 3);
        // EntropyFilter is exact up to p_f.
        assert!(rows.iter().filter(|r| r.algo == "EntropyFilter").all(|r| r.accuracy > 0.999));
        // SWOPE at ε=0.5 should still track well (paper: 100%).
        let swope_acc: Vec<f64> =
            rows.iter().filter(|r| r.algo == "SWOPE").map(|r| r.accuracy).collect();
        let mean = swope_acc.iter().sum::<f64>() / swope_acc.len() as f64;
        assert!(mean > 0.7, "mean SWOPE MI filtering F1 {mean}");
    }
}
