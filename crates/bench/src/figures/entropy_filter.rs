//! Figures 3–4: entropy filtering query time and accuracy.
//!
//! Paper protocol (§6.2): vary `η ∈ {0.5, 1, 1.5, 2, 2.5, 3}` on all four
//! datasets; compare SWOPE (ε = 0.05, tuned via Figure 10) against
//! EntropyFilter and Exact.

use swope_baselines::{entropy_filter_exact_sampling, exact_entropy_scores};
use swope_core::{entropy_filter_observed, SwopeConfig};
use swope_obs::{Phase, PhaseAccumulator};

use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::filter_accuracy;

/// The paper's η sweep for entropy filtering.
pub const ETAS: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];

/// SWOPE's tuned ε for entropy filtering (paper Figure 10).
pub const SWOPE_EPSILON: f64 = 0.05;

/// Runs the Figure 3/4 sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let scores = exact_entropy_scores(&ds);
        let (exact_ms, _) = time_ms(|| exact_entropy_scores(&ds));

        for &eta in &ETAS {
            let exact_answer: Vec<usize> =
                scores.iter().enumerate().filter(|&(_, &s)| s >= eta).map(|(a, _)| a).collect();

            rows.push(Row {
                experiment: "fig3".into(),
                dataset: name.clone(),
                algo: "Exact".into(),
                param: eta,
                millis: exact_ms,
                accuracy: 1.0,
                sample_size: ds.num_rows(),
                rows_scanned: (ds.num_rows() * ds.num_attrs()) as u64,
                phase_ns: [0; Phase::COUNT],
            });

            let base_cfg = SwopeConfig::default().with_seed(cfg.seed ^ eta.to_bits());
            let (ms, res) = time_ms(|| entropy_filter_exact_sampling(&ds, eta, &base_cfg).unwrap());
            rows.push(Row {
                experiment: "fig3".into(),
                dataset: name.clone(),
                algo: "EntropyFilter".into(),
                param: eta,
                millis: ms,
                accuracy: filter_accuracy(&res.attr_indices(), &exact_answer).f1,
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });

            let swope_cfg =
                SwopeConfig::with_epsilon(SWOPE_EPSILON).with_seed(cfg.seed ^ eta.to_bits());
            let mut phases = PhaseAccumulator::new();
            let (ms, res) =
                time_ms(|| entropy_filter_observed(&ds, eta, &swope_cfg, &mut phases).unwrap());
            rows.push(Row {
                experiment: "fig3".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: eta,
                millis: ms,
                accuracy: filter_accuracy(&res.attr_indices(), &exact_answer).f1,
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: phases.nanos,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = ExpConfig { scale: 0.002, ..Default::default() };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4 * ETAS.len() * 3);
        // SWOPE at ε=0.05 should track the exact answer closely.
        let swope_acc: Vec<f64> =
            rows.iter().filter(|r| r.algo == "SWOPE").map(|r| r.accuracy).collect();
        let mean = swope_acc.iter().sum::<f64>() / swope_acc.len() as f64;
        assert!(mean > 0.85, "mean SWOPE filtering F1 {mean}");
        // EntropyFilter is exact (up to p_f): expect F1 == 1 everywhere.
        assert!(rows.iter().filter(|r| r.algo == "EntropyFilter").all(|r| r.accuracy > 0.999));
    }
}
