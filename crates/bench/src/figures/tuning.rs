//! Figures 9–12: tuning ε — the accuracy/efficiency trade-off.
//!
//! Paper protocol (§6.4): sweep `ε ∈ {0.01, 0.025, 0.05, 0.1, 0.25, 0.5}`
//! with fixed query parameters — entropy top-k at `k = 4` (Fig. 9),
//! entropy filtering at `η = 2` (Fig. 10), MI top-k at `k = 4` (Fig. 11),
//! MI filtering at `η = 0.3` (Fig. 12). Only SWOPE runs; each figure
//! reports both time (a) and accuracy (b).

use swope_baselines::{exact_entropy_scores, exact_mi_scores};
use swope_core::{entropy_filter, entropy_top_k, mi_filter, mi_top_k, SwopeConfig};

use swope_obs::Phase;

use crate::figures::entropy_topk::order_desc;
use crate::harness::{time_ms, ExpConfig, Row};
use crate::metrics::{filter_accuracy, topk_accuracy};

/// The paper's ε sweep.
pub const EPSILONS: [f64; 6] = [0.01, 0.025, 0.05, 0.1, 0.25, 0.5];

/// Fixed k for the top-k tuning figures.
pub const TUNE_K: usize = 4;

/// Fixed η for entropy filtering tuning (Figure 10).
pub const TUNE_ETA_ENTROPY: f64 = 2.0;

/// Fixed η for MI filtering tuning (Figure 12).
pub const TUNE_ETA_MI: f64 = 0.3;

/// Figure 9: entropy top-k (k = 4) across ε.
pub fn run_entropy_topk(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let exact_order = order_desc(&exact_entropy_scores(&ds));
        let exact_topk = &exact_order[..TUNE_K.min(exact_order.len())];
        for &eps in &EPSILONS {
            let qcfg = SwopeConfig::with_epsilon(eps).with_seed(cfg.seed ^ eps.to_bits());
            let (ms, res) = time_ms(|| entropy_top_k(&ds, TUNE_K, &qcfg).unwrap());
            rows.push(Row {
                experiment: "fig9".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: eps,
                millis: ms,
                accuracy: topk_accuracy(&res.attr_indices(), exact_topk),
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// Figure 10: entropy filtering (η = 2) across ε.
pub fn run_entropy_filter(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let scores = exact_entropy_scores(&ds);
        let exact_answer: Vec<usize> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= TUNE_ETA_ENTROPY)
            .map(|(a, _)| a)
            .collect();
        for &eps in &EPSILONS {
            let qcfg = SwopeConfig::with_epsilon(eps).with_seed(cfg.seed ^ eps.to_bits());
            let (ms, res) = time_ms(|| entropy_filter(&ds, TUNE_ETA_ENTROPY, &qcfg).unwrap());
            rows.push(Row {
                experiment: "fig10".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: eps,
                millis: ms,
                accuracy: filter_accuracy(&res.attr_indices(), &exact_answer).f1,
                sample_size: res.stats.sample_size,
                rows_scanned: res.stats.rows_scanned,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// Figure 11: MI top-k (k = 4) across ε, averaged over targets.
pub fn run_mi_topk(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let targets = cfg.pick_targets(ds.num_attrs());
        let per_target: Vec<(usize, Vec<usize>)> = targets
            .iter()
            .map(|&t| {
                let order: Vec<usize> =
                    order_desc(&exact_mi_scores(&ds, t)).into_iter().filter(|&a| a != t).collect();
                (t, order)
            })
            .collect();
        for &eps in &EPSILONS {
            let mut ms_sum = 0.0;
            let mut acc_sum = 0.0;
            let mut sample_sum = 0usize;
            let mut scanned_sum = 0u64;
            for (t, exact_order) in &per_target {
                let qcfg =
                    SwopeConfig::with_epsilon(eps).with_seed(cfg.seed ^ eps.to_bits() ^ *t as u64);
                let (ms, res) = time_ms(|| mi_top_k(&ds, *t, TUNE_K, &qcfg).unwrap());
                ms_sum += ms;
                acc_sum += topk_accuracy(
                    &res.attr_indices(),
                    &exact_order[..TUNE_K.min(exact_order.len())],
                );
                sample_sum += res.stats.sample_size;
                scanned_sum += res.stats.rows_scanned;
            }
            let n_t = targets.len() as f64;
            rows.push(Row {
                experiment: "fig11".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: eps,
                millis: ms_sum / n_t,
                accuracy: acc_sum / n_t,
                sample_size: sample_sum / targets.len(),
                rows_scanned: scanned_sum / targets.len() as u64,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

/// Figure 12: MI filtering (η = 0.3) across ε, averaged over targets.
pub fn run_mi_filter(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, ds) in cfg.datasets() {
        let targets = cfg.pick_targets(ds.num_attrs());
        let per_target: Vec<(usize, Vec<usize>)> = targets
            .iter()
            .map(|&t| {
                let scores = exact_mi_scores(&ds, t);
                let answer: Vec<usize> =
                    (0..ds.num_attrs()).filter(|&a| a != t && scores[a] >= TUNE_ETA_MI).collect();
                (t, answer)
            })
            .collect();
        for &eps in &EPSILONS {
            let mut ms_sum = 0.0;
            let mut acc_sum = 0.0;
            let mut sample_sum = 0usize;
            let mut scanned_sum = 0u64;
            for (t, exact_answer) in &per_target {
                let qcfg =
                    SwopeConfig::with_epsilon(eps).with_seed(cfg.seed ^ eps.to_bits() ^ *t as u64);
                let (ms, res) = time_ms(|| mi_filter(&ds, *t, TUNE_ETA_MI, &qcfg).unwrap());
                ms_sum += ms;
                acc_sum += filter_accuracy(&res.attr_indices(), exact_answer).f1;
                sample_sum += res.stats.sample_size;
                scanned_sum += res.stats.rows_scanned;
            }
            let n_t = targets.len() as f64;
            rows.push(Row {
                experiment: "fig12".into(),
                dataset: name.clone(),
                algo: "SWOPE".into(),
                param: eps,
                millis: ms_sum / n_t,
                accuracy: acc_sum / n_t,
                sample_size: sample_sum / targets.len(),
                rows_scanned: scanned_sum / targets.len() as u64,
                phase_ns: [0; Phase::COUNT],
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExpConfig {
        ExpConfig { scale: 0.001, mi_targets: 2, ..Default::default() }
    }

    #[test]
    fn entropy_topk_time_decreases_with_epsilon() {
        let rows = run_entropy_topk(&small_cfg());
        assert_eq!(rows.len(), 4 * EPSILONS.len());
        // Sampling work (rows_scanned) should not increase as ε grows.
        for ds in ["cdc", "hus", "pus", "enem"] {
            let work: Vec<u64> = EPSILONS
                .iter()
                .map(|&e| {
                    rows.iter().find(|r| r.dataset == ds && r.param == e).unwrap().rows_scanned
                })
                .collect();
            // Different ε cells use different sampling seeds, so allow
            // small noise; the trend and the endpoints must still hold.
            for w in work.windows(2) {
                assert!(w[1] as f64 <= w[0] as f64 * 1.05, "{ds}: work increased with ε: {work:?}");
            }
            assert!(
                *work.last().unwrap() <= work[0],
                "{ds}: ε=0.5 must need no more work than ε=0.01: {work:?}"
            );
        }
    }

    #[test]
    fn entropy_filter_sweep_shape() {
        let rows = run_entropy_filter(&small_cfg());
        assert_eq!(rows.len(), 4 * EPSILONS.len());
        // Tight ε must give (near-)exact answers.
        for r in rows.iter().filter(|r| r.param <= 0.025) {
            assert!(r.accuracy > 0.95, "{r:?}");
        }
    }

    #[test]
    fn mi_sweeps_shape() {
        let rows = run_mi_topk(&small_cfg());
        assert_eq!(rows.len(), 4 * EPSILONS.len());
        let rows = run_mi_filter(&small_cfg());
        assert_eq!(rows.len(), 4 * EPSILONS.len());
    }
}
