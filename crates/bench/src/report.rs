//! CSV and console reporting for experiment rows.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use swope_obs::json::ObjectWriter;
use swope_obs::Phase;

use crate::Row;

/// Serializes rows as CSV (header + one line per row).
pub fn to_csv(rows: &[Row]) -> String {
    let mut out =
        String::from("experiment,dataset,algo,param,millis,accuracy,sample_size,rows_scanned\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4},{:.6},{},{}",
            r.experiment,
            r.dataset,
            r.algo,
            r.param,
            r.millis,
            r.accuracy,
            r.sample_size,
            r.rows_scanned
        );
    }
    out
}

/// Writes rows to `<out_dir>/<experiment>.csv`, creating the directory.
pub fn write_csv(rows: &[Row], out_dir: &Path, experiment: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{experiment}.csv"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(rows).as_bytes())
}

/// Serializes rows as a JSON array, one object per row.
///
/// Unlike the CSV (kept stable for existing plotting scripts), the JSON
/// report carries the per-phase wall-clock breakdown as `<phase>_ns`
/// fields — zeros for algorithms without an adaptive loop.
pub fn to_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(if i == 0 { "\n  " } else { ",\n  " });
        let mut w = ObjectWriter::new();
        w.str_field("experiment", &r.experiment)
            .str_field("dataset", &r.dataset)
            .str_field("algo", &r.algo)
            .f64_field("param", r.param)
            .f64_field("millis", r.millis)
            .f64_field("accuracy", r.accuracy)
            .usize_field("sample_size", r.sample_size)
            .u64_field("rows_scanned", r.rows_scanned);
        for p in Phase::ALL {
            w.u64_field(&format!("{}_ns", p.name()), r.phase_ns[p.index()]);
        }
        out.push_str(&w.finish());
    }
    out.push_str("\n]\n");
    out
}

/// Writes rows to `<out_dir>/<experiment>.json`, creating the directory.
pub fn write_json(rows: &[Row], out_dir: &Path, experiment: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{experiment}.json"));
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(rows).as_bytes())
}

/// Renders a paper-style console table: one line per (dataset, param),
/// one column per algorithm, cells formatted by `cell`.
pub fn series_table(
    rows: &[Row],
    value: impl Fn(&Row) -> f64,
    value_name: &str,
    param_name: &str,
) -> String {
    let mut algos: Vec<String> = Vec::new();
    for r in rows {
        if !algos.contains(&r.algo) {
            algos.push(r.algo.clone());
        }
    }
    let mut datasets: Vec<String> = Vec::new();
    for r in rows {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{value_name} by {param_name}:");
    let _ = write!(out, "{:<10} {:>8}", "dataset", param_name);
    for a in &algos {
        let _ = write!(out, " {a:>14}");
    }
    let _ = writeln!(out);
    for ds in &datasets {
        let mut params: Vec<f64> =
            rows.iter().filter(|r| &r.dataset == ds).map(|r| r.param).collect();
        params.sort_by(|a, b| a.partial_cmp(b).unwrap());
        params.dedup();
        for p in params {
            let _ = write!(out, "{ds:<10} {p:>8}");
            for a in &algos {
                let cell = rows
                    .iter()
                    .find(|r| &r.dataset == ds && &r.algo == a && r.param == p)
                    .map(&value);
                match cell {
                    Some(v) => {
                        let _ = write!(out, " {v:>14.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ds: &str, algo: &str, param: f64, ms: f64) -> Row {
        Row {
            experiment: "figX".into(),
            dataset: ds.into(),
            algo: algo.into(),
            param,
            millis: ms,
            accuracy: 1.0,
            sample_size: 100,
            rows_scanned: 1000,
            phase_ns: [0; Phase::COUNT],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[row("cdc", "SWOPE", 1.0, 2.5)]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("experiment,"));
        let data = lines.next().unwrap();
        assert!(data.contains("cdc") && data.contains("SWOPE") && data.contains("2.5"));
    }

    #[test]
    fn table_includes_all_algos_and_params() {
        let rows = vec![
            row("cdc", "SWOPE", 1.0, 2.0),
            row("cdc", "Exact", 1.0, 50.0),
            row("cdc", "SWOPE", 2.0, 3.0),
            row("cdc", "Exact", 2.0, 50.0),
        ];
        let t = series_table(&rows, |r| r.millis, "time (ms)", "k");
        assert!(t.contains("SWOPE") && t.contains("Exact"));
        assert!(t.contains("50.0000"));
        assert_eq!(t.lines().count(), 4); // title + header + 2 params
    }

    #[test]
    fn table_handles_missing_cells() {
        let rows = vec![row("cdc", "SWOPE", 1.0, 2.0), row("hus", "Exact", 1.0, 9.0)];
        let t = series_table(&rows, |r| r.millis, "time", "k");
        assert!(t.contains('-'));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = row("cdc", "SWOPE", 1.0, 2.5);
        r.phase_ns = [10, 20, 30, 40, 50, 60];
        let text = to_json(&[r, row("hus", "Exact", 2.0, 9.0)]);
        let parsed = swope_obs::json::Json::parse(&text).unwrap();
        let arr = match parsed {
            swope_obs::json::Json::Arr(items) => items,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("dataset").unwrap().as_str(), Some("cdc"));
        assert_eq!(arr[0].get("millis").unwrap().as_f64(), Some(2.5));
        assert_eq!(arr[0].get("sample_grow_ns").unwrap().as_u64(), Some(10));
        assert_eq!(arr[0].get("decide_ns").unwrap().as_u64(), Some(40));
        // Baseline rows carry zeroed phase fields, not missing ones.
        assert_eq!(arr[1].get("ingest_ns").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("swope-bench-json-test");
        write_json(&[row("cdc", "SWOPE", 1.0, 2.0)], &dir, "figJ").unwrap();
        let content = std::fs::read_to_string(dir.join("figJ.json")).unwrap();
        assert!(swope_obs::json::Json::parse(&content).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("swope-bench-report-test");
        write_csv(&[row("cdc", "SWOPE", 1.0, 2.0)], &dir, "figT").unwrap();
        let content = std::fs::read_to_string(dir.join("figT.csv")).unwrap();
        assert!(content.contains("cdc"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
