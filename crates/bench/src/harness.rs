//! Shared experiment plumbing: configuration, timing, and result rows.

use std::path::PathBuf;
use std::time::Instant;

use swope_columnar::Dataset;
use swope_datagen::{corpus, generate};
use swope_obs::Phase;

/// One measured cell of an experiment.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id (`fig1`, …).
    pub experiment: String,
    /// Dataset profile name (`cdc`, `hus`, `pus`, `enem`).
    pub dataset: String,
    /// Algorithm (`SWOPE`, `EntropyRank`, `EntropyFilter`, `Exact`).
    pub algo: String,
    /// The swept parameter for this cell (`k`, `η`, or `ε`).
    pub param: f64,
    /// Wall-clock query time in milliseconds.
    pub millis: f64,
    /// Accuracy vs the exact answer (top-k recall or filtering F1).
    pub accuracy: f64,
    /// Final sample size `M` when the query stopped.
    pub sample_size: usize,
    /// Counter-update work units (the paper's cost model).
    pub rows_scanned: u64,
    /// Per-phase wall-clock nanoseconds, indexed by `swope_obs::Phase`
    /// (sample_grow, ingest, update_bounds, decide, store_sketch). All
    /// zeros for algorithms that don't run the adaptive loop.
    pub phase_ns: [u64; Phase::COUNT],
}

/// Experiment-wide configuration shared by all runners.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Row-count scale versus the paper's datasets (1.0 = paper size).
    pub scale: f64,
    /// Seed controlling both data generation and query sampling.
    pub seed: u64,
    /// Number of MI target attributes to average over (paper: 20).
    pub mi_targets: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Restrict to these dataset profiles (empty = all four).
    pub only_datasets: Vec<String>,
    /// Drop columns with support above this before querying.
    ///
    /// The paper caps at 1000 with `N` up to 33.7M, i.e. `N/u_max ≈ 3×10⁴`
    /// and `N/ū ≈ 33` for the worst attribute *pair*. At a reduced row
    /// scale the same 1000-cap puts MI queries in a different regime
    /// (`ū ≥ N`: the joint-support bias term cannot converge before the
    /// sample reaches `N`). Use a proportionally smaller cap (e.g. 100 at
    /// scale 1/64) to study the paper's regime — see EXPERIMENTS.md.
    pub max_support: u32,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            // 1/64 of the paper's rows: pus ≈ 489k × 179 columns — large
            // enough for sampling to matter, small enough for a laptop.
            scale: 1.0 / 64.0,
            seed: 0x5170,
            // Paper averages over 20 targets; 5 keeps `all` under ~15 min.
            // Raise with --targets to match the paper exactly.
            mi_targets: 5,
            out_dir: PathBuf::from("results"),
            only_datasets: Vec::new(),
            max_support: 1000,
        }
    }
}

impl ExpConfig {
    /// Generates the four census-like datasets at this config's scale.
    ///
    /// Generation is deterministic, so every experiment sees identical
    /// data for a given `(scale, seed)`.
    pub fn datasets(&self) -> Vec<(String, Dataset)> {
        corpus::all(self.scale)
            .into_iter()
            .filter(|p| self.only_datasets.is_empty() || self.only_datasets.contains(&p.name))
            .map(|p| {
                let name = p.name.clone();
                let ds = generate(&p, self.seed);
                let (ds, _) = ds.cap_support(self.max_support);
                (name, ds)
            })
            .collect()
    }

    /// Deterministically picks `mi_targets` target attributes for MI
    /// experiments: spread across the attribute range so targets cover
    /// different archetypes.
    pub fn pick_targets(&self, num_attrs: usize) -> Vec<usize> {
        let want = self.mi_targets.clamp(1, num_attrs);
        (0..want).map(|i| (i * num_attrs / want + (self.seed as usize % 7)) % num_attrs).collect()
    }
}

/// Times one closure invocation, returning `(elapsed_ms, output)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ExpConfig::default();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.mi_targets >= 1);
    }

    #[test]
    fn pick_targets_unique_and_in_range() {
        let c = ExpConfig { mi_targets: 5, ..Default::default() };
        let t = c.pick_targets(100);
        assert_eq!(t.len(), 5);
        let unique: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(t.iter().all(|&a| a < 100));
    }

    #[test]
    fn pick_targets_clamps_to_attr_count() {
        let c = ExpConfig { mi_targets: 50, ..Default::default() };
        let t = c.pick_targets(3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn time_ms_returns_output() {
        let (ms, v) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn datasets_have_table2_shapes() {
        let c = ExpConfig { scale: 0.0005, ..Default::default() };
        let ds = c.datasets();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds[0].0, "cdc");
        assert_eq!(ds[0].1.num_attrs(), 100);
        assert_eq!(ds[2].1.num_attrs(), 179);
    }
}
