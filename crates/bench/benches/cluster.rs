//! Cluster-layer benchmark: what the exact count-merge protocol costs.
//!
//! Two questions, one JSON. First, the shard overhead in-process: the
//! same seeded entropy top-k unsharded vs split across 4 count-merge
//! shards (the merge is pure integer addition, so any gap is shard
//! bookkeeping, not estimation work). Second, the wire tax per
//! iteration: encoding and decoding a representative `CountMerge`
//! frame — the dominant frame class, one per shard per doubling — plus
//! its encoded size. Medians are persisted to
//! `results/BENCH_cluster.json`; the CI cluster-smoke step runs this
//! with `SWOPE_MICRO_MS=1` and asserts the fields exist, not the
//! wall-clock numbers.

use std::io::Cursor;

use swope_bench::micro::{black_box, Group};
use swope_cluster::frame::{read_frame, write_frame, CountMergeFrame, Frame};
use swope_columnar::Dataset;
use swope_core::{entropy_top_k, entropy_top_k_sharded_exec, Executor, NoopObserver, SwopeConfig};
use swope_datagen::{corpus, generate};
use swope_obs::json::ObjectWriter;
use swope_sampling::rng::Xoshiro256pp;

const K: usize = 4;
const SHARDS: usize = 4;
const SEED: u64 = 0xC105;

fn dataset() -> Dataset {
    // ~29k rows x 100 columns of the cdc profile.
    generate(&corpus::cdc(1.0 / 128.0), 0x5170)
}

/// A `CountMerge` the size a real doubling iteration produces: 32 live
/// attributes with mid-sized marginal histograms plus joint runs.
fn count_merge_frame() -> Frame {
    let mut r = Xoshiro256pp::seed_from_u64(SEED);
    let mut entries = |support: u32| -> Vec<(u32, u64)> {
        (0..support).map(|c| (c, 1 + r.next_below(500))).collect()
    };
    let target = Some((64u32, entries(64)));
    let attrs: Vec<(u32, Vec<(u32, u64)>)> =
        (0..32).map(|i| (8 + i % 120, entries(8 + i % 120))).collect();
    let joints: Vec<Vec<(u64, u64)>> = (0..32u64)
        .map(|i| (0..(64 * (8 + i % 120))).step_by(7).map(|k| (k, 1 + r.next_below(40))).collect())
        .collect();
    Frame::CountMerge(CountMergeFrame { target, attrs, joints })
}

fn main() {
    let ds = dataset();
    let cfg = SwopeConfig::with_epsilon(0.1).with_seed(SEED);
    let exec = Executor::sequential();

    let mut g = Group::new("cluster_shard_overhead");
    let unsharded_ns =
        g.bench("entropy_topk_unsharded", || black_box(entropy_top_k(&ds, K, &cfg).unwrap()));
    let sharded_ns = g.bench("entropy_topk_sharded_4", || {
        black_box(
            entropy_top_k_sharded_exec(&ds, K, SHARDS, &cfg, &mut NoopObserver, &exec).unwrap(),
        )
    });

    // Sanity: the shard path must agree bitwise before its numbers mean
    // anything.
    let a = entropy_top_k(&ds, K, &cfg).unwrap();
    let b = entropy_top_k_sharded_exec(&ds, K, SHARDS, &cfg, &mut NoopObserver, &exec).unwrap();
    assert_eq!(a.top, b.top, "sharded run diverged from unsharded");
    let rows_scanned = a.stats.rows_scanned;

    let frame = count_merge_frame();
    let mut encoded = Vec::new();
    write_frame(&mut encoded, &frame).unwrap();
    let frame_bytes = encoded.len();

    let mut g = Group::new("cluster_frame_codec");
    let encode_ns = g.bench("count_merge_encode", || {
        let mut buf = Vec::with_capacity(frame_bytes);
        write_frame(&mut buf, &frame).unwrap();
        black_box(buf)
    });
    let decode_ns = g
        .bench("count_merge_decode", || black_box(read_frame(&mut Cursor::new(&encoded)).unwrap()));

    let mut w = ObjectWriter::new();
    w.str_field("bench", "cluster")
        .usize_field("rows", ds.num_rows())
        .usize_field("attrs", ds.num_attrs())
        .usize_field("shards", SHARDS)
        .f64_field("unsharded_ns", unsharded_ns)
        .f64_field("sharded_ns", sharded_ns)
        .f64_field("shard_overhead", sharded_ns / unsharded_ns.max(1.0))
        .u64_field("rows_scanned", rows_scanned)
        .f64_field("unsharded_rows_per_sec", rows_scanned as f64 / (unsharded_ns / 1e9))
        .f64_field("sharded_rows_per_sec", rows_scanned as f64 / (sharded_ns / 1e9))
        .usize_field("count_merge_frame_bytes", frame_bytes)
        .f64_field("count_merge_encode_ns", encode_ns)
        .f64_field("count_merge_decode_ns", decode_ns);
    let json = w.finish();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_cluster.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_cluster.json");
    println!("\nwrote {out}");
    println!("{json}");
}
