//! Microbenchmarks for the concentration-bound arithmetic (Lemma 1–4).
//!
//! Bound evaluation runs once per candidate attribute per iteration — for
//! h ≈ 180 attributes over ~15 iterations that is a few thousand calls per
//! query, so it must stay in the nanosecond range to be negligible next to
//! the counting work.

use swope_bench::micro::{black_box, Group};
use swope_estimate::bounds::{bias, entropy_bounds, lambda, mi_bounds, sample_size_for_width};

fn main() {
    let mut g = Group::new("bounds");
    let (m, n, p) = (1u64 << 16, 1u64 << 25, 1e-8);

    g.bench("lambda", || lambda(black_box(m), black_box(n), black_box(p)));
    g.bench("bias", || bias(black_box(500), black_box(m), black_box(n)));
    g.bench("entropy_bounds", || entropy_bounds(black_box(4.2), m, n, 500, p));
    g.bench("mi_bounds", || mi_bounds(black_box(3.1), 4.2, 6.0, 100, 500, m, n, p));
    g.bench("sample_size_for_width", || sample_size_for_width(black_box(0.25), n, 500, p));
}
