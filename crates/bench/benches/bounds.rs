//! Microbenchmarks for the concentration-bound arithmetic (Lemma 1–4).
//!
//! Bound evaluation runs once per candidate attribute per iteration — for
//! h ≈ 180 attributes over ~15 iterations that is a few thousand calls per
//! query, so it must stay in the nanosecond range to be negligible next to
//! the counting work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swope_estimate::bounds::{bias, entropy_bounds, lambda, mi_bounds, sample_size_for_width};

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounds");
    let (m, n, p) = (1u64 << 16, 1u64 << 25, 1e-8);

    g.bench_function("lambda", |b| {
        b.iter(|| lambda(black_box(m), black_box(n), black_box(p)))
    });
    g.bench_function("bias", |b| {
        b.iter(|| bias(black_box(500), black_box(m), black_box(n)))
    });
    g.bench_function("entropy_bounds", |b| {
        b.iter(|| entropy_bounds(black_box(4.2), m, n, 500, p))
    });
    g.bench_function("mi_bounds", |b| {
        b.iter(|| mi_bounds(black_box(3.1), 4.2, 6.0, 100, 500, m, n, p))
    });
    g.bench_function("sample_size_for_width", |b| {
        b.iter(|| sample_size_for_width(black_box(0.25), n, 500, p))
    });
    g.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
