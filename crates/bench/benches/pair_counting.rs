//! Ablation: dense array vs Fx-hashed sparse map for pair counting.
//!
//! DESIGN.md design choice 3: joint entropy needs counts over the
//! `u_t × u_α` pair space. Dense arrays win while the space is small;
//! sparse maps win when it is large but thinly occupied. The
//! `DENSE_PAIR_LIMIT` crossover constant in `swope-estimate::freq` was
//! picked with this bench.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use swope_estimate::freq::PairCounter;

fn pairs(len: usize, u: u32) -> Vec<(u32, u32)> {
    let mut x = 2463534242u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (((x >> 8) % u as u64) as u32, ((x >> 40) % u as u64) as u32)
        })
        .collect()
}

fn bench_pair_counters(c: &mut Criterion) {
    for u in [64u32, 1024] {
        let data = pairs(200_000, u);
        let mut g = c.benchmark_group(format!("pair_counting_u{u}"));
        g.bench_function("adaptive", |b| {
            b.iter_batched(
                || PairCounter::new(u, u),
                |mut counter| {
                    for &(a, bb) in &data {
                        counter.add(a, bb);
                    }
                    black_box(counter.total())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function("forced_sparse", |b| {
            b.iter_batched(
                PairCounter::new_sparse,
                |mut counter| {
                    for &(a, bb) in &data {
                        counter.add(a, bb);
                    }
                    black_box(counter.total())
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

criterion_group!(benches, bench_pair_counters);
criterion_main!(benches);
