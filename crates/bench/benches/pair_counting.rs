//! Ablation: dense array vs Fx-hashed sparse map for pair counting.
//!
//! DESIGN.md design choice 3: joint entropy needs counts over the
//! `u_t × u_α` pair space. Dense arrays win while the space is small;
//! sparse maps win when it is large but thinly occupied. The
//! `DENSE_PAIR_LIMIT` crossover constant in `swope-estimate::freq` was
//! picked with this bench.

use swope_bench::micro::{black_box, Group};
use swope_estimate::freq::PairCounter;

fn pairs(len: usize, u: u32) -> Vec<(u32, u32)> {
    let mut x = 2463534242u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (((x >> 8) % u as u64) as u32, ((x >> 40) % u as u64) as u32)
        })
        .collect()
}

fn main() {
    for u in [64u32, 1024] {
        let data = pairs(200_000, u);
        let mut g = Group::new(format!("pair_counting_u{u}"));
        g.bench_with_setup(
            "adaptive",
            || PairCounter::new(u, u),
            |mut counter| {
                for &(a, b) in &data {
                    counter.add(a, b);
                }
                black_box(counter.total())
            },
        );
        g.bench_with_setup("forced_sparse", PairCounter::new_sparse, |mut counter| {
            for &(a, b) in &data {
                counter.add(a, b);
            }
            black_box(counter.total())
        });
    }
}
