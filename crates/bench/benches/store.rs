//! Storage-layer microbenchmarks: gather+ingest throughput of the
//! width-generic path at each physical code width.
//!
//! The same logical column (support 200, so its codes fit all three
//! widths) is repacked at u8/u16/u32 and pushed through
//! `EntropyState::ingest_staged`, i.e. the exact path every adaptive
//! loop takes. Narrow widths move fewer bytes per gathered block, so
//! the cache-hostile gather should get cheaper as the packing shrinks —
//! this bench checks that and records the memory footprint alongside.
//!
//! Medians are persisted to `results/BENCH_store.json` so the numbers
//! backing the DESIGN.md storage-layer notes are checked in and
//! reproducible. The CI smoke step runs it with `SWOPE_MICRO_MS=1` and
//! only asserts the JSON parses; real numbers come from a default run.

use swope_bench::micro::{black_box, Group};
use swope_columnar::{CodeBuf, Column, Dataset, Field, Schema, Width};
use swope_core::state::EntropyState;
use swope_obs::json::ObjectWriter;
use swope_sampling::rng::Xoshiro256pp;

/// Rows per simulated iteration delta (same as the exec bench): 1M
/// gathered codes, comfortably past L2 at every width.
const DELTA_ROWS: usize = 1 << 20;

/// Support of the benched column: fits u8, so the identical logical
/// data can be packed at all three widths.
const SUPPORT: u32 = 200;

/// A sampler-like row permutation: multiplying by an odd constant is a
/// bijection modulo a power of two, so every row index appears exactly
/// once but in cache-hostile order.
fn shuffled_rows(n: usize) -> Vec<u32> {
    debug_assert!(n.is_power_of_two());
    (0..n).map(|i| (i.wrapping_mul(0x9E37_79B1) & (n - 1)) as u32).collect()
}

fn dataset(width: Width) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(0x5170);
    let codes: Vec<u32> = (0..DELTA_ROWS).map(|_| r.next_below(SUPPORT as u64) as u32).collect();
    let column =
        Column::new(codes, SUPPORT).unwrap().with_width(width).expect("support fits every width");
    Dataset::new(Schema::new(vec![Field::new("a0", SUPPORT)]), vec![column]).unwrap()
}

/// Gather+ingest one full delta through the width-generic staged path.
fn bench_width(g: &mut Group, width: Width) -> (f64, usize) {
    let ds = dataset(width);
    let rows = shuffled_rows(DELTA_ROWS);
    let column = ds.column(0);
    let bytes = column.bytes_in_memory();
    let mut buf = CodeBuf::new();
    let ns = g.bench_with_setup(
        &format!("staged_ingest_{}_1m_rows", width.name()),
        || EntropyState::new(&ds, 0),
        |mut st| {
            st.ingest_staged(column, &rows, &mut buf);
            black_box(st.sampled())
        },
    );
    (ns, bytes)
}

fn main() {
    let mut g = Group::new("store_ingest");
    let (u8_ns, u8_bytes) = bench_width(&mut g, Width::U8);
    let (u16_ns, u16_bytes) = bench_width(&mut g, Width::U16);
    let (u32_ns, u32_bytes) = bench_width(&mut g, Width::U32);

    let mut w = ObjectWriter::new();
    w.str_field("bench", "store")
        .usize_field("delta_rows", DELTA_ROWS)
        .usize_field("support", SUPPORT as usize)
        .f64_field("ingest_u8_ns", u8_ns)
        .f64_field("ingest_u16_ns", u16_ns)
        .f64_field("ingest_u32_ns", u32_ns)
        .f64_field("ingest_u32_over_u8", u32_ns / u8_ns)
        .usize_field("column_bytes_u8", u8_bytes)
        .usize_field("column_bytes_u16", u16_bytes)
        .usize_field("column_bytes_u32", u32_bytes);
    let json = w.finish();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_store.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_store.json");
    println!("\nwrote {out}");
    println!("{json}");
}
