//! Execution-layer microbenchmarks: persistent-pool dispatch overhead vs
//! a fresh `thread::scope` per fan-out, and gather-staged vs direct
//! (random-access) ingest.
//!
//! Besides the usual console report, this bench persists its medians to
//! `results/BENCH_ingest.json` so the numbers backing the DESIGN.md
//! execution-layer notes are checked in and reproducible. The CI smoke
//! step runs it with `SWOPE_MICRO_MS=1` and only asserts the JSON
//! parses; real numbers come from a default (200 ms) run.

use std::sync::Arc;

use swope_bench::micro::{black_box, Group};
use swope_core::state::{EntropyState, GatherScratch};
use swope_core::{parallel, ExecPool, Executor};
use swope_datagen::{corpus, generate};
use swope_obs::json::ObjectWriter;

/// Items per fan-out: roughly the candidate count of a mid-flight query.
const DISPATCH_ITEMS: usize = 64;

/// Rows per simulated iteration delta for the ingest comparison: 4 MiB
/// of gathered codes, comfortably past L2 so the gather is genuinely
/// cache-hostile.
const DELTA_ROWS: usize = 1 << 20;

/// A sampler-like row permutation: multiplying by an odd constant is a
/// bijection modulo a power of two, so every row index appears exactly
/// once but in cache-hostile order — the access pattern staging exists
/// to absorb.
fn shuffled_rows(n: usize) -> Vec<u32> {
    debug_assert!(n.is_power_of_two());
    (0..n).map(|i| (i.wrapping_mul(0x9E37_79B1) & (n - 1)) as u32).collect()
}

fn bench_dispatch(g: &mut Group) -> (f64, f64, f64) {
    let mut items = vec![0u64; DISPATCH_ITEMS];
    let work = |x: &mut u64| {
        // A few hundred ns of per-item work: enough that the fan-out is
        // not pure overhead, small enough that dispatch cost dominates.
        for _ in 0..64 {
            *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
    };

    let sequential = g.bench("sequential_64_items", || {
        items.iter_mut().for_each(work);
        black_box(items[0])
    });
    let pool = Executor::pooled(Arc::new(ExecPool::new(2)));
    let pooled = g.bench("pool_dispatch_64_items", || {
        pool.for_each_mut(&mut items, work);
        black_box(items[0])
    });
    let scoped = g.bench("scope_dispatch_64_items", || {
        parallel::for_each_mut(&mut items, 2, work);
        black_box(items[0])
    });
    (sequential, pooled, scoped)
}

fn bench_ingest(g: &mut Group) -> (f64, f64) {
    let ds = generate(&corpus::tiny(DELTA_ROWS, 2), 0x5170);
    let rows = shuffled_rows(DELTA_ROWS);
    let column = ds.column(0);

    // Fresh state per timed call: `xlog2` costs depend on accumulated
    // counts, so letting one variant accumulate longer than the other
    // would skew the comparison.
    let direct = g.bench_with_setup(
        "direct_ingest_1m_rows",
        || EntropyState::new(&ds, 0),
        |mut st| {
            st.ingest(column, &rows);
            black_box(st.sampled())
        },
    );

    let mut scratch = GatherScratch::new(1);
    let staged = g.bench_with_setup(
        "staged_ingest_1m_rows",
        || EntropyState::new(&ds, 0),
        |mut st| {
            st.ingest_staged(column, &rows, &mut scratch.slots(1)[0]);
            black_box(st.sampled())
        },
    );
    (direct, staged)
}

fn main() {
    let mut g = Group::new("exec_dispatch");
    let (sequential_ns, pool_ns, scope_ns) = bench_dispatch(&mut g);

    let mut g = Group::new("exec_ingest");
    let (direct_ns, staged_ns) = bench_ingest(&mut g);

    let mut w = ObjectWriter::new();
    w.str_field("bench", "exec")
        .usize_field("dispatch_items", DISPATCH_ITEMS)
        .f64_field("dispatch_sequential_ns", sequential_ns)
        .f64_field("dispatch_pool_ns", pool_ns)
        .f64_field("dispatch_scope_ns", scope_ns)
        .f64_field("dispatch_scope_over_pool", scope_ns / pool_ns)
        .usize_field("ingest_delta_rows", DELTA_ROWS)
        .usize_field("ingest_block_rows", swope_core::state::INGEST_BLOCK_ROWS)
        .f64_field("ingest_direct_ns", direct_ns)
        .f64_field("ingest_staged_ns", staged_ns)
        .f64_field("ingest_direct_over_staged", direct_ns / staged_ns);
    let json = w.finish();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_ingest.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_ingest.json");
    println!("\nwrote {out}");
    println!("{json}");
}
