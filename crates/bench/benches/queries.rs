//! End-to-end query microbenchmarks: SWOPE vs EntropyRank/EntropyFilter
//! vs Exact on a criterion-sized corpus.
//!
//! These are the headline comparisons at one fixed setting each; the
//! `figures` binary runs the paper's full parameter sweeps.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swope_baselines::{
    entropy_filter_exact_sampling, entropy_rank_top_k, exact_entropy_scores, exact_mi_scores,
    mi_rank_top_k,
};
use swope_columnar::Dataset;
use swope_core::{entropy_filter, entropy_top_k, mi_filter, mi_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

fn dataset() -> Dataset {
    // ~59k rows x 100 columns of the cdc profile.
    generate(&corpus::cdc(1.0 / 64.0), 0x5170)
}

fn bench_entropy_queries(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("entropy_queries");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));

    g.bench_function("swope_topk_k4_eps0.1", |b| {
        let cfg = SwopeConfig::with_epsilon(0.1);
        b.iter(|| black_box(entropy_top_k(&ds, 4, &cfg).unwrap()))
    });
    g.bench_function("rank_topk_k4", |b| {
        let cfg = SwopeConfig::default();
        b.iter(|| black_box(entropy_rank_top_k(&ds, 4, &cfg).unwrap()))
    });
    g.bench_function("exact_scan", |b| {
        b.iter(|| black_box(exact_entropy_scores(&ds)))
    });
    g.bench_function("swope_filter_eta2_eps0.05", |b| {
        let cfg = SwopeConfig::with_epsilon(0.05);
        b.iter(|| black_box(entropy_filter(&ds, 2.0, &cfg).unwrap()))
    });
    g.bench_function("entropyfilter_eta2", |b| {
        let cfg = SwopeConfig::default();
        b.iter(|| black_box(entropy_filter_exact_sampling(&ds, 2.0, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_mi_queries(c: &mut Criterion) {
    let ds = dataset();
    let target = 3;
    let mut g = c.benchmark_group("mi_queries");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));

    g.bench_function("swope_mi_topk_k4_eps0.5", |b| {
        let cfg = SwopeConfig::with_epsilon(0.5);
        b.iter(|| black_box(mi_top_k(&ds, target, 4, &cfg).unwrap()))
    });
    g.bench_function("rank_mi_topk_k4", |b| {
        let cfg = SwopeConfig::default();
        b.iter(|| black_box(mi_rank_top_k(&ds, target, 4, &cfg).unwrap()))
    });
    g.bench_function("exact_mi_scan", |b| {
        b.iter(|| black_box(exact_mi_scores(&ds, target)))
    });
    g.bench_function("swope_mi_filter_eta0.3_eps0.5", |b| {
        let cfg = SwopeConfig::with_epsilon(0.5);
        b.iter(|| black_box(mi_filter(&ds, target, 0.3, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_batch_mi(c: &mut Criterion) {
    // Batched vs individual MI top-k over several targets (the paper's
    // multi-target protocol).
    let ds = dataset();
    let targets = [0usize, 7, 19, 31];
    let mut g = c.benchmark_group("batch_mi");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("batched_4_targets", |b| {
        let cfg = SwopeConfig::with_epsilon(0.5);
        b.iter(|| black_box(swope_core::mi_top_k_batch(&ds, &targets, 4, &cfg).unwrap()))
    });
    g.bench_function("individual_4_targets", |b| {
        let cfg = SwopeConfig::with_epsilon(0.5);
        b.iter(|| {
            for &t in &targets {
                black_box(mi_top_k(&ds, t, 4, &cfg).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // DESIGN.md design choice 5: per-attribute work shards across threads.
    let ds = dataset();
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("swope_topk_threads{threads}"), |b| {
            let cfg = SwopeConfig::with_epsilon(0.1).with_threads(threads);
            b.iter(|| black_box(entropy_top_k(&ds, 4, &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_entropy_queries,
    bench_mi_queries,
    bench_batch_mi,
    bench_parallel_scaling
);
criterion_main!(benches);
