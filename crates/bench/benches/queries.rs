//! End-to-end query microbenchmarks: SWOPE vs EntropyRank/EntropyFilter
//! vs Exact on a bench-sized corpus.
//!
//! These are the headline comparisons at one fixed setting each; the
//! `figures` binary runs the paper's full parameter sweeps.

use swope_baselines::{
    entropy_filter_exact_sampling, entropy_rank_top_k, exact_entropy_scores, exact_mi_scores,
    mi_rank_top_k,
};
use swope_bench::micro::{black_box, Group};
use swope_columnar::Dataset;
use swope_core::{entropy_filter, entropy_top_k, mi_filter, mi_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

fn dataset() -> Dataset {
    // ~59k rows x 100 columns of the cdc profile.
    generate(&corpus::cdc(1.0 / 64.0), 0x5170)
}

fn main() {
    let ds = dataset();

    let mut g = Group::new("entropy_queries");
    let eps01 = SwopeConfig::with_epsilon(0.1);
    let default_cfg = SwopeConfig::default();
    g.bench("swope_topk_k4_eps0.1", || black_box(entropy_top_k(&ds, 4, &eps01).unwrap()));
    g.bench("rank_topk_k4", || black_box(entropy_rank_top_k(&ds, 4, &default_cfg).unwrap()));
    g.bench("exact_scan", || black_box(exact_entropy_scores(&ds)));
    let eps005 = SwopeConfig::with_epsilon(0.05);
    g.bench("swope_filter_eta2_eps0.05", || black_box(entropy_filter(&ds, 2.0, &eps005).unwrap()));
    g.bench("entropyfilter_eta2", || {
        black_box(entropy_filter_exact_sampling(&ds, 2.0, &default_cfg).unwrap())
    });

    let target = 3;
    let eps05 = SwopeConfig::with_epsilon(0.5);
    let mut g = Group::new("mi_queries");
    g.bench("swope_mi_topk_k4_eps0.5", || black_box(mi_top_k(&ds, target, 4, &eps05).unwrap()));
    g.bench("rank_mi_topk_k4", || black_box(mi_rank_top_k(&ds, target, 4, &default_cfg).unwrap()));
    g.bench("exact_mi_scan", || black_box(exact_mi_scores(&ds, target)));
    g.bench("swope_mi_filter_eta0.3_eps0.5", || {
        black_box(mi_filter(&ds, target, 0.3, &eps05).unwrap())
    });

    // Batched vs individual MI top-k over several targets (the paper's
    // multi-target protocol).
    let targets = [0usize, 7, 19, 31];
    let mut g = Group::new("batch_mi");
    g.bench("batched_4_targets", || {
        black_box(swope_core::mi_top_k_batch(&ds, &targets, 4, &eps05).unwrap())
    });
    g.bench("individual_4_targets", || {
        for &t in &targets {
            black_box(mi_top_k(&ds, t, 4, &eps05).unwrap());
        }
    });

    // DESIGN.md design choice 5: per-attribute work shards across threads.
    let mut g = Group::new("parallel_scaling");
    for threads in [1usize, 2, 4] {
        let cfg = SwopeConfig::with_epsilon(0.1).with_threads(threads);
        g.bench(&format!("swope_topk_threads{threads}"), || {
            black_box(entropy_top_k(&ds, 4, &cfg).unwrap())
        });
    }
}
