//! Ablation: incremental entropy accumulator vs recompute-from-counts.
//!
//! DESIGN.md design choice 1: maintaining `Σ n_i·log2 n_i` under count
//! increments makes each ingested record O(1) and each bound evaluation
//! O(1). The alternative — recompute entropy from the count vector on
//! every evaluation — is O(u) per evaluation. This bench quantifies both
//! halves.

use swope_bench::micro::{black_box, Group};
use swope_estimate::entropy::{entropy_from_counts, EntropyCounter};

fn stream(len: usize, support: u32) -> Vec<u32> {
    let mut x = 88172645463325252u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % support as u64) as u32
        })
        .collect()
}

fn main() {
    let data = stream(100_000, 500);
    let mut g = Group::new("entropy_ingest");
    g.bench_with_setup(
        "incremental_add_100k",
        || EntropyCounter::new(500),
        |mut counter| {
            for &code in &data {
                counter.add(code);
            }
            black_box(counter.entropy())
        },
    );

    let mut counter = EntropyCounter::new(1000);
    for &code in &stream(1_000_000, 1000) {
        counter.add(code);
    }
    let mut g = Group::new("entropy_evaluate");
    g.bench("incremental_o1", || black_box(counter.entropy()));
    g.bench("recompute_o_u", || black_box(entropy_from_counts(counter.counts())));
}
