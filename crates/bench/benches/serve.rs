//! Connection-layer benchmark: what the event loop buys over
//! connection-per-request serving.
//!
//! Three questions, one JSON. First, request throughput over a small
//! population of reused keep-alive sockets (pipelined batches, the
//! cheapest legal HTTP/1.1 client behaviour) versus the same population
//! opening a fresh `Connection: close` socket per request — the ratio is
//! the keep-alive speedup the docs advertise. The close path doubles as
//! the accepted-connections/sec figure, since every request there costs
//! one full connect/accept/teardown. Third, the marginal resident memory
//! of an idle connection: the event loop holds idle sockets as slab
//! entries with empty buffers instead of parked threads, so a thousand
//! of them should cost kilobytes each, not megabytes. Medians are
//! persisted to `results/BENCH_serve.json`; the CI serve-smoke step runs
//! this with `SWOPE_MICRO_MS=1` and asserts the fields exist, not the
//! wall-clock numbers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use swope_bench::micro::{black_box, Group};
// Server and clients share one process RSS — the server side dominates,
// since a client socket is just an fd.
use swope_bench::rss_bytes;
use swope_obs::json::ObjectWriter;
use swope_server::{Server, ServerConfig};

/// Requests written back-to-back per timed batch on a reused socket.
const PIPELINE: usize = 64;
/// Concurrent client connections in both throughput scenarios — what a
/// load generator like `wrk -c4` would hold open.
const CLIENTS: usize = 4;
/// Idle sockets opened for the marginal-memory measurement.
const IDLE_CONNS: usize = 1000;

fn start_server() -> (SocketAddr, swope_server::ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue_capacity: 256,
        keep_alive: Duration::from_secs(60),
        max_conns: IDLE_CONNS + 64,
        handle_signals: false,
        ..ServerConfig::default()
    })
    .expect("bench server binds");
    server
        .registry()
        .insert("bench", swope_datagen::generate(&swope_datagen::corpus::tiny(200, 4), 0xBE7C));
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

/// Buffered reader for back-to-back HTTP/1.1 responses. Byte-at-a-time
/// header reads would cost ~100 syscalls per response and dominate the
/// measurement; this reads in 16 KiB gulps and scans in memory.
struct RespReader {
    buf: Vec<u8>,
    pos: usize,
}

impl RespReader {
    fn new() -> Self {
        Self { buf: Vec::with_capacity(16 * 1024), pos: 0 }
    }

    /// Consumes one `Content-Length`-framed response, asserting a 200.
    fn read_response(&mut self, stream: &mut TcpStream) {
        let header_end = loop {
            if let Some(i) = self.buf[self.pos..].windows(4).position(|w| w == b"\r\n\r\n") {
                break self.pos + i + 4;
            }
            self.refill(stream);
        };
        let head = String::from_utf8_lossy(&self.buf[self.pos..header_end]);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length header");
        while self.buf.len() < header_end + content_length {
            self.refill(stream);
        }
        self.pos = header_end + content_length;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }

    fn refill(&mut self, stream: &mut TcpStream) {
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "unexpected EOF mid-response");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

fn main() {
    let (addr, handle, thread) = start_server();

    // CLIENTS sockets reused for the whole benchmark: each timed call
    // has every client write PIPELINE requests back-to-back and read the
    // responses back in order, so one round serves CLIENTS * PIPELINE
    // requests over sockets that never close.
    let mut reused: Vec<TcpStream> = (0..CLIENTS)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            s
        })
        .collect();
    let batch: Vec<u8> =
        "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n".repeat(PIPELINE).into_bytes();
    let round = (CLIENTS * PIPELINE) as f64;

    let mut g = Group::new("serve_connection_layer");
    let keepalive_round_ns = g.bench("healthz_keepalive_4x64_pipelined", || {
        std::thread::scope(|scope| {
            for stream in reused.iter_mut() {
                scope.spawn(|| {
                    let mut reader = RespReader::new();
                    stream.write_all(&batch).unwrap();
                    for _ in 0..PIPELINE {
                        reader.read_response(stream);
                    }
                });
            }
        });
        black_box(())
    });
    let keepalive_ns = keepalive_round_ns / round;

    // The same CLIENTS-wide population, but every request pays a fresh
    // connect, a `Connection: close` exchange, and an observed EOF.
    let close_round_ns = g.bench("healthz_close_per_request_4x64", || {
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                scope.spawn(|| {
                    for _ in 0..PIPELINE {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        stream.set_nodelay(true).unwrap();
                        stream
                            .write_all(
                                b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\
                                  Connection: close\r\n\r\n",
                            )
                            .unwrap();
                        // Read to the EOF the server's close produces;
                        // one response rides in it.
                        let mut raw = Vec::new();
                        stream.read_to_end(&mut raw).unwrap();
                        assert!(raw.starts_with(b"HTTP/1.1 200"), "bad close-path response");
                        black_box(raw);
                    }
                });
            }
        });
        black_box(())
    });
    let close_ns = close_round_ns / round;

    // Marginal idle memory: park IDLE_CONNS sockets that never send a
    // byte and read the RSS delta once the server has registered them.
    let rss_before = rss_bytes();
    let mut parked = Vec::with_capacity(IDLE_CONNS);
    for _ in 0..IDLE_CONNS {
        parked.push(TcpStream::connect(addr).unwrap());
    }
    std::thread::sleep(Duration::from_millis(200));
    let idle_bytes_per_conn = match (rss_before, rss_bytes()) {
        (Some(before), Some(after)) => (after.saturating_sub(before)) as f64 / IDLE_CONNS as f64,
        _ => -1.0, // no /proc on this platform
    };
    drop(parked);

    let keepalive_rps = 1e9 / keepalive_ns.max(1.0);
    let close_rps = 1e9 / close_ns.max(1.0);
    let mut w = ObjectWriter::new();
    w.str_field("bench", "serve")
        .usize_field("clients", CLIENTS)
        .usize_field("pipeline_depth", PIPELINE)
        .f64_field("keepalive_ns_per_req", keepalive_ns)
        .f64_field("close_ns_per_req", close_ns)
        .f64_field("keepalive_reqs_per_sec", keepalive_rps)
        .f64_field("close_reqs_per_sec", close_rps)
        .f64_field("keepalive_speedup", keepalive_rps / close_rps.max(1.0))
        // Every close-per-request exchange is one accepted connection.
        .f64_field("conns_per_sec", close_rps)
        .usize_field("idle_conns", IDLE_CONNS)
        .f64_field("idle_rss_bytes_per_conn", idle_bytes_per_conn);
    let json = w.finish();

    handle.shutdown();
    thread.join().unwrap();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_serve.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_serve.json");
    println!("\nwrote {out}");
    println!("{json}");
}
