//! Ablation: incremental prefix-shuffle extension vs fresh shuffles, and
//! row-level vs page-level sampling.
//!
//! DESIGN.md design choice 2: the doubling loop extends one Fisher–Yates
//! pass instead of resampling from scratch each iteration, so total
//! shuffling work across a query is O(final M), not O(Σ M_i). Choice 4:
//! page-granular sampling (paper §6.1) trades sampling randomness
//! granularity for sequential access.

use swope_bench::micro::{black_box, Group};
use swope_sampling::{PageShuffle, PrefixShuffle, Sampler};

const N: usize = 1 << 22;

fn main() {
    let mut g = Group::new("shuffle");

    // Doubling ladder 1024 -> N/4 with incremental extension.
    g.bench("incremental_ladder", || {
        let mut s = PrefixShuffle::new(N, 42);
        let mut m = 1024;
        while m <= N / 4 {
            black_box(s.grow_to(m).len());
            m *= 2;
        }
        s.sampled()
    });

    // Same ladder, fresh shuffle per step (what a naive implementation
    // re-sampling each iteration would pay).
    g.bench("fresh_per_step", || {
        let mut total = 0usize;
        let mut m = 1024;
        while m <= N / 4 {
            let mut s = PrefixShuffle::new(N, 42);
            total += s.grow_to(m).len();
            m *= 2;
        }
        total
    });

    g.bench("page_ladder_4k_pages", || {
        let mut s = PageShuffle::new(N, 4096, 42);
        let mut m = 1024;
        while m <= N / 4 {
            black_box(s.grow_to(m).len());
            m *= 2;
        }
        s.sampled()
    });

    // The downstream cost the page sampler optimizes: gathering column
    // codes at sampled row indices.
    let column: Vec<u32> = (0..N as u32).map(|x| x.wrapping_mul(2654435761) % 100).collect();
    let mut row = PrefixShuffle::new(N, 7);
    row.grow_to(N / 8);
    let mut page = PageShuffle::new(N, 4096, 7);
    page.grow_to(N / 8);

    let mut g = Group::new("gather_codes");
    g.bench("row_shuffled_indices", || {
        let mut acc = 0u64;
        for &r in row.rows() {
            acc += column[r as usize] as u64;
        }
        acc
    });
    g.bench("page_sequential_indices", || {
        let mut acc = 0u64;
        for &r in page.rows() {
            acc += column[r as usize] as u64;
        }
        acc
    });
}
