//! Pager benchmark: what out-of-core costs and what compression buys.
//!
//! Three questions, one JSON. First, cold fault latency: decoding a
//! 64Ki-row page from the mapped snapshot into hot codes, measured both
//! as a scan median and as the pager's own `fault_nanos / faults`
//! average. Second, residency under a byte budget: a dataset four times
//! the configured budget is scanned repeatedly, and the peak resident
//! gauge must stay at or under the budget while evictions churn. Third,
//! the RLE/palette ratio: demoted cold pages of skewed low-support data
//! should compress well below the half-plain-bytes admission threshold.
//! Results persist to `results/BENCH_pager.json`; the CI pager-smoke
//! step runs this with `SWOPE_MICRO_MS=1` and validates the fields and
//! the budget/ratio invariants, not the wall-clock numbers.

use std::sync::Arc;

use swope_bench::micro::{black_box, Group};
use swope_bench::rss_bytes;
use swope_columnar::{snapshot, stats, Dataset, PageCache};
use swope_obs::json::ObjectWriter;

/// Four full 64Ki-row pages per column — no partial tail, so every page
/// has identical plain bytes and the compression ratio is exact.
const ROWS: usize = 4 * 65536;

/// All three `tiny` columns pack to u8 (supports 9/23/7), giving
/// 64 KiB plain pages and heavily skewed codes the RLE/palette
/// re-encoder was built for.
const COLS: usize = 3;

const PAGE_PLAIN_BYTES: f64 = 65536.0;

fn scan_all(ds: &Dataset) {
    for attr in 0..ds.num_attrs() {
        black_box(ds.column(attr).value_counts());
    }
}

fn main() {
    let ds = swope_datagen::generate(&swope_datagen::corpus::tiny(ROWS, COLS), 0x7A6E);
    let path = std::env::temp_dir().join(format!("swope-bench-pager-{}.swop", std::process::id()));
    snapshot::write_file(&ds, &path).expect("writing bench snapshot");
    let plain = stats::bytes_in_memory(&ds) as u64;
    // The acceptance shape: dataset is 4x the budget, so a full scan can
    // keep at most a quarter of its pages hot.
    let budget = plain / 4;

    let mut g = Group::new("pager");

    // Cold fault path: a fresh unbounded cache per pass, so every page
    // of every column faults and CRC-validates exactly once.
    let open_cold = || snapshot::open_paged(&path, Arc::new(PageCache::unbounded())).unwrap().0;
    let cold_scan_ns = g.bench_with_setup("cold_scan_all_columns", open_cold, |paged| {
        scan_all(&paged);
        black_box(())
    });

    // Same scan against the eagerly decoded heap dataset — the pager's
    // overhead on warm data is the gap between this and a re-scan below.
    let heap_scan_ns = g.bench("heap_scan_all_columns", || {
        scan_all(&ds);
        black_box(())
    });

    // Warm paged scan: pages stay hot in an unbounded cache, so this
    // prices the cursor/page-lookup indirection alone.
    let (warm, _) = snapshot::open_paged(&path, Arc::new(PageCache::unbounded())).unwrap();
    scan_all(&warm);
    let warm_scan_ns = g.bench("warm_scan_all_columns", || {
        scan_all(&warm);
        black_box(())
    });
    drop(warm);

    // Instrumented cold pass for the pager's own per-fault average and
    // the paged resident footprint vs the eager heap load.
    let rss_before = rss_bytes();
    let cache = Arc::new(PageCache::unbounded());
    let (paged, _) = snapshot::open_paged(&path, Arc::clone(&cache)).unwrap();
    scan_all(&paged);
    let cold = cache.snapshot();
    let paged_rss_delta = match (rss_before, rss_bytes()) {
        (Some(before), Some(after)) => after.saturating_sub(before) as f64,
        _ => -1.0, // no /proc on this platform
    };
    drop(paged);
    let fault_ns = cold.fault_nanos as f64 / cold.faults.max(1) as f64;

    let rss_before = rss_bytes();
    let heap_copy = snapshot::read_file_with_sketch(&path).unwrap().0;
    let heap_rss_delta = match (rss_before, rss_bytes()) {
        (Some(before), Some(after)) => after.saturating_sub(before) as f64,
        _ => -1.0,
    };
    drop(heap_copy);

    // Budget mode: repeated full scans through a quarter-size cache, so
    // eviction churns, cold pages demote through the RLE/palette stage,
    // and refaults decode from compressed instead of re-reading disk.
    let cache_b = Arc::new(PageCache::new(Some(budget)));
    let (paged_b, _) = snapshot::open_paged(&path, Arc::clone(&cache_b)).unwrap();
    let budget_scan_ns = g.bench("budget_scan_with_eviction", || {
        scan_all(&paged_b);
        black_box(())
    });
    let snap = cache_b.snapshot();
    assert!(snap.evictions > 0, "quarter-size budget never evicted");
    assert!(
        snap.peak_resident_bytes <= budget,
        "peak resident {} exceeded budget {budget}",
        snap.peak_resident_bytes
    );
    let rle_ratio = if snap.compressed_pages > 0 {
        (snap.compressed_bytes as f64 / snap.compressed_pages as f64) / PAGE_PLAIN_BYTES
    } else {
        -1.0
    };

    let mut w = ObjectWriter::new();
    w.str_field("bench", "pager")
        .usize_field("rows", ROWS)
        .usize_field("cols", COLS)
        .u64_field("dataset_plain_bytes", plain)
        .u64_field("budget_bytes", budget)
        .f64_field("cold_scan_ns", cold_scan_ns)
        .f64_field("warm_scan_ns", warm_scan_ns)
        .f64_field("heap_scan_ns", heap_scan_ns)
        .f64_field("budget_scan_ns", budget_scan_ns)
        .f64_field("fault_ns_avg", fault_ns)
        .u64_field("cold_faults", cold.faults)
        .u64_field("cold_crc_validations", cold.crc_validations)
        .u64_field("budget_faults", snap.faults)
        .u64_field("budget_evictions", snap.evictions)
        .u64_field("budget_decompressions", snap.decompressions)
        .u64_field("peak_resident_bytes", snap.peak_resident_bytes)
        .u64_field("resident_bytes", snap.resident_bytes)
        .u64_field("compressed_pages", snap.compressed_pages)
        .u64_field("compressed_bytes", snap.compressed_bytes)
        .f64_field("rle_ratio", rle_ratio)
        .f64_field("paged_cold_rss_delta_bytes", paged_rss_delta)
        .f64_field("heap_load_rss_delta_bytes", heap_rss_delta);
    let json = w.finish();

    std::fs::remove_file(&path).ok();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_pager.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_pager.json");
    println!("\nwrote {out}");
    println!("{json}");
}
