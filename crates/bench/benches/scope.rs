//! Scoped-query benchmark: what a partition sketch buys a range scope.
//!
//! One multi-page dataset answers the same seeded entropy top-k three
//! ways: unscoped (the baseline every pre-scope caller gets), scoped to
//! a ~25% row range *with* the sketch (covered pages are seeded from
//! per-page histograms; only the unaligned fringe touches the store),
//! and scoped *without* the sketch (the physical fallback that samples
//! the range directly). Medians and `rows_scanned` for all three are
//! persisted to `results/BENCH_scope.json`; the CI scope-smoke step
//! runs this with `SWOPE_MICRO_MS=1` and asserts the scan-reduction
//! acceptance bar (a ≤25% range must scan ≥4x fewer rows than the full
//! query), not wall-clock numbers.
//!
//! Read the wall-clock columns with the cost model in mind: the sketch
//! path minimizes *store traffic* (`rows_scanned`, the paper's counter
//! cost — what matters when pages are cold, compressed, or remote),
//! while on a hot in-memory dataset the physical fallback can be faster
//! per query because a sequential gather of packed codes beats per-draw
//! histogram synthesis. The JSON keeps all three so the trade-off stays
//! visible.

use swope_bench::micro::{black_box, Group};
use swope_columnar::{Column, Dataset, DatasetSketch, Field, Schema, PAGE_ROWS};
use swope_core::{entropy_top_k, entropy_top_k_scoped, Scope, SwopeConfig};
use swope_obs::json::ObjectWriter;
use swope_sampling::rng::Xoshiro256pp;

/// Eight full sketch pages plus a ragged tail.
const ROWS: usize = 8 * PAGE_ROWS + 12_345;

const K: usize = 4;
const SEED: u64 = 0x5C09;

fn dataset() -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(SEED);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [2u32, 8, 40, 200, 16, 100].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..ROWS)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn main() {
    let ds = dataset();
    let sketch =
        DatasetSketch::build(ds.num_rows(), (0..ds.num_attrs()).map(|a| ds.column(a).packed()));
    let cfg = SwopeConfig::with_epsilon(0.1).with_seed(SEED);
    // An unaligned ~25% range: two covered pages plus a 500-row fringe
    // on each side — the common case for "rows loaded last week".
    let scope = Scope::range(PAGE_ROWS - 500, 3 * PAGE_ROWS + 500);
    let scope_rows = 2 * PAGE_ROWS + 1000;

    let mut g = Group::new("scope");
    let full_ns = g.bench("entropy_topk_full", || black_box(entropy_top_k(&ds, K, &cfg).unwrap()));
    let scoped_ns = g.bench("entropy_topk_scoped_sketch", || {
        black_box(entropy_top_k_scoped(&ds, K, &scope, Some(&sketch), &cfg).unwrap())
    });
    let nosketch_ns = g.bench("entropy_topk_scoped_nosketch", || {
        black_box(entropy_top_k_scoped(&ds, K, &scope, None, &cfg).unwrap())
    });

    let full = entropy_top_k(&ds, K, &cfg).unwrap();
    let scoped = entropy_top_k_scoped(&ds, K, &scope, Some(&sketch), &cfg).unwrap();
    let nosketch = entropy_top_k_scoped(&ds, K, &scope, None, &cfg).unwrap();

    let mut w = ObjectWriter::new();
    w.str_field("bench", "scope")
        .usize_field("rows", ROWS)
        .usize_field("scope_rows", scope_rows)
        .usize_field("sketch_bytes", sketch.encoded_len())
        .f64_field("full_ns", full_ns)
        .f64_field("scoped_sketch_ns", scoped_ns)
        .f64_field("scoped_nosketch_ns", nosketch_ns)
        .u64_field("rows_scanned_full", full.stats.rows_scanned)
        .u64_field("rows_scanned_scoped_sketch", scoped.stats.rows_scanned)
        .u64_field("rows_scanned_scoped_nosketch", nosketch.stats.rows_scanned)
        .f64_field(
            "scan_reduction",
            full.stats.rows_scanned as f64 / scoped.stats.rows_scanned.max(1) as f64,
        );
    let json = w.finish();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_scope.json");
    std::fs::write(out, format!("{json}\n")).expect("writing results/BENCH_scope.json");
    println!("\nwrote {out}");
    println!("{json}");
}
