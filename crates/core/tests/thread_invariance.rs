//! Determinism property: every adaptive loop must return bitwise-identical
//! results for any thread count.
//!
//! The executor only changes *which thread* updates a candidate's state —
//! each state still sees its delta rows sequentially and in order, and all
//! cross-candidate reductions stay on the dispatching thread — so results
//! must match the sequential run exactly, floats included. The datasets
//! mix supports and skews so candidates retire at different iterations,
//! exercising dispatches over shrinking (and eventually tiny) slices.

use swope_columnar::{Column, Dataset, Field, Schema};
use swope_core::{
    entropy_filter, entropy_profile, entropy_top_k, mi_filter, mi_profile, mi_top_k,
    mi_top_k_batch, SwopeConfig,
};
use swope_sampling::rng::Xoshiro256pp;

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Columns with wildly different supports and skews: a constant column,
/// heavily skewed small supports, and near-uniform wide ones. Their
/// confidence intervals close at very different sample sizes, so the
/// live-candidate set shrinks iteration by iteration.
fn dataset(seed: u64, n: usize) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [1u32, 2, 3, 8, 40, 200].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..n)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                // Every odd column stays as drawn (near-uniform); even
                // columns collapse most draws to 0 for a skewed marginal.
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn config(seed: u64, threads: usize) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.2).with_seed(seed).with_threads(threads)
}

#[test]
fn retirement_is_staggered_in_the_test_dataset() {
    // Precondition for the invariance tests below to mean anything: the
    // candidates must not all retire in the same iteration.
    let ds = dataset(11, 12_000);
    let r = entropy_profile(&ds, 0.05, &config(11, 1)).unwrap();
    let mut iters: Vec<usize> = r.scores.iter().map(|s| s.retired_iteration).collect();
    iters.sort_unstable();
    iters.dedup();
    assert!(iters.len() > 1, "all candidates retired together: {:?}", r.scores);
}

#[test]
fn entropy_top_k_is_thread_invariant() {
    let ds = dataset(1, 12_000);
    let baseline = entropy_top_k(&ds, 3, &config(1, 1)).unwrap();
    for t in THREADS {
        assert_eq!(entropy_top_k(&ds, 3, &config(1, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn entropy_filter_is_thread_invariant() {
    let ds = dataset(2, 12_000);
    let baseline = entropy_filter(&ds, 1.0, &config(2, 1)).unwrap();
    for t in THREADS {
        assert_eq!(entropy_filter(&ds, 1.0, &config(2, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn mi_top_k_is_thread_invariant() {
    let ds = dataset(3, 12_000);
    let baseline = mi_top_k(&ds, 5, 3, &config(3, 1)).unwrap();
    for t in THREADS {
        assert_eq!(mi_top_k(&ds, 5, 3, &config(3, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn mi_filter_is_thread_invariant() {
    let ds = dataset(4, 12_000);
    let baseline = mi_filter(&ds, 5, 0.1, &config(4, 1)).unwrap();
    for t in THREADS {
        assert_eq!(mi_filter(&ds, 5, 0.1, &config(4, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn entropy_profile_is_thread_invariant() {
    let ds = dataset(5, 12_000);
    let baseline = entropy_profile(&ds, 0.05, &config(5, 1)).unwrap();
    for t in THREADS {
        assert_eq!(entropy_profile(&ds, 0.05, &config(5, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn mi_profile_is_thread_invariant() {
    let ds = dataset(6, 12_000);
    let baseline = mi_profile(&ds, 5, 0.05, &config(6, 1)).unwrap();
    for t in THREADS {
        assert_eq!(mi_profile(&ds, 5, 0.05, &config(6, t)).unwrap(), baseline, "threads = {t}");
    }
}

#[test]
fn mi_top_k_batch_is_thread_invariant() {
    let ds = dataset(7, 12_000);
    let targets = [0usize, 3, 5];
    let baseline = mi_top_k_batch(&ds, &targets, 2, &config(7, 1)).unwrap();
    for t in THREADS {
        assert_eq!(
            mi_top_k_batch(&ds, &targets, 2, &config(7, t)).unwrap(),
            baseline,
            "threads = {t}"
        );
    }
}
