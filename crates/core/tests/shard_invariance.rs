//! Determinism property behind swope-cluster: the exact count-merge
//! protocol makes sharded execution invisible.
//!
//! Two layers of guarantees, both tested here with seeded generators and
//! no external property-test dependency:
//!
//! 1. **Merge algebra** — shard count deltas are pure integer
//!    histograms, so `merge` is associative and commutative, and any
//!    disjoint partition of rows merges back to the whole count.
//! 2. **Loop invariance** — every adaptive loop run through
//!    [`swope_core::ShardPlan`]-sharded counting returns bitwise-identical
//!    results to the unsharded loop, across shard counts (1/2/3/7),
//!    physical widths (`u8`/`u16`/`u32`), and executor thread counts
//!    (1/8). This is the property the wire layer inherits: a cluster of
//!    peers is just shards with a network in between.

use swope_columnar::{Column, Dataset, Field, Schema, Width};
use swope_core::{
    entropy_filter, entropy_filter_sharded_exec, entropy_profile, entropy_profile_sharded_exec,
    entropy_top_k, entropy_top_k_sharded_exec, mi_filter, mi_filter_sharded_exec, mi_profile,
    mi_profile_sharded_exec, mi_top_k, mi_top_k_sharded_exec, CountState, Executor, NoopObserver,
    PairCountState, SwopeConfig,
};
use swope_sampling::rng::Xoshiro256pp;

const SHARDS: [usize; 4] = [1, 2, 3, 7];
const THREADS: [usize; 2] = [1, 8];
const PROFILE_FLOOR: f64 = 0.05;

// ---------------------------------------------------------------------
// Merge algebra.
// ---------------------------------------------------------------------

fn random_count_state(r: &mut Xoshiro256pp, support: u32, adds: usize) -> CountState {
    let mut cs = CountState::new(support);
    for _ in 0..adds {
        cs.add(r.next_below(support as u64) as u32);
    }
    cs
}

fn random_pair_state(r: &mut Xoshiro256pp, ts: u32, asup: u32, adds: usize) -> PairCountState {
    let mut ps = PairCountState::new();
    for _ in 0..adds {
        ps.add(r.next_below(ts as u64) as u32, r.next_below(asup as u64) as u32);
    }
    ps
}

#[test]
fn count_merge_is_associative_and_commutative() {
    let mut r = Xoshiro256pp::seed_from_u64(0x51AB);
    for support in [1u32, 2, 7, 64, 300] {
        let a = random_count_state(&mut r, support, 500);
        let b = random_count_state(&mut r, support, 250);
        let c = random_count_state(&mut r, support, 125);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.sorted_entries(), right.sorted_entries(), "associativity at {support}");
        assert_eq!(left.total(), a.total() + b.total() + c.total());

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.sorted_entries(), ba.sorted_entries(), "commutativity at {support}");
    }
}

#[test]
fn pair_merge_is_associative_and_commutative() {
    let mut r = Xoshiro256pp::seed_from_u64(0x51AC);
    let a = random_pair_state(&mut r, 11, 40, 800);
    let b = random_pair_state(&mut r, 11, 40, 400);
    let c = random_pair_state(&mut r, 11, 40, 200);

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left.canonical_runs(), right.canonical_runs(), "associativity");

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.canonical_runs(), ba.canonical_runs(), "commutativity");
}

/// Any disjoint partition of a row block, counted per part and merged in
/// a shuffled order, equals counting the whole block at once.
#[test]
fn partitioned_counts_merge_back_to_the_whole() {
    let mut r = Xoshiro256pp::seed_from_u64(0x51AD);
    let support = 23u32;
    let codes: Vec<u32> = (0..5_000).map(|_| r.next_below(support as u64) as u32).collect();

    let mut whole = CountState::new(support);
    for &c in &codes {
        whole.add(c);
    }

    for parts in [1usize, 2, 3, 7, 13] {
        // Random cut points give uneven partitions.
        let mut cuts: Vec<usize> =
            (0..parts - 1).map(|_| r.next_below(codes.len() as u64) as usize).collect();
        cuts.sort_unstable();
        cuts.insert(0, 0);
        cuts.push(codes.len());

        let mut shards: Vec<CountState> = cuts
            .windows(2)
            .map(|w| {
                let mut cs = CountState::new(support);
                for &c in &codes[w[0]..w[1]] {
                    cs.add(c);
                }
                cs
            })
            .collect();

        // Merge in a shuffled order — order must not matter.
        let mut merged = CountState::new(support);
        while !shards.is_empty() {
            let i = r.next_below(shards.len() as u64) as usize;
            merged.merge(&shards.swap_remove(i));
        }
        assert_eq!(merged.sorted_entries(), whole.sorted_entries(), "{parts} parts");
    }
}

// ---------------------------------------------------------------------
// Loop invariance: sharded == unsharded, bitwise.
// ---------------------------------------------------------------------

/// Mixed supports and skews (the width-invariance dataset) so candidates
/// retire at different iterations. Supports stay ≤ 200 so every column
/// can be repacked at all three widths.
fn dataset(seed: u64, n: usize) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [1u32, 2, 3, 8, 40, 200].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..n)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn repacked(ds: &Dataset, width: Width) -> Dataset {
    let columns = (0..ds.num_attrs())
        .map(|a| ds.column(a).with_width(width).expect("supports fit every width"))
        .collect();
    Dataset::new(ds.schema().clone(), columns).unwrap()
}

/// Runs the sharded loop at every shard count × width × thread count and
/// asserts each result equals the unsharded single-thread baseline.
fn assert_shard_invariant<R: PartialEq + std::fmt::Debug>(
    seed: u64,
    unsharded: impl Fn(&Dataset, &SwopeConfig) -> R,
    sharded: impl Fn(&Dataset, usize, &SwopeConfig, &Executor) -> R,
) {
    let ds = dataset(seed, 8_000);
    let config = SwopeConfig::with_epsilon(0.2).with_seed(seed);
    let baseline = unsharded(&ds, &config);
    for width in [Width::U8, Width::U16, Width::U32] {
        let packed = repacked(&ds, width);
        for shards in SHARDS {
            for t in THREADS {
                assert_eq!(
                    sharded(&packed, shards, &config, &Executor::new(t)),
                    baseline,
                    "shards = {shards}, width = {width}, threads = {t}"
                );
            }
        }
    }
}

#[test]
fn entropy_top_k_is_shard_invariant() {
    assert_shard_invariant(
        31,
        |ds, cfg| entropy_top_k(ds, 3, cfg).unwrap(),
        |ds, s, cfg, exec| {
            entropy_top_k_sharded_exec(ds, 3, s, cfg, &mut NoopObserver, exec).unwrap()
        },
    );
}

#[test]
fn entropy_filter_is_shard_invariant() {
    assert_shard_invariant(
        32,
        |ds, cfg| entropy_filter(ds, 1.0, cfg).unwrap(),
        |ds, s, cfg, exec| {
            entropy_filter_sharded_exec(ds, 1.0, s, cfg, &mut NoopObserver, exec).unwrap()
        },
    );
}

#[test]
fn entropy_profile_is_shard_invariant() {
    assert_shard_invariant(
        33,
        |ds, cfg| entropy_profile(ds, PROFILE_FLOOR, cfg).unwrap(),
        |ds, s, cfg, exec| {
            entropy_profile_sharded_exec(ds, PROFILE_FLOOR, s, cfg, &mut NoopObserver, exec)
                .unwrap()
        },
    );
}

#[test]
fn mi_top_k_is_shard_invariant() {
    assert_shard_invariant(
        34,
        |ds, cfg| mi_top_k(ds, 5, 3, cfg).unwrap(),
        |ds, s, cfg, exec| {
            mi_top_k_sharded_exec(ds, 5, 3, s, cfg, &mut NoopObserver, exec).unwrap()
        },
    );
}

#[test]
fn mi_filter_is_shard_invariant() {
    assert_shard_invariant(
        35,
        |ds, cfg| mi_filter(ds, 5, 0.1, cfg).unwrap(),
        |ds, s, cfg, exec| {
            mi_filter_sharded_exec(ds, 5, 0.1, s, cfg, &mut NoopObserver, exec).unwrap()
        },
    );
}

#[test]
fn mi_profile_is_shard_invariant() {
    assert_shard_invariant(
        36,
        |ds, cfg| mi_profile(ds, 5, PROFILE_FLOOR, cfg).unwrap(),
        |ds, s, cfg, exec| {
            mi_profile_sharded_exec(ds, 5, PROFILE_FLOOR, s, cfg, &mut NoopObserver, exec).unwrap()
        },
    );
}
