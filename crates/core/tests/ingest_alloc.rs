//! Steady-state allocation audit for gather-staged ingest.
//!
//! The execution layer's claim is that once a query's scratch buffers
//! reach their high-water mark, iterating allocates nothing: block
//! buffers are capped at [`swope_core::state::INGEST_BLOCK_ROWS`] and
//! reused, and the MI target buffer only regrows past its largest delta.
//! This binary installs a counting global allocator and asserts exactly
//! that. It holds a single test on purpose: the harness is per-process,
//! and a concurrently running neighbour test would count its own
//! allocations into ours.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swope_columnar::{Column, Dataset, Field, Schema};
use swope_core::state::{EntropyState, GatherScratch, MiState, TargetState};
use swope_sampling::rng::Xoshiro256pp;

/// Counts every allocation and reallocation; frees are not interesting
/// here (a steady-state loop that frees must have allocated first).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn staged_ingest_allocates_nothing_in_steady_state() {
    let n = 65_536usize;
    let mut r = Xoshiro256pp::seed_from_u64(0x5170);
    let make = |support: u32, r: &mut Xoshiro256pp| -> Vec<u32> {
        (0..n).map(|_| r.next_below(support as u64) as u32).collect()
    };
    let ds = Dataset::new(
        Schema::new(vec![Field::new("cand", 8), Field::new("target", 4)]),
        vec![Column::new(make(8, &mut r), 8).unwrap(), Column::new(make(4, &mut r), 4).unwrap()],
    )
    .unwrap();
    let rows: Vec<u32> = {
        let mut rows: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates so the gather sees sampler-like random row order.
        for i in (1..n).rev() {
            rows.swap(i, r.next_below(i as u64 + 1) as usize);
        }
        rows
    };

    let cand = ds.column(0);
    let target = ds.column(1);
    let mut entropy = EntropyState::new(&ds, 0);
    let mut target_state = TargetState::new(&ds, 1);
    let mut mi = MiState::new(0, target_state.support, ds.support(0));
    let mut scratch = GatherScratch::new(2);

    // Warm-up: the first delta grows every buffer to its high-water mark
    // (block buffers cap at INGEST_BLOCK_ROWS; the target buffer sizes to
    // the largest delta) and observes every (target, cand) pair so the
    // counters' structures are fully built.
    let warm = &rows[..20_000];
    entropy.ingest_staged(cand, warm, &mut scratch.slots(2)[0]);
    let (t_buf, slots) = scratch.target_and_slots(2);
    target_state.ingest_into(target, warm, t_buf);
    mi.ingest_staged(cand, t_buf, warm, &mut slots[1]);

    // Steady state: more ingests of never-larger deltas (sizes chosen to
    // land both on and off block boundaries) must not allocate at all.
    let before = ALLOCS.load(Ordering::Relaxed);
    for delta in rows[20_000..].chunks(7_321) {
        entropy.ingest_staged(cand, delta, &mut scratch.slots(2)[0]);
        let (t_buf, slots) = scratch.target_and_slots(2);
        target_state.ingest_into(target, delta, t_buf);
        mi.ingest_staged(cand, t_buf, delta, &mut slots[1]);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "steady-state ingest performed {} allocations", after - before);
}
